//! Wire-level (connection) chaos: torn lines, disconnects, and
//! slow-client stalls for the serve line protocol.
//!
//! The response-level [`crate::FaultPlan`] corrupts what a model *says*;
//! this layer corrupts how the bytes *arrive*. A [`WirePlan`] is a pure
//! function from a request line's bytes (plus the plan seed) to an
//! optional [`WireFault`], so every torn line, dropped connection, and
//! stall lands on the same request at any batch size or
//! `RAYON_NUM_THREADS` — and stalls advance a *virtual* clock, never a
//! real sleep, keeping chaos runs instant and byte-reproducible.

use serde::{Deserialize, Serialize};

use crate::{fnv1a, scramble, unit};

/// Salt separating wire draws from the response-fault and retry-seed
/// streams, fixed so realized wire chaos is pinned across builds.
const WIRE_SALT: u64 = 0xfa_17_00_03;

/// Smallest stall a slow client injects, in virtual milliseconds.
pub const MIN_STALL_MS: u64 = 10;
/// Largest stall a slow client injects, in virtual milliseconds.
pub const MAX_STALL_MS: u64 = 250;

/// The injectable connection faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WireFault {
    /// The line arrives cut off after `at` bytes (a partial write); the
    /// server sees only the prefix and must answer it as a parse error,
    /// never hang waiting for the rest.
    Torn {
        /// Byte offset of the tear — always a UTF-8 character boundary
        /// strictly inside the line.
        at: usize,
    },
    /// The client vanishes mid-session: nothing after this line is read,
    /// and in-flight work must still drain to a balanced ledger.
    Disconnect,
    /// A slow client: the line arrives `ms` virtual milliseconds late,
    /// advancing the server's virtual clock (never a real sleep).
    Stall {
        /// The virtual delay, in `[MIN_STALL_MS, MAX_STALL_MS]`.
        ms: u64,
    },
}

/// Per-kind wire fault probabilities. Bernoulli rates in `[0, 1]` whose
/// sum must stay ≤ 1 (at most one wire fault per line).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WireRates {
    /// Probability a line arrives torn.
    pub torn: f64,
    /// Probability the connection drops at this line.
    pub disconnect: f64,
    /// Probability the line arrives after a stall.
    pub stall: f64,
}

impl Default for WireRates {
    fn default() -> WireRates {
        WireRates::zero()
    }
}

impl WireRates {
    /// No wire faults at all — the default, so response-only chaos plans
    /// (and every pre-extension serialized plan) behave exactly as
    /// before.
    pub fn zero() -> WireRates {
        WireRates {
            torn: 0.0,
            disconnect: 0.0,
            stall: 0.0,
        }
    }

    /// Split one total wire-fault rate evenly across the three kinds.
    pub fn uniform(total: f64) -> WireRates {
        let each = total.clamp(0.0, 1.0) / 3.0;
        WireRates {
            torn: each,
            disconnect: each,
            stall: each,
        }
    }

    /// The rates in cumulative-draw order: torn, disconnect, stall.
    pub fn as_array(&self) -> [f64; 3] {
        [self.torn, self.disconnect, self.stall]
    }

    /// Total per-line wire fault probability.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Human-readable problems; empty when the rates are usable.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (name, rate) in ["torn", "disconnect", "stall"].iter().zip(self.as_array()) {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                problems.push(format!("{name} rate {rate} is outside [0, 1]"));
            }
        }
        if self.total() > 1.0 {
            problems.push(format!("total wire fault rate {} exceeds 1", self.total()));
        }
        problems
    }
}

/// A seeded connection-chaos plan: a pure function from a request line's
/// bytes to an optional [`WireFault`].
///
/// The draw depends only on `(plan seed, line bytes)` — never on
/// wall-clock, thread id, batch position, or queue depth — so a storm
/// transcript (including exactly which jobs were torn, dropped, or
/// stalled) is byte-identical across `RAYON_NUM_THREADS` and repeated
/// runs at the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WirePlan {
    /// The chaos seed shared with the owning [`crate::FaultPlan`].
    pub seed: u64,
    /// Per-kind wire injection rates.
    pub rates: WireRates,
}

impl WirePlan {
    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.rates.total() > 0.0
    }

    /// Decide the wire fault (if any) for one protocol line.
    ///
    /// A `Torn` draw on a line shorter than two bytes degrades to `None`:
    /// there is no interior offset to tear at.
    pub fn draw(&self, line: &str) -> Option<WireFault> {
        if !self.is_active() {
            return None;
        }
        let h = fnv1a(&[&(self.seed ^ WIRE_SALT).to_le_bytes(), line.as_bytes()]);
        let u = unit(scramble(h));
        // A second independent stream for the fault's parameter (tear
        // offset or stall length), derived from the same identity.
        let param = scramble(h ^ WIRE_SALT.rotate_left(32));
        let mut cumulative = 0.0;
        for (idx, rate) in self.rates.as_array().into_iter().enumerate() {
            cumulative += rate;
            if u < cumulative {
                return match idx {
                    0 => tear_at(line, param).map(|at| WireFault::Torn { at }),
                    1 => Some(WireFault::Disconnect),
                    _ => Some(WireFault::Stall {
                        ms: MIN_STALL_MS + param % (MAX_STALL_MS - MIN_STALL_MS + 1),
                    }),
                };
            }
        }
        None
    }
}

/// Pick a UTF-8-safe tear offset strictly inside `line`, or `None` when
/// the line is too short to tear.
fn tear_at(line: &str, param: u64) -> Option<usize> {
    if line.len() < 2 {
        return None;
    }
    let mut at = 1 + (param as usize) % (line.len() - 1);
    while !line.is_char_boundary(at) {
        at -= 1;
    }
    // Walking back to a boundary can only land on 0 if byte 1 sat inside
    // a multi-byte char; tear after it instead so a prefix survives.
    if at == 0 {
        at = line
            .char_indices()
            .nth(1)
            .map(|(i, _)| i)
            .unwrap_or(line.len());
    }
    (at < line.len()).then_some(at)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_injects_and_is_inactive() {
        let plan = WirePlan {
            seed: 7,
            rates: WireRates::zero(),
        };
        assert!(!plan.is_active());
        for i in 0..256 {
            assert_eq!(plan.draw(&format!("predict id=j{i}")), None);
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = WirePlan {
            seed: 1,
            rates: WireRates::uniform(0.9),
        };
        let b = WirePlan { seed: 2, ..a };
        let draw = |p: WirePlan| -> Vec<Option<WireFault>> {
            (0..64).map(|i| p.draw(&format!("line {i}"))).collect()
        };
        assert_eq!(draw(a), draw(a));
        assert_ne!(draw(a), draw(b));
    }

    #[test]
    fn all_kinds_are_reachable_and_frequency_tracks_the_rate() {
        let plan = WirePlan {
            seed: 3,
            rates: WireRates::uniform(0.3),
        };
        let mut torn = 0usize;
        let mut disconnect = 0usize;
        let mut stall = 0usize;
        let n = 4000;
        for i in 0..n {
            match plan.draw(&format!("predict id=s{i} kernel=axpy")) {
                Some(WireFault::Torn { at }) => {
                    assert!(at > 0);
                    torn += 1;
                }
                Some(WireFault::Disconnect) => disconnect += 1,
                Some(WireFault::Stall { ms }) => {
                    assert!((MIN_STALL_MS..=MAX_STALL_MS).contains(&ms));
                    stall += 1;
                }
                None => {}
            }
        }
        assert!(torn > 0 && disconnect > 0 && stall > 0);
        let freq = (torn + disconnect + stall) as f64 / n as f64;
        assert!((freq - 0.3).abs() < 0.03, "observed {freq}");
    }

    #[test]
    fn tears_land_on_char_boundaries_inside_the_line() {
        for param in 0..64u64 {
            for line in ["ab", "predict id=j1", "héllo wörld ★ spec=a100"] {
                if let Some(at) = tear_at(line, param) {
                    assert!(at > 0 && at < line.len(), "{line}: {at}");
                    assert!(line.is_char_boundary(at));
                }
            }
            assert_eq!(tear_at("", param), None);
            assert_eq!(tear_at("x", param), None);
            // A 2-byte line made of one multi-byte char has no interior
            // boundary the walk-back can use; the nth(1) fallback lands
            // past the end and is rejected.
            assert_eq!(tear_at("é", param), None);
        }
    }

    #[test]
    fn rates_validate_bounds() {
        assert!(WireRates::uniform(0.4).validate().is_empty());
        assert!(WireRates::zero().validate().is_empty());
        let bad = WireRates {
            torn: 1.5,
            ..WireRates::zero()
        };
        assert!(bad.validate()[0].contains("outside [0, 1]"));
        let too_much = WireRates {
            torn: 0.6,
            stall: 0.6,
            ..WireRates::zero()
        };
        assert!(too_much.validate().iter().any(|p| p.contains("exceeds 1")));
    }

    #[test]
    fn wire_plans_round_trip_through_serde() {
        let plan = WirePlan {
            seed: 42,
            rates: WireRates::uniform(0.15),
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: WirePlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        for fault in [
            WireFault::Torn { at: 5 },
            WireFault::Disconnect,
            WireFault::Stall { ms: 40 },
        ] {
            let json = serde_json::to_string(&fault).unwrap();
            let back: WireFault = serde_json::from_str(&json).unwrap();
            assert_eq!(back, fault);
        }
    }
}
