//! # pce-fault
//!
//! The chaos layer: a deterministic stand-in for everything that goes
//! wrong between a harness and a hosted LLM endpoint.
//!
//! The paper's real pipeline queries hosted models that time out, truncate
//! answers, refuse, and reply in formats the automation cannot parse; those
//! conditions are *counted*, not crashed on. This crate provides the
//! machinery the rest of the workspace threads that resilience through:
//!
//! * [`PceError`] — the workspace-wide typed error taxonomy
//!   (`Parse`/`Timeout`/`Refusal`/`Spec`/`Io`) with retryability
//!   classification,
//! * [`FaultPlan`] — a seeded plan that decides, per
//!   (model, prompt-fingerprint, request seed, attempt), whether a
//!   completion is truncated, format-mangled, refused, timed out, or hit by
//!   a transient service error — a pure function, so chaos runs are
//!   byte-identical across thread counts,
//! * [`RetryPolicy`] — bounded retries with deterministic exponential
//!   backoff and fingerprint-seeded jitter; [`attempt_seed`] salts retried
//!   completions so they differ from the first attempt reproducibly,
//! * [`ResponseAccounting`] — valid / retried-then-valid / invalid /
//!   refused tallies that surface in Table 1, the suite renderers, and
//!   `BENCH_suite.json`.

#![forbid(unsafe_code)]

pub mod accounting;
pub mod error;
pub mod plan;
pub mod retry;
pub mod wire;

pub use accounting::{ResponseAccounting, ACCOUNTING_CSV_COLUMNS};
pub use error::PceError;
pub use plan::{corrupt_text, is_refusal_text, FaultKind, FaultPlan, FaultRates, REFUSAL_TEXT};
pub use retry::{attempt_seed, RetryPolicy};
pub use wire::{WireFault, WirePlan, WireRates};

/// FNV-1a over a byte stream — the same digest the rest of the workspace
/// keys its caches with, kept local so this crate stays dependency-free.
pub(crate) fn fnv1a(parts: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// One xorshift64* scramble: turns a structured hash into uniform bits.
pub(crate) fn scramble(mut x: u64) -> u64 {
    x |= 1;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

/// Map 64 uniform bits onto `[0, 1)`.
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic uniform draw in `[0, 1)` keyed purely on identity
/// bytes — the primitive behind every chaos decision in this crate,
/// exported so serving-layer mechanisms (circuit-breaker half-open
/// probes) draw from the same reproducible stream family instead of a
/// thread-local RNG.
pub fn seeded_unit(parts: &[&[u8]]) -> f64 {
    unit(scramble(fnv1a(parts)))
}
