//! The workspace-wide typed error taxonomy.

use serde::{Deserialize, Serialize};

/// Every way the harness's service boundary can fail, with the
/// retryability classification a request loop needs.
///
/// The taxonomy mirrors what the paper's automation sees from hosted
/// endpoints: malformed answers (`Parse`), request timeouts (`Timeout`),
/// content refusals (`Refusal`), misconfigured requests (`Spec`), and
/// transient service errors (`Io`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PceError {
    /// Text (a response or a prompt) did not contain what the parser
    /// required. Retryable for responses: re-asking a model can yield a
    /// well-formed answer.
    Parse {
        /// What failed to parse, naming the missing marker or field.
        what: String,
    },
    /// A request exceeded its deadline. Retryable.
    Timeout {
        /// The simulated deadline that elapsed, in milliseconds.
        ms: u64,
    },
    /// The model declined to answer. Not retryable: re-asking the same
    /// model the same question yields the same refusal.
    Refusal {
        /// The refusing model's name.
        model: String,
    },
    /// An invalid specification or configuration (unknown model, empty
    /// hardware axis, a CPU preset on the GPU axis, ...). Not retryable:
    /// the request itself is wrong.
    Spec {
        /// What was invalid.
        what: String,
    },
    /// A transient transport/service error (connection reset, 5xx).
    /// Retryable.
    Io {
        /// What went wrong.
        what: String,
    },
    /// The server shed the request under load: the admission queue was
    /// full, the target model's circuit breaker was open, or the server
    /// was draining. Retryable — backpressure is a transient property of
    /// the *server*, so a client that backs off may be admitted later.
    Overload {
        /// Why the request was shed.
        what: String,
    },
    /// Submitted raw kernel source failed static hazard diagnostics
    /// (data race, missing barrier, missing reduction clause, ...). Not
    /// retryable: the diagnostics pass is deterministic, so resubmitting
    /// the same source yields the same rejection.
    Lint {
        /// The error-severity diagnostics, one `rule: message` per entry.
        what: String,
    },
}

impl PceError {
    /// Build a [`PceError::Parse`] from anything displayable.
    pub fn parse(what: impl Into<String>) -> PceError {
        PceError::Parse { what: what.into() }
    }

    /// Build a [`PceError::Spec`] from anything displayable.
    pub fn spec(what: impl Into<String>) -> PceError {
        PceError::Spec { what: what.into() }
    }

    /// Build a [`PceError::Io`] from anything displayable.
    pub fn io(what: impl Into<String>) -> PceError {
        PceError::Io { what: what.into() }
    }

    /// Build a [`PceError::Overload`] from anything displayable.
    pub fn overload(what: impl Into<String>) -> PceError {
        PceError::Overload { what: what.into() }
    }

    /// Build a [`PceError::Lint`] from anything displayable.
    pub fn lint(what: impl Into<String>) -> PceError {
        PceError::Lint { what: what.into() }
    }

    /// Whether a bounded retry loop should re-issue the request.
    ///
    /// `Timeout`, `Io`, and `Overload` model transient service
    /// conditions; `Parse` covers malformed *responses*, which a salted
    /// retry can repair. `Refusal`, `Spec`, and `Lint` are stable
    /// properties of the request and retrying them only burns budget.
    pub fn retryable(&self) -> bool {
        match self {
            PceError::Parse { .. }
            | PceError::Timeout { .. }
            | PceError::Io { .. }
            | PceError::Overload { .. } => true,
            PceError::Refusal { .. } | PceError::Spec { .. } | PceError::Lint { .. } => false,
        }
    }

    /// Short stable tag for reports and logs.
    pub fn kind(&self) -> &'static str {
        match self {
            PceError::Parse { .. } => "parse",
            PceError::Timeout { .. } => "timeout",
            PceError::Refusal { .. } => "refusal",
            PceError::Spec { .. } => "spec",
            PceError::Io { .. } => "io",
            PceError::Overload { .. } => "overload",
            PceError::Lint { .. } => "lint",
        }
    }
}

impl std::fmt::Display for PceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PceError::Parse { what } => write!(f, "parse error: {what}"),
            PceError::Timeout { ms } => write!(f, "request timed out after {ms} ms"),
            PceError::Refusal { model } => write!(f, "model '{model}' refused to answer"),
            PceError::Spec { what } => write!(f, "invalid spec: {what}"),
            PceError::Io { what } => write!(f, "transient service error: {what}"),
            PceError::Overload { what } => write!(f, "overload: {what}"),
            PceError::Lint { what } => write!(f, "lint rejected: {what}"),
        }
    }
}

impl std::error::Error for PceError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_variants() -> Vec<PceError> {
        vec![
            PceError::parse("missing 'Question:' marker"),
            PceError::Timeout { ms: 30_000 },
            PceError::Refusal { model: "o1".into() },
            PceError::spec("model 'gpt-6' is not in the zoo"),
            PceError::io("connection reset by peer"),
            PceError::overload("admission queue full (depth 8)"),
            PceError::lint("shared-race: write of buf[tid] may race"),
        ]
    }

    #[test]
    fn display_messages_name_the_failure() {
        let msgs: Vec<String> = all_variants().iter().map(|e| e.to_string()).collect();
        assert_eq!(msgs[0], "parse error: missing 'Question:' marker");
        assert_eq!(msgs[1], "request timed out after 30000 ms");
        assert_eq!(msgs[2], "model 'o1' refused to answer");
        assert_eq!(msgs[3], "invalid spec: model 'gpt-6' is not in the zoo");
        assert_eq!(msgs[4], "transient service error: connection reset by peer");
        assert_eq!(msgs[5], "overload: admission queue full (depth 8)");
        assert_eq!(
            msgs[6],
            "lint rejected: shared-race: write of buf[tid] may race"
        );
    }

    #[test]
    fn retryability_classification() {
        let by_kind: std::collections::BTreeMap<&str, bool> = all_variants()
            .iter()
            .map(|e| (e.kind(), e.retryable()))
            .collect();
        assert!(by_kind["parse"]);
        assert!(by_kind["timeout"]);
        assert!(by_kind["io"]);
        assert!(by_kind["overload"]);
        assert!(!by_kind["refusal"]);
        assert!(!by_kind["spec"]);
        assert!(!by_kind["lint"]);
    }

    #[test]
    fn errors_round_trip_through_serde() {
        for e in all_variants() {
            let json = serde_json::to_string(&e).unwrap();
            let back: PceError = serde_json::from_str(&json).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn error_trait_is_usable_as_a_box() {
        let boxed: Box<dyn std::error::Error> = Box::new(PceError::Timeout { ms: 5 });
        assert!(boxed.to_string().contains("5 ms"));
    }
}
