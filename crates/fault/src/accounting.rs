//! Valid / retried / invalid / refused response tallies.

use serde::{Deserialize, Serialize};

/// Per-bucket response accounting, the ledger the paper's automation keeps
/// when hosted answers go wrong: how many completions parsed first try,
/// how many needed a retry, and how many were unusable.
///
/// Two balance invariants hold. The *response* invariant
/// `injected == retried_valid + invalid + refused` holds because every
/// injected fault corrupts the answer (never silently passes) while an
/// un-injected surrogate completion always parses. The *serving*
/// invariant `admitted == completed + shed + expired + lint` holds
/// because the prediction service answers every submitted job exactly
/// once: with a completion, a load-shed rejection, a deadline expiry, or
/// a static-diagnostics rejection of raw source. Layers that never queue
/// jobs (the suite) leave the serving counters at zero, which balances
/// trivially.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseAccounting {
    /// Completions that parsed on the first attempt.
    pub valid: u64,
    /// Completions that failed at least once but parsed after a retry.
    pub retried_valid: u64,
    /// Completions that exhausted retries without a parseable answer.
    pub invalid: u64,
    /// Completions terminated by a refusal.
    pub refused: u64,
    /// Attempts on which the fault plan injected a failure.
    pub injected: u64,
    /// Extra attempts issued beyond the first, across all requests.
    pub retries: u64,
    /// Total deterministic backoff the retry loop recorded, in ms.
    pub backoff_ms: u64,
    /// Jobs submitted to the serving layer (including ones later shed).
    #[serde(default)]
    pub admitted: u64,
    /// Jobs answered with a terminal completion (ok or a definitive err).
    #[serde(default)]
    pub completed: u64,
    /// Jobs shed under load: full admission queue, open circuit breaker,
    /// or a draining server.
    #[serde(default)]
    pub shed: u64,
    /// Jobs whose deadline passed before an answer could be delivered —
    /// distinct from upstream [`crate::PceError::Timeout`] faults, which
    /// land in `invalid`/`retried_valid`.
    #[serde(default)]
    pub expired: u64,
    /// The subset of `shed` rejected by an open circuit breaker.
    #[serde(default)]
    pub breaker_open: u64,
    /// Raw-source jobs rejected at admission by error-severity static
    /// diagnostics ([`crate::PceError::Lint`]).
    #[serde(default)]
    pub lint: u64,
}

/// The CSV column list shared by every ledger renderer (the suite's
/// response-ledger CSV and the serve bin's per-model ledger), in
/// [`ResponseAccounting::csv_row`] order.
pub const ACCOUNTING_CSV_COLUMNS: &str =
    "valid,retried_valid,invalid,refused,injected,retries,backoff_ms,\
     admitted,completed,shed,expired,breaker_open,lint";

impl ResponseAccounting {
    /// An empty ledger.
    pub fn new() -> ResponseAccounting {
        ResponseAccounting::default()
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &ResponseAccounting) {
        self.valid += other.valid;
        self.retried_valid += other.retried_valid;
        self.invalid += other.invalid;
        self.refused += other.refused;
        self.injected += other.injected;
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
        self.admitted += other.admitted;
        self.completed += other.completed;
        self.shed += other.shed;
        self.expired += other.expired;
        self.breaker_open += other.breaker_open;
        self.lint += other.lint;
    }

    /// Merge-and-return, for fold chains.
    pub fn merged(mut self, other: &ResponseAccounting) -> ResponseAccounting {
        self.merge(other);
        self
    }

    /// Total requests accounted for.
    pub fn total(&self) -> u64 {
        self.valid + self.retried_valid + self.invalid + self.refused
    }

    /// Requests that a fault hit but a retry repaired.
    pub fn recovered(&self) -> u64 {
        self.retried_valid
    }

    /// Whether any fault touched this bucket — gates the accounting
    /// sections in reports so chaos-free runs render byte-identically to
    /// the historical goldens.
    pub fn faulted(&self) -> bool {
        self.injected > 0 || self.retried_valid > 0 || self.invalid > 0 || self.refused > 0
    }

    /// The response-level chaos balance invariant: every injected fault
    /// must end up recovered, invalid, or refused.
    pub fn response_balanced(&self) -> bool {
        self.injected == self.retried_valid + self.invalid + self.refused
    }

    /// The serving-level balance invariant: every submitted job must be
    /// answered exactly once — completed, shed, expired, or
    /// lint-rejected — and breaker rejections are a subset of sheds.
    pub fn serve_balanced(&self) -> bool {
        self.admitted == self.completed + self.shed + self.expired + self.lint
            && self.breaker_open <= self.shed
    }

    /// Both ledger invariants:
    /// `injected == retried_valid + invalid + refused` ∧
    /// `admitted == completed + shed + expired + lint`.
    pub fn balanced(&self) -> bool {
        self.response_balanced() && self.serve_balanced()
    }

    /// This ledger as one CSV row fragment, in
    /// [`ACCOUNTING_CSV_COLUMNS`] order — shared by the suite's
    /// response-ledger CSV and the serve bin's per-model ledger so both
    /// report the same schema.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.valid,
            self.retried_valid,
            self.invalid,
            self.refused,
            self.injected,
            self.retries,
            self.backoff_ms,
            self.admitted,
            self.completed,
            self.shed,
            self.expired,
            self.breaker_open,
            self.lint,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_clean_and_balanced() {
        let a = ResponseAccounting::new();
        assert_eq!(a.total(), 0);
        assert!(!a.faulted());
        assert!(a.balanced());
    }

    #[test]
    fn merge_adds_every_counter() {
        let a = ResponseAccounting {
            valid: 10,
            retried_valid: 2,
            invalid: 1,
            refused: 1,
            injected: 4,
            retries: 5,
            backoff_ms: 700,
            admitted: 17,
            completed: 14,
            shed: 1,
            expired: 1,
            breaker_open: 1,
            lint: 1,
        };
        let merged = a.merged(&a);
        assert_eq!(merged.valid, 20);
        assert_eq!(merged.retried_valid, 4);
        assert_eq!(merged.invalid, 2);
        assert_eq!(merged.refused, 2);
        assert_eq!(merged.injected, 8);
        assert_eq!(merged.retries, 10);
        assert_eq!(merged.backoff_ms, 1400);
        assert_eq!(merged.admitted, 34);
        assert_eq!(merged.completed, 28);
        assert_eq!(merged.shed, 2);
        assert_eq!(merged.expired, 2);
        assert_eq!(merged.breaker_open, 2);
        assert_eq!(merged.lint, 2);
        assert_eq!(merged.total(), 28);
        assert_eq!(merged.recovered(), 4);
        assert!(merged.faulted());
        assert!(merged.balanced());
    }

    #[test]
    fn imbalance_is_detected() {
        let a = ResponseAccounting {
            injected: 3,
            retried_valid: 1,
            ..ResponseAccounting::new()
        };
        assert!(!a.response_balanced());
        assert!(!a.balanced());
    }

    #[test]
    fn serve_imbalance_is_detected() {
        // A job admitted but never answered breaks the serving invariant
        // even when the response invariant holds.
        let a = ResponseAccounting {
            admitted: 5,
            completed: 3,
            shed: 1,
            ..ResponseAccounting::new()
        };
        assert!(a.response_balanced());
        assert!(!a.serve_balanced());
        assert!(!a.balanced());
        // Breaker rejections exceeding total sheds are also an imbalance.
        let b = ResponseAccounting {
            admitted: 2,
            shed: 1,
            completed: 1,
            breaker_open: 2,
            ..ResponseAccounting::new()
        };
        assert!(!b.serve_balanced());
    }

    #[test]
    fn csv_row_matches_the_shared_column_list() {
        let a = ResponseAccounting {
            valid: 1,
            retried_valid: 2,
            invalid: 3,
            refused: 4,
            injected: 9,
            retries: 6,
            backoff_ms: 123,
            admitted: 12,
            completed: 8,
            shed: 2,
            expired: 1,
            breaker_open: 1,
            lint: 1,
        };
        assert_eq!(a.csv_row(), "1,2,3,4,9,6,123,12,8,2,1,1,1");
        assert_eq!(
            a.csv_row().split(',').count(),
            ACCOUNTING_CSV_COLUMNS.split(',').count()
        );
    }

    #[test]
    fn accounting_round_trips_through_serde() {
        let a = ResponseAccounting {
            valid: 1,
            retried_valid: 2,
            invalid: 3,
            refused: 4,
            injected: 9,
            retries: 6,
            backoff_ms: 123,
            admitted: 10,
            completed: 10,
            shed: 0,
            expired: 0,
            breaker_open: 0,
            lint: 0,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: ResponseAccounting = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
        // Pre-extension ledgers (no serving counters) still deserialize.
        let legacy: ResponseAccounting = serde_json::from_str(
            "{\"valid\":1,\"retried_valid\":0,\"invalid\":0,\"refused\":0,\
             \"injected\":0,\"retries\":0,\"backoff_ms\":0}",
        )
        .unwrap();
        assert_eq!(legacy.valid, 1);
        assert_eq!(legacy.admitted, 0);
        assert!(legacy.balanced());
    }
}
