//! Valid / retried / invalid / refused response tallies.

use serde::{Deserialize, Serialize};

/// Per-bucket response accounting, the ledger the paper's automation keeps
/// when hosted answers go wrong: how many completions parsed first try,
/// how many needed a retry, and how many were unusable.
///
/// The balance invariant `injected == retried_valid + invalid + refused`
/// holds because every injected fault corrupts the answer (never silently
/// passes) while an un-injected surrogate completion always parses.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseAccounting {
    /// Completions that parsed on the first attempt.
    pub valid: u64,
    /// Completions that failed at least once but parsed after a retry.
    pub retried_valid: u64,
    /// Completions that exhausted retries without a parseable answer.
    pub invalid: u64,
    /// Completions terminated by a refusal.
    pub refused: u64,
    /// Attempts on which the fault plan injected a failure.
    pub injected: u64,
    /// Extra attempts issued beyond the first, across all requests.
    pub retries: u64,
    /// Total deterministic backoff the retry loop recorded, in ms.
    pub backoff_ms: u64,
}

impl ResponseAccounting {
    /// An empty ledger.
    pub fn new() -> ResponseAccounting {
        ResponseAccounting::default()
    }

    /// Fold another ledger into this one.
    pub fn merge(&mut self, other: &ResponseAccounting) {
        self.valid += other.valid;
        self.retried_valid += other.retried_valid;
        self.invalid += other.invalid;
        self.refused += other.refused;
        self.injected += other.injected;
        self.retries += other.retries;
        self.backoff_ms += other.backoff_ms;
    }

    /// Merge-and-return, for fold chains.
    pub fn merged(mut self, other: &ResponseAccounting) -> ResponseAccounting {
        self.merge(other);
        self
    }

    /// Total requests accounted for.
    pub fn total(&self) -> u64 {
        self.valid + self.retried_valid + self.invalid + self.refused
    }

    /// Requests that a fault hit but a retry repaired.
    pub fn recovered(&self) -> u64 {
        self.retried_valid
    }

    /// Whether any fault touched this bucket — gates the accounting
    /// sections in reports so chaos-free runs render byte-identically to
    /// the historical goldens.
    pub fn faulted(&self) -> bool {
        self.injected > 0 || self.retried_valid > 0 || self.invalid > 0 || self.refused > 0
    }

    /// The chaos balance invariant: every injected fault must end up
    /// recovered, invalid, or refused.
    pub fn balanced(&self) -> bool {
        self.injected == self.retried_valid + self.invalid + self.refused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ledger_is_clean_and_balanced() {
        let a = ResponseAccounting::new();
        assert_eq!(a.total(), 0);
        assert!(!a.faulted());
        assert!(a.balanced());
    }

    #[test]
    fn merge_adds_every_counter() {
        let a = ResponseAccounting {
            valid: 10,
            retried_valid: 2,
            invalid: 1,
            refused: 1,
            injected: 4,
            retries: 5,
            backoff_ms: 700,
        };
        let merged = a.merged(&a);
        assert_eq!(merged.valid, 20);
        assert_eq!(merged.retried_valid, 4);
        assert_eq!(merged.invalid, 2);
        assert_eq!(merged.refused, 2);
        assert_eq!(merged.injected, 8);
        assert_eq!(merged.retries, 10);
        assert_eq!(merged.backoff_ms, 1400);
        assert_eq!(merged.total(), 28);
        assert_eq!(merged.recovered(), 4);
        assert!(merged.faulted());
        assert!(merged.balanced());
    }

    #[test]
    fn imbalance_is_detected() {
        let a = ResponseAccounting {
            injected: 3,
            retried_valid: 1,
            ..ResponseAccounting::new()
        };
        assert!(!a.balanced());
    }

    #[test]
    fn accounting_round_trips_through_serde() {
        let a = ResponseAccounting {
            valid: 1,
            retried_valid: 2,
            invalid: 3,
            refused: 4,
            injected: 9,
            retries: 6,
            backoff_ms: 123,
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: ResponseAccounting = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
