//! Bounded, deterministic retry policy.

use serde::{Deserialize, Serialize};

use crate::{fnv1a, scramble, unit};

/// Salt mixed into retried request seeds so attempt `k > 0` samples a
/// different (but reproducible) completion than attempt 0.
const ATTEMPT_SALT: u64 = 0xfa_17_00_02;

/// The request seed for one retry attempt.
///
/// Attempt 0 is the identity — a chaos-free run issues exactly the same
/// seeds it always has, keeping fault-rate-0 reports byte-identical to
/// the historical goldens. Later attempts fold a scrambled attempt index
/// into the seed so a retried completion differs from the first attempt
/// reproducibly.
pub fn attempt_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        // Shift the attempt index off bit 0: the scrambler forces its
        // low input bit to 1, which would alias adjacent attempts.
        seed ^ scramble(ATTEMPT_SALT ^ ((attempt as u64) << 1))
    }
}

/// Bounded retries with deterministic exponential backoff.
///
/// Backoff delays are *recorded*, never slept: the surrogate has no real
/// service behind it, so the policy reports what a production loop would
/// have waited while keeping runs instant and reproducible. Jitter is
/// seeded from the request fingerprint, not a thread-local RNG, so the
/// recorded delays are identical across thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts total).
    pub max_retries: u32,
    /// Delay before the first retry, in milliseconds.
    pub base_backoff_ms: u64,
    /// Multiplier applied per additional retry.
    pub multiplier: f64,
    /// Ceiling on any single delay, in milliseconds.
    pub max_backoff_ms: u64,
    /// Fraction of the delay used as ± jitter range (0.25 → ±25%).
    pub jitter: f64,
    /// Ceiling on *cumulative* recorded backoff per request, in
    /// milliseconds. When a retry's delay would push the running total to
    /// or past this budget, the retry loop stops and the request fails
    /// with a deadline [`crate::PceError::Timeout`] instead — so a job
    /// with a deadline can never be accounted both `retried_valid` and
    /// `expired`. `None` leaves backoff unbudgeted (the historical
    /// behavior).
    #[serde(default)]
    pub backoff_budget_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ms: 100,
            multiplier: 2.0,
            max_backoff_ms: 5_000,
            jitter: 0.25,
            backoff_budget_ms: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// This policy with cumulative recorded backoff capped at `budget_ms`
    /// (a job deadline, typically).
    pub fn with_budget(self, budget_ms: u64) -> RetryPolicy {
        RetryPolicy {
            backoff_budget_ms: Some(budget_ms),
            ..self
        }
    }

    /// Total attempts this policy allows (first try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_retries.saturating_add(1)
    }

    /// The deterministic backoff before retry attempt `attempt` (1-based:
    /// the delay taken *before* issuing that attempt), jittered by the
    /// request fingerprint.
    pub fn backoff_ms(&self, fingerprint: u64, attempt: u32) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self.multiplier.powi(attempt.saturating_sub(1) as i32);
        let raw = (self.base_backoff_ms as f64 * exp).min(self.max_backoff_ms as f64);
        let h = fnv1a(&[
            &fingerprint.to_le_bytes(),
            &(attempt as u64 ^ ATTEMPT_SALT).to_le_bytes(),
        ]);
        // Map jitter onto [-jitter, +jitter] around the raw delay.
        let wiggle = (unit(scramble(h)) * 2.0 - 1.0) * self.jitter.clamp(0.0, 1.0);
        let delayed = raw * (1.0 + wiggle);
        delayed.max(0.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attempt_zero_keeps_the_seed_unchanged() {
        for seed in [0u64, 1, 0x9f0f_11e5, u64::MAX] {
            assert_eq!(attempt_seed(seed, 0), seed);
        }
    }

    #[test]
    fn retried_attempts_get_distinct_reproducible_seeds() {
        let seeds: Vec<u64> = (0..4).map(|a| attempt_seed(7, a)).collect();
        let again: Vec<u64> = (0..4).map(|a| attempt_seed(7, a)).collect();
        assert_eq!(seeds, again);
        let unique: std::collections::BTreeSet<&u64> = seeds.iter().collect();
        assert_eq!(unique.len(), seeds.len(), "{seeds:?}");
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::default();
        for attempt in 1..=6 {
            let a = policy.backoff_ms(0xfeed, attempt);
            let b = policy.backoff_ms(0xfeed, attempt);
            assert_eq!(a, b);
            let cap = (policy.max_backoff_ms as f64 * (1.0 + policy.jitter)).ceil() as u64;
            assert!(a <= cap, "attempt {attempt}: {a} > {cap}");
        }
        assert_eq!(policy.backoff_ms(0xfeed, 0), 0);
    }

    #[test]
    fn backoff_grows_roughly_exponentially() {
        let policy = RetryPolicy {
            jitter: 0.0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_ms(1, 1), 100);
        assert_eq!(policy.backoff_ms(1, 2), 200);
        assert_eq!(policy.backoff_ms(1, 3), 400);
        // Capped by max_backoff_ms.
        assert_eq!(policy.backoff_ms(1, 10), 5_000);
    }

    #[test]
    fn jitter_varies_with_the_fingerprint() {
        let policy = RetryPolicy::default();
        let delays: std::collections::BTreeSet<u64> =
            (0..32).map(|fp| policy.backoff_ms(fp, 2)).collect();
        assert!(delays.len() > 1, "jitter had no effect: {delays:?}");
    }

    #[test]
    fn attempt_budget_counts_the_first_try() {
        assert_eq!(RetryPolicy::default().max_attempts(), 4);
        assert_eq!(RetryPolicy::none().max_attempts(), 1);
    }

    #[test]
    fn backoff_budget_defaults_off_and_round_trips() {
        assert_eq!(RetryPolicy::default().backoff_budget_ms, None);
        let p = RetryPolicy::default().with_budget(750);
        assert_eq!(p.backoff_budget_ms, Some(750));
        let json = serde_json::to_string(&p).unwrap();
        let back: RetryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        // Pre-budget policies (no backoff_budget_ms key) still deserialize.
        let legacy: RetryPolicy = serde_json::from_str(
            "{\"max_retries\":3,\"base_backoff_ms\":100,\"multiplier\":2.0,\
             \"max_backoff_ms\":5000,\"jitter\":0.25}",
        )
        .unwrap();
        assert_eq!(legacy.backoff_budget_ms, None);
    }
}
