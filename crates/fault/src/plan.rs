//! Seeded, deterministic fault injection plans.

use serde::{Deserialize, Serialize};

use crate::wire::{WirePlan, WireRates};
use crate::{fnv1a, scramble, unit};

/// The injectable fault classes, mirroring the failure modes the paper's
/// automation observes from hosted endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The answer is cut off mid-token ("Comp" instead of "Compute").
    Truncate,
    /// The answer comes back wrapped in a format the single-token parser
    /// rejects (a JSON-ish envelope).
    Mangle,
    /// The model declines to answer.
    Refuse,
    /// The request times out with no answer at all.
    Timeout,
    /// A transient service error (connection reset / 5xx).
    Transient,
}

impl FaultKind {
    /// All kinds, in the cumulative-draw order [`FaultPlan::draw`] uses.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Truncate,
        FaultKind::Mangle,
        FaultKind::Refuse,
        FaultKind::Timeout,
        FaultKind::Transient,
    ];

    /// Whether this fault still yields response *text* (as opposed to a
    /// transport-level error with no body).
    pub fn has_body(self) -> bool {
        !matches!(self, FaultKind::Timeout | FaultKind::Transient)
    }
}

/// The canonical refusal body injected by [`FaultKind::Refuse`]; the retry
/// loop recognizes refusals by this text, as real harnesses pattern-match
/// hosted refusal phrasing.
pub const REFUSAL_TEXT: &str = "I'm sorry, but I can't help with that request.";

/// Whether a response body is a refusal.
pub fn is_refusal_text(text: &str) -> bool {
    text.trim_start().starts_with("I'm sorry")
}

/// Corrupt a clean answer according to a fault kind that has a body.
///
/// Every corruption is unparseable by the harness's single-token answer
/// parser *by construction*, so an injected fault always shows up in the
/// response accounting (never silently passes as valid).
///
/// Returns `None` for body-less kinds (`Timeout`/`Transient`) — those
/// surface as [`crate::PceError`]s, not as text.
pub fn corrupt_text(kind: FaultKind, clean: &str) -> Option<String> {
    match kind {
        FaultKind::Truncate => {
            let cut = clean.len().min(4);
            Some(clean[..cut].to_string())
        }
        FaultKind::Mangle => Some(format!("{{\"label\": \"{clean}\", \"confidence\": 0.5}}")),
        FaultKind::Refuse => Some(REFUSAL_TEXT.to_string()),
        FaultKind::Timeout | FaultKind::Transient => None,
    }
}

/// Per-kind injection probabilities. Each rate is a Bernoulli probability
/// in `[0, 1]`; their sum must stay ≤ 1 (at most one fault per attempt).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Probability of a truncated answer.
    pub truncate: f64,
    /// Probability of a format-mangled answer.
    pub mangle: f64,
    /// Probability of a refusal.
    pub refuse: f64,
    /// Probability of a request timeout.
    pub timeout: f64,
    /// Probability of a transient service error.
    pub transient: f64,
}

impl FaultRates {
    /// No faults at all.
    pub fn zero() -> FaultRates {
        FaultRates::uniform(0.0)
    }

    /// Split one total fault rate evenly across the five kinds.
    pub fn uniform(total: f64) -> FaultRates {
        let each = total.clamp(0.0, 1.0) / FaultKind::ALL.len() as f64;
        FaultRates {
            truncate: each,
            mangle: each,
            refuse: each,
            timeout: each,
            transient: each,
        }
    }

    /// The rates in [`FaultKind::ALL`] order.
    pub fn as_array(&self) -> [f64; 5] {
        [
            self.truncate,
            self.mangle,
            self.refuse,
            self.timeout,
            self.transient,
        ]
    }

    /// Total per-attempt fault probability.
    pub fn total(&self) -> f64 {
        self.as_array().iter().sum()
    }

    /// Human-readable problems; empty when the rates are usable.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (kind, rate) in FaultKind::ALL.iter().zip(self.as_array()) {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                problems.push(format!("{kind:?} rate {rate} is outside [0, 1]"));
            }
        }
        if self.total() > 1.0 {
            problems.push(format!("total fault rate {} exceeds 1", self.total()));
        }
        problems
    }
}

/// A seeded chaos plan: a pure function from request identity to an
/// optional injected fault.
///
/// The draw depends only on `(plan seed, model, prompt fingerprint,
/// request seed, attempt)` — never on wall-clock, thread id, or
/// evaluation order — so a chaos run renders byte-identically under any
/// `RAYON_NUM_THREADS`, and a retried attempt re-rolls its own fault
/// independently of the first attempt's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The chaos seed (`suite --chaos <seed>`).
    pub seed: u64,
    /// Per-kind injection rates.
    pub rates: FaultRates,
    /// Connection-layer injection rates (torn lines, disconnects,
    /// stalls), consumed through [`FaultPlan::wire_plan`]. Defaults to
    /// zero so response-only plans — and every plan serialized before the
    /// wire layer existed — behave exactly as before.
    #[serde(default)]
    pub wire: WireRates,
}

impl FaultPlan {
    /// Plan-selection salt, fixed so the realized fault pattern is pinned
    /// across builds.
    const PLAN_SALT: u64 = 0xfa_17_00_01;

    /// A plan with one total rate split evenly across all response fault
    /// kinds and no wire faults.
    pub fn uniform(seed: u64, total_rate: f64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: FaultRates::uniform(total_rate),
            wire: WireRates::zero(),
        }
    }

    /// This plan with its wire-layer rates replaced.
    pub fn with_wire(self, wire: WireRates) -> FaultPlan {
        FaultPlan { wire, ..self }
    }

    /// The connection-layer view of this plan, sharing its seed. The wire
    /// stream is salted independently of the response-fault stream, so
    /// enabling one never re-rolls the other.
    pub fn wire_plan(&self) -> WirePlan {
        WirePlan {
            seed: self.seed,
            rates: self.wire,
        }
    }

    /// Whether this plan can ever inject anything (response- *or*
    /// wire-level).
    pub fn is_active(&self) -> bool {
        self.rates.total() > 0.0 || self.wire.total() > 0.0
    }

    /// Decide the fault (if any) for one request attempt.
    pub fn draw(
        &self,
        model: &str,
        prompt_fp: u64,
        request_seed: u64,
        attempt: u32,
    ) -> Option<FaultKind> {
        if !self.is_active() {
            return None;
        }
        let h = fnv1a(&[
            &(self.seed ^ Self::PLAN_SALT).to_le_bytes(),
            model.as_bytes(),
            &prompt_fp.to_le_bytes(),
            &request_seed.to_le_bytes(),
            &attempt.to_le_bytes(),
        ]);
        let u = unit(scramble(h));
        let mut cumulative = 0.0;
        for (kind, rate) in FaultKind::ALL.iter().zip(self.rates.as_array()) {
            cumulative += rate;
            if u < cumulative {
                return Some(*kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_deterministic() {
        let plan = FaultPlan::uniform(42, 0.3);
        for attempt in 0..4 {
            assert_eq!(
                plan.draw("o3-mini", 0xabc, 7, attempt),
                plan.draw("o3-mini", 0xabc, 7, attempt)
            );
        }
    }

    #[test]
    fn draw_depends_on_every_identity_component() {
        // With a high rate, most draws inject; flipping any identity
        // component must change at least some outcomes over a window.
        let plan = FaultPlan::uniform(1, 0.9);
        let base: Vec<_> = (0..64).map(|i| plan.draw("m", i, 0, 0)).collect();
        let other_model: Vec<_> = (0..64).map(|i| plan.draw("n", i, 0, 0)).collect();
        let other_seed: Vec<_> = (0..64).map(|i| plan.draw("m", i, 1, 0)).collect();
        let other_attempt: Vec<_> = (0..64).map(|i| plan.draw("m", i, 0, 1)).collect();
        let other_plan: Vec<_> = (0..64)
            .map(|i| FaultPlan::uniform(2, 0.9).draw("m", i, 0, 0))
            .collect();
        assert_ne!(base, other_model);
        assert_ne!(base, other_seed);
        assert_ne!(base, other_attempt);
        assert_ne!(base, other_plan);
    }

    #[test]
    fn zero_rate_never_injects_and_is_inactive() {
        let plan = FaultPlan::uniform(9, 0.0);
        assert!(!plan.is_active());
        for i in 0..256 {
            assert_eq!(plan.draw("o1", i, i, 0), None);
        }
    }

    #[test]
    fn injection_frequency_tracks_the_rate() {
        let plan = FaultPlan::uniform(3, 0.2);
        let n = 4000;
        let injected = (0..n)
            .filter(|&i| plan.draw("gpt-4o", i, i, 0).is_some())
            .count();
        let freq = injected as f64 / n as f64;
        assert!((freq - 0.2).abs() < 0.03, "observed {freq}");
    }

    #[test]
    fn all_kinds_are_reachable_under_uniform_rates() {
        let plan = FaultPlan::uniform(5, 0.5);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..4000 {
            if let Some(kind) = plan.draw("m", i, i, 0) {
                seen.insert(format!("{kind:?}"));
            }
        }
        assert_eq!(seen.len(), FaultKind::ALL.len(), "{seen:?}");
    }

    #[test]
    fn corruptions_never_parse_as_answers() {
        // The harness's answer parser accepts "compute"/"bandwidth"/
        // "memory" prefixes (case-insensitive); every injected body must
        // miss all three.
        for clean in ["Compute", "Bandwidth"] {
            for kind in FaultKind::ALL {
                let Some(body) = corrupt_text(kind, clean) else {
                    assert!(!kind.has_body());
                    continue;
                };
                let lower = body.trim().to_ascii_lowercase();
                assert!(
                    !lower.starts_with("compute")
                        && !lower.starts_with("bandwidth")
                        && !lower.starts_with("memory"),
                    "{kind:?} produced a parseable body: {body}"
                );
            }
        }
        assert!(is_refusal_text(REFUSAL_TEXT));
        assert!(!is_refusal_text("Compute"));
    }

    #[test]
    fn rates_validate_bounds() {
        assert!(FaultRates::uniform(0.4).validate().is_empty());
        assert!(FaultRates::zero().validate().is_empty());
        let bad = FaultRates {
            truncate: -0.1,
            ..FaultRates::zero()
        };
        assert!(bad.validate()[0].contains("outside [0, 1]"));
        let too_much = FaultRates {
            truncate: 0.6,
            mangle: 0.6,
            ..FaultRates::zero()
        };
        assert!(too_much.validate().iter().any(|p| p.contains("exceeds 1")));
    }

    #[test]
    fn uniform_split_is_even_and_clamped() {
        let r = FaultRates::uniform(0.5);
        assert!((r.total() - 0.5).abs() < 1e-12);
        assert_eq!(r.truncate, r.transient);
        assert!((FaultRates::uniform(7.0).total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan::uniform(42, 0.1).with_wire(WireRates::uniform(0.2));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
        // Plans serialized before the wire layer existed still deserialize,
        // with wire rates defaulting to zero.
        let legacy: FaultPlan = serde_json::from_str(
            "{\"seed\":42,\"rates\":{\"truncate\":0.1,\"mangle\":0.0,\
             \"refuse\":0.0,\"timeout\":0.0,\"transient\":0.0}}",
        )
        .unwrap();
        assert_eq!(legacy.wire, WireRates::zero());
        assert!(!legacy.wire_plan().is_active());
    }

    #[test]
    fn wire_plan_shares_the_seed_and_activates_the_plan() {
        let quiet = FaultPlan::uniform(9, 0.0);
        assert!(!quiet.is_active());
        let wired = quiet.with_wire(WireRates::uniform(0.3));
        assert!(wired.is_active());
        assert_eq!(wired.wire_plan().seed, 9);
        // Wire chaos never bleeds into the response-fault stream.
        for i in 0..256 {
            assert_eq!(wired.draw("o1", i, i, 0), None);
        }
    }
}
