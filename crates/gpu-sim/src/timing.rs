//! The bounded-resource timing model.
//!
//! Kernel runtime is estimated as the slowest of the machine's contended
//! resources — FP32 pipes, FP64 pipes, INT pipes, SFU, shared memory, and
//! DRAM — plus a fixed launch overhead, divided by the launch's achieved
//! parallelism (occupancy × wave efficiency). This is a classical
//! "bottleneck" model: exactly the abstraction the Roofline model itself is
//! built on, extended with issue-rate detail so kernels do not all sit
//! *on* the roofline (the paper's Fig. 1 shows most kernels well below
//! their ceilings).

use serde::{Deserialize, Serialize};

use pce_roofline::HardwareSpec;

use crate::ir::ThreadCosts;
use crate::launch::LaunchConfig;
use crate::memory::MemoryResolution;

/// Fixed kernel launch overhead in seconds (driver + hardware dispatch).
pub const LAUNCH_OVERHEAD_S: f64 = 4.0e-6;

/// Breakdown of the timing estimate, useful for reports and ablations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Time the FP32 pipes would need, in seconds.
    pub t_fp32: f64,
    /// Time the FP64 pipes would need.
    pub t_fp64: f64,
    /// Time the INT pipes would need.
    pub t_int: f64,
    /// Time the special-function units would need.
    pub t_sfu: f64,
    /// Time shared-memory banks would need.
    pub t_shared: f64,
    /// Time the DRAM interface would need.
    pub t_dram: f64,
    /// Barrier/latency exposure not hidden by occupancy.
    pub t_latency: f64,
    /// Final runtime estimate (max of the above × slowdowns + overhead).
    pub runtime_s: f64,
    /// Achieved occupancy used in the estimate.
    pub occupancy: f64,
    /// Wave (tail) efficiency used in the estimate.
    pub wave_efficiency: f64,
}

impl TimingBreakdown {
    /// Name of the limiting resource.
    pub fn bottleneck(&self) -> &'static str {
        let pairs = [
            ("fp32", self.t_fp32),
            ("fp64", self.t_fp64),
            ("int", self.t_int),
            ("sfu", self.t_sfu),
            ("shared", self.t_shared),
            ("dram", self.t_dram),
            ("latency", self.t_latency),
        ];
        pairs
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or("latency", |p| p.0)
    }
}

/// Estimate the runtime of one kernel launch.
///
/// `costs` are per-thread; `mem` is the resolved DRAM traffic.
pub fn estimate_runtime(
    hw: &HardwareSpec,
    launch: &LaunchConfig,
    costs: &ThreadCosts,
    mem: &MemoryResolution,
) -> TimingBreakdown {
    let threads = launch.total_threads() as f64;
    let occupancy = launch.occupancy();
    let wave = launch.wave_efficiency(hw);

    // Parallel efficiency: low occupancy exposes latency; tails idle SMs.
    // Even a perfect launch cannot exceed ~85% of theoretical issue peak
    // on real silicon (Fig. 1's "theoretical peak is usually unmet").
    let issue_eff = 0.85 * wave * (0.35 + 0.65 * occupancy);

    // Divergence inflates issue counts.
    let div_inflation = 1.0 + costs.divergence.min(4.0) * 0.15;

    // Pipe throughputs in instructions/s, derived from the spec's peaks.
    // FP32 peak counts FMA as 2 flops, so instruction peak = flop peak / 2.
    let fp32_ips = hw.peak_sp_gflops * 1e9 / 2.0;
    let fp64_ips = hw.peak_dp_gflops * 1e9 / 2.0;
    let int_ips = hw.peak_int_giops * 1e9;
    // SFU throughput is 1/4 of FP32 issue on Ampere-class parts.
    let sfu_ips = fp32_ips / 4.0;
    // Shared memory: ~1 access/cycle/warp-lane across the chip.
    let shared_aps = hw.num_sms as f64 * 32.0 * hw.core_clock_mhz * 1e6;

    let eff = issue_eff.max(1e-3);
    let t_fp32 = costs.inst_fp32 * div_inflation * threads / (fp32_ips * eff);
    let t_fp64 = costs.inst_fp64 * div_inflation * threads / (fp64_ips * eff);
    let t_int = costs.inst_int * div_inflation * threads / (int_ips * eff);
    let t_sfu = costs.inst_sfu * threads / (sfu_ips * eff);
    let t_shared = costs.shared_accesses * threads / (shared_aps * eff);

    let dram_bps = hw.bandwidth_gbs * 1e9 * mem.bandwidth_efficiency;
    let t_dram = mem.total_bytes() / dram_bps;

    // Latency exposure from barriers: each sync drains the pipeline once
    // per block wave (~600 cycles), hidden proportionally by occupancy.
    let waves = (launch.grid.count() as f64 / hw.num_sms as f64)
        .ceil()
        .max(1.0);
    let t_latency =
        costs.syncs * waves * 600.0 / (hw.core_clock_mhz * 1e6) * (1.0 - 0.8 * occupancy).max(0.05);

    let body = t_fp32
        .max(t_fp64)
        .max(t_int)
        .max(t_sfu)
        .max(t_shared)
        .max(t_dram)
        .max(t_latency);
    // Secondary resources overlap imperfectly with the bottleneck: charge
    // a 10% tax of the runner-up to avoid knife-edge max() artifacts.
    let mut sorted = [t_fp32, t_fp64, t_int, t_sfu, t_shared, t_dram, t_latency];
    sorted.sort_by(|a, b| b.total_cmp(a));
    let runtime_s = body + 0.1 * sorted[1] + LAUNCH_OVERHEAD_S;

    TimingBreakdown {
        t_fp32,
        t_fp64,
        t_int,
        t_sfu,
        t_shared,
        t_dram,
        t_latency,
        runtime_s,
        occupancy,
        wave_efficiency: wave,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, Extent, KernelIr, Op, Precision};
    use crate::memory::resolve_memory;

    fn hw() -> HardwareSpec {
        HardwareSpec::rtx_3080()
    }

    fn run(kernel: &KernelIr, launch: &LaunchConfig) -> TimingBreakdown {
        let s = kernel.summarize(&launch.params);
        let mem = resolve_memory(&hw(), kernel, launch, &s.demands);
        estimate_runtime(&hw(), launch, &s.costs, &mem)
    }

    #[test]
    fn streaming_kernel_is_dram_bound() {
        let n = 32_000_000u64;
        let k = KernelIr::builder("copy")
            .buffer("in", 4, Extent::Param("n".into()))
            .buffer("out", 4, Extent::Param("n".into()))
            .op(Op::load("in", AccessPattern::Coalesced))
            .op(Op::store("out", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let t = run(&k, &lc);
        assert_eq!(t.bottleneck(), "dram");
        // 256 MB at ~700 GB/s -> a few hundred microseconds.
        assert!(
            t.runtime_s > 1e-4 && t.runtime_s < 1e-2,
            "runtime {}",
            t.runtime_s
        );
    }

    #[test]
    fn flop_heavy_kernel_is_compute_bound() {
        let n = 1_000_000u64;
        let k = KernelIr::builder("mandel")
            .buffer("out", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(5000),
                vec![Op::fma(Precision::F32)],
            ))
            .op(Op::store("out", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let t = run(&k, &lc);
        assert_eq!(t.bottleneck(), "fp32");
    }

    #[test]
    fn dp_kernel_bottlenecks_on_fp64_pipes() {
        let n = 1_000_000u64;
        let k = KernelIr::builder("dpstress")
            .buffer("out", 8, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(200),
                vec![Op::fma(Precision::F64)],
            ))
            .op(Op::store("out", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let t = run(&k, &lc);
        assert_eq!(t.bottleneck(), "fp64");
        // The 3080's DP pipes are 1/64 rate: this must dominate DRAM.
        assert!(t.t_fp64 > 10.0 * t.t_dram);
    }

    #[test]
    fn runtime_includes_launch_overhead_floor() {
        let k = KernelIr::builder("tiny")
            .op(Op::flop(Precision::F32))
            .build();
        let lc = LaunchConfig::linear(32, 32).unwrap();
        let t = run(&k, &lc);
        assert!(t.runtime_s >= LAUNCH_OVERHEAD_S);
    }

    #[test]
    fn achieved_flops_stay_below_peak() {
        let n = 4_000_000u64;
        let k = KernelIr::builder("peak")
            .buffer("out", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(1000),
                vec![Op::fma(Precision::F32)],
            ))
            .op(Op::store("out", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let t = run(&k, &lc);
        let flops = 2.0 * 1000.0 * n as f64;
        let achieved_gflops = flops / t.runtime_s / 1e9;
        assert!(achieved_gflops < hw().peak_sp_gflops);
        assert!(achieved_gflops > 0.3 * hw().peak_sp_gflops);
    }

    #[test]
    fn low_occupancy_slows_kernels_down() {
        let n = 4_000_000u64;
        let body = || {
            KernelIr::builder("occ")
                .buffer("out", 4, Extent::Param("n".into()))
                .op(Op::loop_n(
                    Extent::Const(500),
                    vec![Op::fma(Precision::F32)],
                ))
                .op(Op::store("out", AccessPattern::Coalesced))
                .build()
        };
        let good = LaunchConfig::linear(n, 256)
            .unwrap()
            .with_param("n", n)
            .with_regs(32);
        let bad = LaunchConfig::linear(n, 256)
            .unwrap()
            .with_param("n", n)
            .with_regs(255);
        let tg = run(&body(), &good);
        let tb = run(&body(), &bad);
        assert!(tb.runtime_s > tg.runtime_s);
        assert!(tb.occupancy < tg.occupancy);
    }

    #[test]
    fn sync_heavy_small_grid_pays_latency() {
        let k = KernelIr::builder("barrier")
            .ops((0..50).map(|_| Op::Sync))
            .build();
        let lc = LaunchConfig {
            regs_per_thread: 200,
            ..LaunchConfig::linear(2048, 64).unwrap()
        };
        let t = run(&k, &lc);
        assert!(t.t_latency > 0.0);
    }
}
