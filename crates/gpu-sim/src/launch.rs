//! CUDA-style launch geometry and the occupancy model.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use pce_fault::PceError;
use pce_roofline::HardwareSpec;

/// A CUDA `dim3`: x/y/z extents of a grid or block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dim.
    pub fn linear(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dim.
    pub fn plane(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// A kernel launch: grid/block geometry plus named scalar parameters
/// (problem sizes, iteration counts — the values benchmark binaries take
/// from their command line).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Grid dimensions (blocks).
    pub grid: Dim3,
    /// Block dimensions (threads per block).
    pub block: Dim3,
    /// Named launch parameters consumed by `Extent::Param`.
    pub params: BTreeMap<String, u64>,
    /// Registers per thread (occupancy input; 32 is a typical compiler
    /// outcome for medium kernels).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes (occupancy input).
    pub shared_bytes_per_block: u32,
}

impl LaunchConfig {
    /// A 1-D launch covering `n` elements with `block` threads per block.
    ///
    /// Errors if the block size is outside `1..=1024` or the domain needs
    /// more blocks than a `u32` grid dimension can address — silently
    /// clamping would under-cover the domain and mislabel the kernel.
    pub fn linear(n: u64, block: u32) -> Result<LaunchConfig, PceError> {
        if block == 0 || block > 1024 {
            return Err(PceError::spec(format!(
                "block size {block} must be in 1..=1024"
            )));
        }
        let blocks = n.div_ceil(block as u64);
        if blocks > u32::MAX as u64 {
            return Err(PceError::spec(format!(
                "linear launch over n={n} elements needs {blocks} blocks of {block}, \
                 which exceeds the u32 grid limit"
            )));
        }
        Ok(LaunchConfig {
            grid: Dim3::linear(blocks as u32),
            block: Dim3::linear(block),
            params: BTreeMap::new(),
            regs_per_thread: 32,
            shared_bytes_per_block: 0,
        })
    }

    /// A 2-D launch covering an `nx` × `ny` domain with `bx` × `by` blocks.
    ///
    /// Errors on an empty or over-wide block shape (the `bx * by <= 1024`
    /// check is done in 64-bit — in u32 it wraps, so e.g. 65536×65536
    /// passes as 0) and on grids that overflow a `u32` dimension.
    pub fn plane(nx: u64, ny: u64, bx: u32, by: u32) -> Result<LaunchConfig, PceError> {
        if bx == 0 || by == 0 || (bx as u64) * (by as u64) > 1024 {
            return Err(PceError::spec(format!(
                "block shape {bx}x{by} must be non-empty and hold at most 1024 threads"
            )));
        }
        let (gx, gy) = (nx.div_ceil(bx as u64), ny.div_ceil(by as u64));
        if gx > u32::MAX as u64 || gy > u32::MAX as u64 {
            return Err(PceError::spec(format!(
                "plane launch over {nx}x{ny} needs a {gx}x{gy} grid, \
                 which exceeds the u32 grid limit"
            )));
        }
        Ok(LaunchConfig {
            grid: Dim3::plane(gx as u32, gy as u32),
            block: Dim3::plane(bx, by),
            params: BTreeMap::new(),
            regs_per_thread: 40,
            shared_bytes_per_block: 0,
        })
    }

    /// Attach a named parameter (builder style).
    pub fn with_param(mut self, name: &str, value: u64) -> Self {
        self.params.insert(name.to_string(), value);
        self
    }

    /// Set register pressure (builder style).
    pub fn with_regs(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Set shared-memory usage (builder style).
    pub fn with_shared_bytes(mut self, bytes: u32) -> Self {
        self.shared_bytes_per_block = bytes;
        self
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u64 {
        self.block.count()
    }

    /// Total launched threads.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }

    /// Total warps (32-thread groups, padded per block).
    pub fn total_warps(&self) -> u64 {
        self.grid.count() * self.threads_per_block().div_ceil(32)
    }

    /// Theoretical occupancy in `(0, 1]`: fraction of each SM's warp slots
    /// this launch can keep resident, limited by warps, registers, and
    /// shared memory (an Ampere-like SM: 48 warp slots, 65 536 registers,
    /// 100 KiB shared).
    pub fn occupancy(&self) -> f64 {
        const MAX_WARPS_PER_SM: f64 = 48.0;
        const REGS_PER_SM: f64 = 65_536.0;
        const SHARED_PER_SM: f64 = 100.0 * 1024.0;
        const MAX_BLOCKS_PER_SM: f64 = 16.0;

        let warps_per_block = (self.threads_per_block().div_ceil(32)) as f64;
        let blocks_by_warps = (MAX_WARPS_PER_SM / warps_per_block).floor();
        let regs_per_block = self.regs_per_thread as f64 * self.threads_per_block() as f64;
        let blocks_by_regs = (REGS_PER_SM / regs_per_block.max(1.0)).floor();
        let blocks_by_shared = if self.shared_bytes_per_block == 0 {
            MAX_BLOCKS_PER_SM
        } else {
            (SHARED_PER_SM / self.shared_bytes_per_block as f64).floor()
        };
        let blocks = blocks_by_warps
            .min(blocks_by_regs)
            .min(blocks_by_shared)
            .clamp(1.0, MAX_BLOCKS_PER_SM);
        ((blocks * warps_per_block) / MAX_WARPS_PER_SM).min(1.0)
    }

    /// Tail-effect utilization: fraction of SM-waves that are full.
    ///
    /// A launch whose block count is a small non-multiple of the SM count
    /// leaves silicon idle in its last wave.
    pub fn wave_efficiency(&self, hw: &HardwareSpec) -> f64 {
        let blocks = self.grid.count() as f64;
        let sms = hw.num_sms as f64;
        if blocks >= 8.0 * sms {
            return 1.0; // deep launches amortize the tail
        }
        let waves = (blocks / sms).ceil().max(1.0);
        (blocks / (waves * sms)).clamp(0.05, 1.0)
    }

    /// Render as the `(gx,gy,gz) and (bx,by,bz)` string the paper's prompt
    /// template interpolates (Fig. 4).
    pub fn geometry_string(&self) -> String {
        format!("{} and {}", self.grid, self.block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_launch_covers_all_elements() {
        let lc = LaunchConfig::linear(1000, 256).unwrap();
        assert_eq!(lc.grid.x, 4);
        assert_eq!(lc.total_threads(), 1024);
        assert_eq!(lc.threads_per_block(), 256);
        assert_eq!(lc.total_warps(), 4 * 8);
    }

    #[test]
    fn exact_multiple_has_no_padding() {
        let lc = LaunchConfig::linear(1024, 256).unwrap();
        assert_eq!(lc.total_threads(), 1024);
    }

    #[test]
    fn plane_launch_geometry() {
        let lc = LaunchConfig::plane(100, 60, 16, 16).unwrap();
        assert_eq!(lc.grid.x, 7);
        assert_eq!(lc.grid.y, 4);
        assert_eq!(lc.block.count(), 256);
    }

    #[test]
    fn occupancy_full_for_modest_kernels() {
        let lc = LaunchConfig::linear(1 << 20, 256).unwrap().with_regs(32);
        assert!((lc.occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_limited_by_registers() {
        let lc = LaunchConfig::linear(1 << 20, 256).unwrap().with_regs(255);
        // 255 regs * 256 threads = 65280 regs per block -> 1 block -> 8/48.
        assert!(lc.occupancy() < 0.2);
    }

    #[test]
    fn occupancy_limited_by_shared_memory() {
        let lc = LaunchConfig::linear(1 << 20, 128)
            .unwrap()
            .with_shared_bytes(50 * 1024);
        // 2 blocks by shared -> 8 warps resident of 48.
        assert!(lc.occupancy() < 0.2);
    }

    #[test]
    fn wave_efficiency_penalizes_tiny_grids() {
        let hw = HardwareSpec::rtx_3080();
        let tiny = LaunchConfig {
            grid: Dim3::linear(10),
            ..LaunchConfig::linear(2560, 256).unwrap()
        };
        assert!(tiny.wave_efficiency(&hw) < 0.2);
        let deep = LaunchConfig::linear(1 << 22, 256).unwrap();
        assert_eq!(deep.wave_efficiency(&hw), 1.0);
    }

    #[test]
    fn geometry_string_matches_prompt_format() {
        let lc = LaunchConfig::plane(32, 32, 16, 16).unwrap();
        assert_eq!(lc.geometry_string(), "(2,2,1) and (16,16,1)");
    }

    #[test]
    fn params_round_trip() {
        let lc = LaunchConfig::linear(100, 32)
            .unwrap()
            .with_param("n", 100)
            .with_param("iters", 5);
        assert_eq!(lc.params["n"], 100);
        assert_eq!(lc.params["iters"], 5);
    }

    #[test]
    fn oversized_block_is_an_error() {
        let err = LaunchConfig::linear(10, 2048).unwrap_err();
        assert!(err.to_string().contains("block size 2048"), "{err}");
        assert!(LaunchConfig::linear(10, 0).is_err());
    }

    #[test]
    fn linear_grid_overflow_is_an_error_not_a_clamp() {
        // (u32::MAX + 1) blocks of 1 thread: the old code clamped the grid
        // to u32::MAX and silently under-covered the domain.
        let n = (u32::MAX as u64) + 1;
        let err = LaunchConfig::linear(n, 1).unwrap_err();
        assert!(err.to_string().contains("u32 grid limit"), "{err}");
        // The largest domain that still fits is fine.
        let lc = LaunchConfig::linear(u32::MAX as u64, 1).unwrap();
        assert_eq!(lc.grid.x, u32::MAX);
    }

    #[test]
    fn plane_block_shape_check_does_not_wrap_at_u32() {
        // 65536 * 65536 wraps to 0 in u32, so the old assert passed a
        // 4-billion-thread block; the widened check rejects it.
        let err = LaunchConfig::plane(1 << 20, 1 << 20, 65536, 65536).unwrap_err();
        assert!(err.to_string().contains("65536x65536"), "{err}");
        assert!(LaunchConfig::plane(64, 64, 0, 16).is_err());
        assert!(LaunchConfig::plane(64, 64, 33, 32).is_err(), "1056 > 1024");
        assert!(LaunchConfig::plane(64, 64, 32, 32).is_ok());
    }

    #[test]
    fn plane_grid_overflow_is_an_error() {
        let err = LaunchConfig::plane((u32::MAX as u64) * 2, 16, 1, 16).unwrap_err();
        assert!(err.to_string().contains("u32 grid limit"), "{err}");
    }
}
