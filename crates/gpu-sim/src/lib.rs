//! # pce-gpu-sim
//!
//! A deterministic GPU micro-architecture simulator standing in for the
//! paper's NVIDIA RTX 3080 + profiler (nvprof/Nsight Compute) stack.
//!
//! The paper's pipeline consumes exactly five profiled quantities per kernel
//! launch — SP-FLOPs, DP-FLOPs, INTOPs, DRAM read/write bytes, and execution
//! time (§2.1). This crate reproduces that interface:
//!
//! * [`ir`] — a compact kernel IR (loop nests over arithmetic ops and
//!   pattern-annotated memory accesses) that benchmark programs lower to,
//! * [`launch`] — CUDA-style grid/block launch geometry and kernel
//!   parameters, plus an occupancy model,
//! * [`memory`] — warp-level coalescing (32-byte sectors) and a capacity/
//!   locality L2 model that converts *requested* bytes into *DRAM* bytes —
//!   the crucial source of divergence between source-apparent and empirical
//!   arithmetic intensity,
//! * [`timing`] — a bounded-resource timing model
//!   (`max(compute, memory) + launch overhead`, scaled by occupancy and
//!   divergence efficiency),
//! * [`profiler`] — the nvprof-like front end producing
//!   [`KernelProfile`](profiler::KernelProfile)s, with a rayon-parallel
//!   batch API.
//!
//! Everything is pure arithmetic over the IR: the same (kernel, launch,
//! hardware) triple always produces bit-identical profiles, which keeps the
//! whole evaluation pipeline reproducible.
//!
//! ```
//! use pce_gpu_sim::prelude::*;
//! use pce_roofline::HardwareSpec;
//!
//! // A SAXPY kernel: y[i] = a*x[i] + y[i]
//! let kernel = KernelIr::builder("saxpy")
//!     .buffer("x", 4, Extent::Param("n".into()))
//!     .buffer("y", 4, Extent::Param("n".into()))
//!     .op(Op::load("x", AccessPattern::Coalesced))
//!     .op(Op::load("y", AccessPattern::Coalesced))
//!     .op(Op::fma(Precision::F32))
//!     .op(Op::store("y", AccessPattern::Coalesced))
//!     .guard_fraction(1.0)
//!     .build();
//!
//! let launch = LaunchConfig::linear(1 << 20, 256)
//!     .expect("valid launch shape")
//!     .with_param("n", 1 << 20);
//! let profile = Profiler::new(HardwareSpec::rtx_3080()).profile(&kernel, &launch);
//! assert!(profile.counts.flops_sp > 0);
//! assert!(profile.runtime_s > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod cache;
pub mod ir;
pub mod launch;
pub mod memory;
pub mod profiler;
pub mod timing;

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::cache::{CacheCounters, SimBudget, SimCaches};
    pub use crate::ir::{AccessPattern, Extent, IntKind, KernelIr, Op, Precision, SpecialFn};
    pub use crate::launch::{Dim3, LaunchConfig};
    pub use crate::profiler::{KernelProfile, Profiler};
}

pub use cache::{CacheCounters, SimBudget, SimCaches};
pub use ir::{AccessPattern, Extent, IntKind, KernelIr, Op, Precision, SpecialFn};
pub use launch::{Dim3, LaunchConfig};
pub use profiler::{KernelProfile, Profiler};
