//! The memory system model: warp-level coalescing into 32-byte sectors,
//! and an analytic L2 capacity/locality model that converts *requested*
//! bytes into *DRAM* bytes.
//!
//! This is the component that makes empirical arithmetic intensity diverge
//! from what the source code suggests — reuse-heavy kernels see far less
//! DRAM traffic than their load/store counts imply, while badly-strided
//! kernels see far more. That divergence is precisely what makes the
//! paper's static-prediction task hard (§1), so it must be modeled rather
//! than assumed away.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use pce_roofline::HardwareSpec;

use crate::ir::{AccessPattern, Dir, KernelIr, MemDemand};
use crate::launch::LaunchConfig;

/// DRAM transaction sector size in bytes (NVIDIA L2 sector granularity).
pub const SECTOR_BYTES: f64 = 32.0;

/// Per-buffer traffic resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferTraffic {
    /// Buffer name.
    pub buffer: String,
    /// Resolved footprint in bytes.
    pub footprint_bytes: f64,
    /// Bytes the kernel *requested* to read (threads × accesses × width).
    pub requested_read_bytes: f64,
    /// Bytes the kernel requested to write.
    pub requested_write_bytes: f64,
    /// Read bytes that crossed the L2↔DRAM boundary.
    pub dram_read_bytes: f64,
    /// Write bytes that crossed the L2↔DRAM boundary.
    pub dram_write_bytes: f64,
}

impl BufferTraffic {
    /// L2 hit rate implied by the read-side numbers.
    pub fn read_hit_rate(&self) -> f64 {
        if self.requested_read_bytes <= 0.0 {
            return 0.0;
        }
        (1.0 - self.dram_read_bytes / self.requested_read_bytes).clamp(0.0, 1.0)
    }
}

/// The full memory-system resolution for one launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryResolution {
    /// Per-buffer traffic breakdown.
    pub buffers: Vec<BufferTraffic>,
    /// Total DRAM read bytes.
    pub dram_read_bytes: f64,
    /// Total DRAM write bytes.
    pub dram_write_bytes: f64,
    /// Bandwidth efficiency factor for the timing model, in `(0, 1]`:
    /// how close to peak DRAM bandwidth this access mix can stream.
    pub bandwidth_efficiency: f64,
}

/// Coalescing expansion factor: the ratio of sector bytes actually moved
/// to bytes usefully requested, for one access site.
///
/// * Fully coalesced 4-byte accesses pack 32 lanes into 4 sectors — every
///   moved byte is useful (factor 1.0).
/// * A stride of `s` elements spreads lanes over more sectors; once the
///   stride reaches a full sector each lane drags an entire 32-byte sector
///   for `elem_bytes` useful bytes.
/// * Random access behaves like the worst-case stride.
/// * Broadcast moves one sector for the whole warp.
pub fn coalescing_factor(pattern: AccessPattern, elem_bytes: u64) -> f64 {
    let elem = elem_bytes as f64;
    match pattern {
        AccessPattern::Coalesced => 1.0,
        AccessPattern::Strided(stride) => {
            let span = elem * stride as f64;
            if span <= 0.0 {
                1.0
            } else {
                // Lanes spaced `span` bytes apart: sectors touched per lane
                // grows until one full sector per lane.
                (span / elem).min(SECTOR_BYTES / elem).max(1.0)
            }
        }
        AccessPattern::Random => (SECTOR_BYTES / elem).max(1.0),
        AccessPattern::Broadcast => 1.0 / 32.0,
    }
}

/// Streaming efficiency of the DRAM interface for one pattern: irregular
/// request streams cannot saturate GDDR6X.
fn pattern_stream_efficiency(pattern: AccessPattern) -> f64 {
    match pattern {
        AccessPattern::Coalesced => 0.92,
        AccessPattern::Strided(s) if s <= 2 => 0.85,
        AccessPattern::Strided(_) => 0.60,
        AccessPattern::Random => 0.35,
        AccessPattern::Broadcast => 0.95,
    }
}

/// Temporal-locality credit of a pattern: how friendly its reuse stream is
/// to an LRU-ish L2 when the footprint exceeds capacity.
fn pattern_locality(pattern: AccessPattern) -> f64 {
    match pattern {
        AccessPattern::Coalesced => 0.35,
        AccessPattern::Strided(_) => 0.20,
        AccessPattern::Random => 0.05,
        AccessPattern::Broadcast => 0.98,
    }
}

/// Resolve the DRAM traffic for a kernel launch.
///
/// For every buffer we aggregate its access sites, apply coalescing to get
/// sector-level request streams, then run the capacity model:
///
/// * **reads** — the first touch of each resident byte is a compulsory
///   DRAM read (`min(footprint, requested)`); re-reads hit in L2 with
///   probability `p_hit = clamp(l2 / footprint) ⊕ locality`.
/// * **writes** — L2 is write-back: a buffer whose footprint fits in cache
///   writes each dirty byte to DRAM once; streaming writes larger than
///   cache pay per-sector.
pub fn resolve_memory(
    hw: &HardwareSpec,
    kernel: &KernelIr,
    launch: &LaunchConfig,
    demands: &[MemDemand],
) -> MemoryResolution {
    let total_threads = launch.total_threads() as f64;
    let l2 = hw.l2_bytes as f64;

    // Group demands per buffer.
    let mut per_buffer: BTreeMap<&str, Vec<&MemDemand>> = BTreeMap::new();
    for d in demands {
        per_buffer.entry(d.buffer.as_str()).or_default().push(d);
    }

    let mut buffers = Vec::with_capacity(per_buffer.len());
    let mut weighted_eff = 0.0;
    let mut moved_total = 0.0;
    let mut total_dram = 0.0;

    for (name, sites) in per_buffer {
        let decl = kernel
            .buffer(name)
            .expect("validated kernel cannot reference unknown buffer");
        let elem = decl.elem_bytes as f64;
        let footprint = decl.len.resolve(&launch.params) as f64 * elem;

        let mut requested_read = 0.0;
        let mut requested_write = 0.0;
        let mut sectored_read = 0.0;
        let mut sectored_write = 0.0;
        let mut locality_acc = 0.0;
        let mut eff_acc = 0.0;
        let mut weight_acc = 0.0;

        for site in &sites {
            let useful = site.accesses_per_thread * total_threads * elem;
            let moved = useful * coalescing_factor(site.pattern, decl.elem_bytes);
            match site.dir {
                Dir::Read => {
                    requested_read += useful;
                    sectored_read += moved;
                }
                Dir::Write => {
                    requested_write += useful;
                    sectored_write += moved;
                }
            }
            locality_acc += pattern_locality(site.pattern) * moved;
            eff_acc += pattern_stream_efficiency(site.pattern) * moved;
            weight_acc += moved;
        }

        let locality = if weight_acc > 0.0 {
            locality_acc / weight_acc
        } else {
            0.0
        };

        // --- Read side ---
        let compulsory = footprint.min(sectored_read);
        let reuse = (sectored_read - compulsory).max(0.0);
        let capacity_miss = if footprint <= 0.0 {
            0.0
        } else {
            (1.0 - l2 / footprint).clamp(0.0, 1.0)
        };
        // Re-reads miss when the line was evicted. Three effects shrink the
        // miss rate: residency (capacity), stream friendliness (locality),
        // and temporal clustering — a buffer re-read many times over
        // (GEMM operands, stencil halos, n-body positions) is touched by
        // co-scheduled blocks close together in time, so reuse distance is
        // far shorter than a full sweep. The last term models that.
        let reuse_factor = if footprint > 0.0 {
            (requested_read / footprint).max(1.0)
        } else {
            1.0
        };
        let miss = capacity_miss * (1.0 - locality) / (1.0 + reuse_factor / 32.0);
        let dram_read = compulsory + reuse * miss;

        // --- Write side (write-back L2) ---
        let written_footprint = footprint.min(sectored_write);
        let dram_write = if footprint <= l2 {
            // All dirty lines fit: one write-back per written byte.
            written_footprint
        } else {
            // Streaming writes: mostly per-sector, some write-combining.
            written_footprint.max(sectored_write * (1.0 - locality * 0.5))
        };

        total_dram += dram_read + dram_write;
        weighted_eff += eff_acc;
        moved_total += weight_acc;

        buffers.push(BufferTraffic {
            buffer: name.to_string(),
            footprint_bytes: footprint,
            requested_read_bytes: requested_read,
            requested_write_bytes: requested_write,
            dram_read_bytes: dram_read,
            dram_write_bytes: dram_write,
        });
    }

    let bandwidth_efficiency = if moved_total > 0.0 {
        (weighted_eff / moved_total).clamp(0.2, 0.95)
    } else {
        0.9
    };

    MemoryResolution {
        dram_read_bytes: buffers.iter().map(|b| b.dram_read_bytes).sum(),
        dram_write_bytes: buffers.iter().map(|b| b.dram_write_bytes).sum(),
        buffers,
        bandwidth_efficiency,
    }
    .assert_sane(total_dram)
}

impl MemoryResolution {
    fn assert_sane(self, expected_total: f64) -> Self {
        let total = self.dram_read_bytes + self.dram_write_bytes;
        debug_assert!(
            (total - expected_total).abs() <= 1e-6 * expected_total.max(1.0),
            "traffic accounting mismatch: {total} vs {expected_total}"
        );
        self
    }

    /// Total DRAM traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.dram_read_bytes + self.dram_write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Extent, KernelIr, Op};

    fn hw() -> HardwareSpec {
        HardwareSpec::rtx_3080()
    }

    fn streaming_kernel(n: u64) -> (KernelIr, LaunchConfig) {
        let k = KernelIr::builder("stream")
            .buffer("in", 4, Extent::Param("n".into()))
            .buffer("out", 4, Extent::Param("n".into()))
            .op(Op::load("in", AccessPattern::Coalesced))
            .op(Op::store("out", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        (k, lc)
    }

    #[test]
    fn coalesced_f32_has_no_expansion() {
        assert_eq!(coalescing_factor(AccessPattern::Coalesced, 4), 1.0);
        assert_eq!(coalescing_factor(AccessPattern::Coalesced, 8), 1.0);
    }

    #[test]
    fn random_f32_drags_full_sectors() {
        assert_eq!(coalescing_factor(AccessPattern::Random, 4), 8.0);
        assert_eq!(coalescing_factor(AccessPattern::Random, 8), 4.0);
        // A 32-byte element already fills a sector.
        assert_eq!(coalescing_factor(AccessPattern::Random, 32), 1.0);
    }

    #[test]
    fn stride_expansion_saturates_at_sector_per_lane() {
        let two = coalescing_factor(AccessPattern::Strided(2), 4);
        let eight = coalescing_factor(AccessPattern::Strided(8), 4);
        let huge = coalescing_factor(AccessPattern::Strided(1000), 4);
        assert!(two > 1.0 && two <= eight);
        assert_eq!(eight, 8.0);
        assert_eq!(huge, 8.0); // capped at sector/elem
    }

    #[test]
    fn broadcast_shrinks_traffic() {
        assert!(coalescing_factor(AccessPattern::Broadcast, 4) < 0.1);
    }

    #[test]
    fn streaming_traffic_matches_footprints() {
        // Footprint >> L2: every byte read once from DRAM, written once.
        let n = 64_000_000u64; // 256 MB buffers vs 5 MB L2
        let (k, lc) = streaming_kernel(n);
        let s = k.summarize(&lc.params);
        let res = resolve_memory(&hw(), &k, &lc, &s.demands);
        let expected = n as f64 * 4.0;
        // Reads: compulsory footprint (padding threads add a whisker).
        assert!((res.dram_read_bytes - expected).abs() / expected < 0.02);
        assert!((res.dram_write_bytes - expected).abs() / expected < 0.02);
    }

    #[test]
    fn cache_resident_buffer_rereads_hit_in_l2() {
        // Small buffer re-read many times: DRAM reads ~= footprint, far
        // below requested bytes.
        let n = 4096u64; // 16 KB << 5 MB L2
        let k = KernelIr::builder("reread")
            .buffer("table", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(100),
                vec![Op::load("table", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let s = k.summarize(&lc.params);
        let res = resolve_memory(&hw(), &k, &lc, &s.demands);
        let footprint = n as f64 * 4.0;
        assert!((res.dram_read_bytes - footprint).abs() < 1.0);
        assert!(res.buffers[0].read_hit_rate() > 0.98);
    }

    #[test]
    fn oversized_footprint_mostly_misses() {
        let n = 32_000_000u64; // 128 MB >> L2
        let k = KernelIr::builder("bigscan")
            .buffer("big", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(4),
                vec![Op::load("big", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let s = k.summarize(&lc.params);
        let res = resolve_memory(&hw(), &k, &lc, &s.demands);
        // Requested 4x footprint; with poor capacity, DRAM reads should be
        // well above footprint (mostly missing), below requested.
        let footprint = n as f64 * 4.0;
        assert!(res.dram_read_bytes > 2.0 * footprint);
        assert!(res.dram_read_bytes < 4.0 * footprint);
    }

    #[test]
    fn random_access_amplifies_read_traffic() {
        let n = 32_000_000u64;
        let mk = |pattern| {
            let k = KernelIr::builder("pat")
                .buffer("a", 4, Extent::Param("n".into()))
                .op(Op::load("a", pattern))
                .build();
            let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
            let s = k.summarize(&lc.params);
            resolve_memory(&hw(), &k, &lc, &s.demands).dram_read_bytes
        };
        let coalesced = mk(AccessPattern::Coalesced);
        let random = mk(AccessPattern::Random);
        assert!(
            random > 3.0 * coalesced,
            "random {random} should far exceed coalesced {coalesced}"
        );
    }

    #[test]
    fn bandwidth_efficiency_reflects_pattern_mix() {
        let n = 32_000_000u64;
        let (k, lc) = streaming_kernel(n);
        let s = k.summarize(&lc.params);
        let good = resolve_memory(&hw(), &k, &lc, &s.demands).bandwidth_efficiency;

        let k2 = KernelIr::builder("bad")
            .buffer("a", 4, Extent::Param("n".into()))
            .op(Op::load("a", AccessPattern::Random))
            .build();
        let s2 = k2.summarize(&lc.params);
        let bad = resolve_memory(&hw(), &k2, &lc, &s2.demands).bandwidth_efficiency;
        assert!(good > bad);
        assert!(bad >= 0.2 && good <= 0.95);
    }

    #[test]
    fn write_back_caps_small_buffer_write_traffic() {
        let n = 4096u64;
        let k = KernelIr::builder("acc")
            .buffer("acc", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(50),
                vec![Op::store("acc", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let s = k.summarize(&lc.params);
        let res = resolve_memory(&hw(), &k, &lc, &s.demands);
        // 50 writes per element but only one write-back.
        let footprint = n as f64 * 4.0;
        assert!((res.dram_write_bytes - footprint).abs() < 1.0);
    }
}
