//! Suite-scale memoization for the profiler.
//!
//! Profiles are pure functions of (kernel IR, launch, hardware), and the
//! body-fold [`KernelIr::summarize`] is pure in (kernel IR, launch
//! parameters) alone — it never sees the hardware. A cross-hardware suite
//! therefore re-derives enormous amounts of identical work: every spec
//! re-folds the same 210-kernel corpus, and every repeated suite run
//! re-profiles launches that were profiled before.
//!
//! [`SimCaches`] collapses both:
//!
//! * [`SummaryCache`] — one [`BodySummary`] per distinct (IR, params)
//!   pair, shared by every hardware spec,
//! * [`ProfileCache`] — one [`KernelProfile`] per distinct
//!   (IR, launch, hardware, L2-ablation) tuple, shared across suite runs.
//!
//! Entries are bucketed by a structural fingerprint and verified with
//! full equality before reuse, so a fingerprint collision can never
//! surface a wrong value: cached and cold paths are bit-identical by
//! construction (the [`pce_memo::Memo`] contract). Hit/miss counters feed
//! the bench harness's cache-effectiveness report.

use std::collections::BTreeMap;
use std::sync::Arc;

use pce_memo::{Fnv, Memo};
use pce_roofline::HardwareSpec;

use crate::ir::{BodySummary, KernelIr};
use crate::launch::LaunchConfig;
use crate::profiler::KernelProfile;

pub use pce_memo::CacheCounters;

/// Byte budgets for the simulator's two memo layers. `None` leaves that
/// layer unbounded (no size accounting, no eviction) — the right choice
/// for one-shot batch runs; long-lived services should bound both.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimBudget {
    /// Capacity of the body-summary cache, in approximate bytes.
    pub summary_bytes: Option<u64>,
    /// Capacity of the profile cache, in approximate bytes.
    pub profile_bytes: Option<u64>,
}

impl SimBudget {
    /// Bound both layers to the same capacity.
    pub fn uniform(bytes: u64) -> SimBudget {
        SimBudget {
            summary_bytes: Some(bytes),
            profile_bytes: Some(bytes),
        }
    }
}

/// Approximate heap bytes of a launch-parameter map.
fn map_bytes(map: &BTreeMap<String, u64>) -> u64 {
    map.keys().map(|k| k.len() as u64 + 16).sum()
}

/// Key of one memoized body summary: the hardware-independent inputs of
/// [`KernelIr::summarize`].
#[derive(Debug, PartialEq)]
struct SummaryKey {
    ir: KernelIr,
    params: BTreeMap<String, u64>,
}

/// The shared body-summary cache (hardware-independent phase).
#[derive(Debug, Default)]
pub struct SummaryCache {
    memo: Memo<SummaryKey, BodySummary>,
}

impl SummaryCache {
    /// A cache bounded to `bytes` (`None` = unbounded), charging each
    /// entry its key's IR/params footprint plus the summary itself.
    fn with_budget(bytes: Option<u64>) -> SummaryCache {
        let cost = |k: &SummaryKey, v: &BodySummary| {
            k.ir.approx_bytes()
                + map_bytes(&k.params)
                + std::mem::size_of::<BodySummary>() as u64
                + v.demands.len() as u64 * 64
        };
        SummaryCache {
            memo: match bytes {
                Some(b) => Memo::bounded(b, cost),
                None => Memo::new(),
            },
        }
    }
    /// The folded summary of `ir` under `params`, computed at most once
    /// per distinct (IR, params) pair.
    pub fn summary(&self, ir: &KernelIr, params: &BTreeMap<String, u64>) -> Arc<BodySummary> {
        let mut h = Fnv::new();
        h.u64(ir.fingerprint());
        h.map_u64(params);
        self.memo.get_or_insert_with(
            h.finish(),
            |k| k.ir == *ir && k.params == *params,
            || SummaryKey {
                ir: ir.clone(),
                params: params.clone(),
            },
            || ir.summarize(params),
        )
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        self.memo.counters()
    }

    /// Number of distinct summaries held.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Key of one memoized profile: the full launch identity, hardware
/// included (hardware-dependent phase).
#[derive(Debug, PartialEq)]
struct ProfileKey {
    ir: KernelIr,
    launch: LaunchConfig,
    hw: HardwareSpec,
    l2_enabled: bool,
}

/// The per-(kernel, launch, hardware) profile memo.
#[derive(Debug, Default)]
pub struct ProfileCache {
    memo: Memo<ProfileKey, KernelProfile>,
}

impl ProfileCache {
    /// A cache bounded to `bytes` (`None` = unbounded), charging each
    /// entry its full launch-identity key plus the profile.
    fn with_budget(bytes: Option<u64>) -> ProfileCache {
        let cost = |k: &ProfileKey, v: &KernelProfile| {
            k.ir.approx_bytes()
                + map_bytes(&k.launch.params)
                + std::mem::size_of::<LaunchConfig>() as u64
                + std::mem::size_of::<HardwareSpec>() as u64
                + k.hw.name.len() as u64
                + std::mem::size_of::<KernelProfile>() as u64
                + v.kernel.len() as u64
                + v.hardware.len() as u64
                + v.buffers.len() as u64 * 64
        };
        ProfileCache {
            memo: match bytes {
                Some(b) => Memo::bounded(b, cost),
                None => Memo::new(),
            },
        }
    }

    /// The profile for this launch identity, computed at most once.
    pub(crate) fn profile(
        &self,
        ir: &KernelIr,
        launch: &LaunchConfig,
        hw: &HardwareSpec,
        l2_enabled: bool,
        compute: impl FnOnce() -> KernelProfile,
    ) -> Arc<KernelProfile> {
        let mut h = Fnv::new();
        h.u64(ir.fingerprint());
        h.map_u64(&launch.params);
        for d in [launch.grid, launch.block] {
            h.u64(d.x as u64);
            h.u64(d.y as u64);
            h.u64(d.z as u64);
        }
        h.u64(launch.regs_per_thread as u64);
        h.u64(launch.shared_bytes_per_block as u64);
        h.str(&hw.name);
        h.u64(l2_enabled as u64);
        self.memo.get_or_insert_with(
            h.finish(),
            |k| k.l2_enabled == l2_enabled && k.ir == *ir && k.launch == *launch && k.hw == *hw,
            || ProfileKey {
                ir: ir.clone(),
                launch: launch.clone(),
                hw: hw.clone(),
                l2_enabled,
            },
            compute,
        )
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        self.memo.counters()
    }

    /// Number of distinct profiles held.
    pub fn len(&self) -> usize {
        self.memo.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The simulator's shared cache bundle. `Clone` is shallow: clones share
/// storage, so one bundle can serve a whole suite (and successive suite
/// runs) across threads.
#[derive(Debug, Clone, Default)]
pub struct SimCaches {
    inner: Arc<SimCachesInner>,
}

#[derive(Debug, Default)]
struct SimCachesInner {
    summaries: SummaryCache,
    profiles: ProfileCache,
}

impl SimCaches {
    /// A fresh, empty, unbounded cache bundle.
    pub fn new() -> SimCaches {
        SimCaches::default()
    }

    /// A fresh bundle with each layer bounded per `budget` (`None` fields
    /// stay unbounded). Bounded and unbounded bundles produce
    /// byte-identical results — every cached function is pure, so an
    /// eviction only costs recomputation.
    pub fn with_budget(budget: SimBudget) -> SimCaches {
        SimCaches {
            inner: Arc::new(SimCachesInner {
                summaries: SummaryCache::with_budget(budget.summary_bytes),
                profiles: ProfileCache::with_budget(budget.profile_bytes),
            }),
        }
    }

    /// The shared body-summary cache.
    pub fn summaries(&self) -> &SummaryCache {
        &self.inner.summaries
    }

    /// The per-(kernel, launch, hardware) profile memo.
    pub fn profiles(&self) -> &ProfileCache {
        &self.inner.profiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, Extent, Op, Precision};

    fn saxpy() -> (KernelIr, LaunchConfig) {
        let k = KernelIr::builder("saxpy")
            .buffer("x", 4, Extent::Param("n".into()))
            .buffer("y", 4, Extent::Param("n".into()))
            .op(Op::load("x", AccessPattern::Coalesced))
            .op(Op::load("y", AccessPattern::Coalesced))
            .op(Op::fma(Precision::F32))
            .op(Op::store("y", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(1 << 20, 256)
            .unwrap()
            .with_param("n", 1 << 20);
        (k, lc)
    }

    #[test]
    fn summary_cache_returns_identical_values_and_counts_hits() {
        let caches = SimCaches::new();
        let (k, lc) = saxpy();
        let a = caches.summaries().summary(&k, &lc.params);
        let b = caches.summaries().summary(&k, &lc.params);
        assert_eq!(*a, *b);
        assert_eq!(*a, k.summarize(&lc.params));
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the entry");
        let c = caches.summaries().counters();
        assert_eq!((c.hits, c.misses), (1, 1));
        assert_eq!(caches.summaries().len(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_cache_distinguishes_params() {
        let caches = SimCaches::new();
        let (k, _) = saxpy();
        let p1 = LaunchConfig::linear(1 << 10, 256)
            .unwrap()
            .with_param("n", 1 << 10);
        let p2 = LaunchConfig::linear(1 << 12, 256)
            .unwrap()
            .with_param("n", 1 << 12);
        let a = caches.summaries().summary(&k, &p1.params);
        let b = caches.summaries().summary(&k, &p2.params);
        // saxpy's per-thread costs do not depend on n, so the values are
        // equal — but the entries must stay distinct (no false sharing).
        assert!(!Arc::ptr_eq(&a, &b), "distinct params shared one entry");
        assert_eq!(caches.summaries().len(), 2);
        assert_eq!(caches.summaries().counters().misses, 2);
    }

    #[test]
    fn shared_clones_share_storage() {
        let caches = SimCaches::new();
        let alias = caches.clone();
        let (k, lc) = saxpy();
        let _ = caches.summaries().summary(&k, &lc.params);
        assert_eq!(alias.summaries().counters().misses, 1);
        let _ = alias.summaries().summary(&k, &lc.params);
        assert_eq!(caches.summaries().counters().hits, 1);
    }

    #[test]
    fn memo_is_safe_under_concurrent_lookups() {
        let caches = SimCaches::new();
        let (k, lc) = saxpy();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let caches = caches.clone();
                let (k, lc) = (k.clone(), lc.clone());
                s.spawn(move || {
                    for _ in 0..50 {
                        let v = caches.summaries().summary(&k, &lc.params);
                        assert_eq!(*v, k.summarize(&lc.params));
                    }
                });
            }
        });
        assert_eq!(caches.summaries().len(), 1);
        let c = caches.summaries().counters();
        assert_eq!(c.total(), 400);
        assert!(c.hits >= 392, "at most one miss per racing thread: {c:?}");
    }
}
