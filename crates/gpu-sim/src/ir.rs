//! The kernel intermediate representation.
//!
//! A [`KernelIr`] describes the *per-thread* work of a GPU kernel as a tree
//! of operations: arithmetic ops tagged with precision, memory accesses
//! tagged with an access pattern and a target buffer, loop nests with
//! launch-parameter-dependent trip counts, and divergence guards. Benchmark
//! source generators lower to this IR; the simulator folds the tree into
//! per-thread cost vectors.

use pce_memo::Fnv;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Floating-point precision of an arithmetic op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Precision {
    /// 32-bit single precision.
    F32,
    /// 64-bit double precision.
    F64,
}

impl Precision {
    /// Bytes per element of this precision.
    pub fn bytes(self) -> u64 {
        match self {
            Precision::F32 => 4,
            Precision::F64 => 8,
        }
    }
}

/// Kind of integer operation (all count as one INTOP; the distinction
/// feeds the timing model's issue-rate table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntKind {
    /// Add/sub/logical — full rate.
    Simple,
    /// 32-bit multiply / multiply-add.
    Mul,
    /// Integer division / modulo — many-cycle sequence.
    Div,
}

/// Transcendental / special-function unit ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecialFn {
    /// Square root.
    Sqrt,
    /// Reciprocal.
    Rcp,
    /// exp / log family.
    ExpLog,
    /// sin / cos family.
    Trig,
}

impl SpecialFn {
    /// Equivalent FLOP count charged for one special-function evaluation,
    /// following the nvprof convention of weighting specials heavier.
    pub fn flop_weight(self) -> u64 {
        match self {
            SpecialFn::Sqrt | SpecialFn::Rcp => 4,
            SpecialFn::ExpLog => 8,
            SpecialFn::Trig => 12,
        }
    }
}

/// How consecutive threads of a warp touch memory for one access site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Thread `i` touches element `base + i`: fully coalesced.
    Coalesced,
    /// Thread `i` touches element `base + i * stride` (stride in elements).
    Strided(u32),
    /// Effectively random addresses over the buffer footprint.
    Random,
    /// All threads of a warp read the same address.
    Broadcast,
}

/// A buffer length or loop trip count, possibly launch-parameter dependent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Extent {
    /// A compile-time constant.
    Const(u64),
    /// The value of a named launch parameter.
    Param(String),
    /// A named launch parameter scaled by a constant factor
    /// (e.g. `n/256` tiles → `ParamScaled("n", 1.0/256.0)`).
    ParamScaled(String, f64),
}

impl Extent {
    /// Resolve against launch parameters. Missing parameters resolve to 1
    /// (mirroring benchmark binaries that default absent CLI args).
    pub fn resolve(&self, params: &BTreeMap<String, u64>) -> u64 {
        match self {
            Extent::Const(v) => *v,
            Extent::Param(name) => params.get(name).copied().unwrap_or(1),
            Extent::ParamScaled(name, scale) => {
                let base = params.get(name).copied().unwrap_or(1) as f64;
                (base * scale).max(1.0).round() as u64
            }
        }
    }
}

/// Direction of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Global-memory read.
    Read,
    /// Global-memory write.
    Write,
}

/// One per-thread operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// One floating-point add/mul (1 FLOP).
    Flop(Precision),
    /// One fused multiply-add (2 FLOPs, 1 instruction).
    Fma(Precision),
    /// One special-function evaluation (weighted FLOPs).
    Special(Precision, SpecialFn),
    /// One integer op.
    Int(IntKind),
    /// A global-memory access to `buffer` with `pattern`.
    Mem {
        /// Declared buffer name this access targets.
        buffer: String,
        /// Read or write.
        dir: Dir,
        /// Warp-level address pattern.
        pattern: AccessPattern,
    },
    /// A shared-memory access (never reaches DRAM; costs latency only).
    Shared(Dir),
    /// `__syncthreads()` — block barrier (timing only).
    Sync,
    /// A loop running `trip` times per thread over `body`.
    Loop {
        /// Per-thread trip count.
        trip: Extent,
        /// Loop body.
        body: Vec<Op>,
    },
    /// A divergent region executed by `fraction` of threads (0..=1).
    Guard {
        /// Fraction of threads that take the branch.
        fraction: f64,
        /// Guarded body.
        body: Vec<Op>,
    },
}

impl Op {
    /// Shorthand: coalesced/strided/random load of `buffer`.
    pub fn load(buffer: &str, pattern: AccessPattern) -> Op {
        Op::Mem {
            buffer: buffer.to_string(),
            dir: Dir::Read,
            pattern,
        }
    }

    /// Shorthand: store to `buffer`.
    pub fn store(buffer: &str, pattern: AccessPattern) -> Op {
        Op::Mem {
            buffer: buffer.to_string(),
            dir: Dir::Write,
            pattern,
        }
    }

    /// Shorthand: one FLOP.
    pub fn flop(p: Precision) -> Op {
        Op::Flop(p)
    }

    /// Shorthand: one FMA.
    pub fn fma(p: Precision) -> Op {
        Op::Fma(p)
    }

    /// Shorthand: one integer op.
    pub fn int(k: IntKind) -> Op {
        Op::Int(k)
    }

    /// Shorthand: a counted loop.
    pub fn loop_n(trip: Extent, body: Vec<Op>) -> Op {
        Op::Loop { trip, body }
    }

    /// Approximate heap footprint of this op, nested bodies included —
    /// a cost input for bounded caches, not an exact measure.
    pub fn approx_bytes(&self) -> u64 {
        let own = std::mem::size_of::<Op>() as u64;
        match self {
            Op::Mem { buffer, .. } => own + buffer.len() as u64,
            Op::Loop { body, .. } | Op::Guard { body, .. } => {
                own + body.iter().map(Op::approx_bytes).sum::<u64>()
            }
            _ => own,
        }
    }
}

/// A declared global buffer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BufferDecl {
    /// Buffer name referenced by `Op::Mem`.
    pub name: String,
    /// Element size in bytes.
    pub elem_bytes: u64,
    /// Number of elements (resolved at launch).
    pub len: Extent,
}

/// A complete kernel: buffers plus the per-thread op tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelIr {
    /// Kernel (function) name, as it would appear in an object dump.
    pub name: String,
    /// Declared global buffers.
    pub buffers: Vec<BufferDecl>,
    /// Per-thread body.
    pub body: Vec<Op>,
    /// Fraction of launched threads that do any work at all (bounds-check
    /// guard at kernel entry, e.g. `if (i < n)`).
    pub active_fraction: f64,
}

/// Accumulated per-thread costs after folding the op tree.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ThreadCosts {
    /// Single-precision FLOPs per thread.
    pub flops_sp: f64,
    /// Double-precision FLOPs per thread.
    pub flops_dp: f64,
    /// Integer ops per thread.
    pub intops: f64,
    /// Issued FP32-pipe instructions (for timing).
    pub inst_fp32: f64,
    /// Issued FP64-pipe instructions (for timing).
    pub inst_fp64: f64,
    /// Issued INT-pipe instructions weighted by issue cost (for timing).
    pub inst_int: f64,
    /// Issued special-function instructions (for timing).
    pub inst_sfu: f64,
    /// Shared-memory accesses per thread (for timing).
    pub shared_accesses: f64,
    /// Block barriers encountered per thread (for timing).
    pub syncs: f64,
    /// Divergence penalty estimate: extra issue fraction from guards.
    pub divergence: f64,
}

/// Per-(buffer, direction, pattern) memory demand per thread.
#[derive(Debug, Clone, PartialEq)]
pub struct MemDemand {
    /// Buffer name.
    pub buffer: String,
    /// Direction.
    pub dir: Dir,
    /// Pattern at the access site.
    pub pattern: AccessPattern,
    /// Accesses per launched thread (fractional under guards).
    pub accesses_per_thread: f64,
}

/// The folded, launch-resolved summary of a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub struct BodySummary {
    /// Arithmetic/issue costs per thread.
    pub costs: ThreadCosts,
    /// Memory demands, one entry per distinct access site.
    pub demands: Vec<MemDemand>,
}

impl KernelIr {
    /// Start building a kernel.
    pub fn builder(name: &str) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            buffers: Vec::new(),
            body: Vec::new(),
            active_fraction: 1.0,
        }
    }

    /// Look up a buffer declaration.
    pub fn buffer(&self, name: &str) -> Option<&BufferDecl> {
        self.buffers.iter().find(|b| b.name == name)
    }

    /// Approximate heap footprint in bytes (name, buffer table, op tree) —
    /// the cost input bounded caches charge per cached IR.
    pub fn approx_bytes(&self) -> u64 {
        std::mem::size_of::<KernelIr>() as u64
            + self.name.len() as u64
            + self
                .buffers
                .iter()
                .map(|b| std::mem::size_of::<BufferDecl>() as u64 + b.name.len() as u64)
                .sum::<u64>()
            + self.body.iter().map(Op::approx_bytes).sum::<u64>()
    }

    /// Validate internal consistency (all `Mem` ops reference declared
    /// buffers, fractions in range). Returns problems; empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if !(0.0..=1.0).contains(&self.active_fraction) {
            problems.push(format!(
                "active_fraction {} outside [0,1]",
                self.active_fraction
            ));
        }
        let mut names: Vec<&str> = self.buffers.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        if names.len() != before {
            problems.push("duplicate buffer declarations".to_string());
        }
        fn walk(ops: &[Op], kernel: &KernelIr, problems: &mut Vec<String>) {
            for op in ops {
                match op {
                    Op::Mem { buffer, .. } if kernel.buffer(buffer).is_none() => {
                        problems.push(format!("access to undeclared buffer '{buffer}'"));
                    }
                    Op::Loop { body, .. } => walk(body, kernel, problems),
                    Op::Guard { fraction, body } => {
                        if !(0.0..=1.0).contains(fraction) {
                            problems.push(format!("guard fraction {fraction} outside [0,1]"));
                        }
                        walk(body, kernel, problems);
                    }
                    _ => {}
                }
            }
        }
        walk(&self.body, self, &mut problems);
        problems
    }

    /// Fold the op tree into per-thread costs and memory demands, resolving
    /// loop trip counts against `params`.
    pub fn summarize(&self, params: &BTreeMap<String, u64>) -> BodySummary {
        let mut costs = ThreadCosts::default();
        let mut demands: Vec<MemDemand> = Vec::new();
        fold(&self.body, 1.0, params, &mut costs, &mut demands);
        // The entry guard scales everything uniformly.
        scale_costs(&mut costs, self.active_fraction);
        for d in &mut demands {
            d.accesses_per_thread *= self.active_fraction;
        }
        BodySummary { costs, demands }
    }

    /// A structural fingerprint of the kernel (FNV-1a over the op tree,
    /// buffer declarations, and entry guard).
    ///
    /// The profiler's memoization layer buckets cache entries by this
    /// value; collisions are tolerated because caches verify candidate
    /// entries with full structural equality before reusing them.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.str(&self.name);
        h.u64(self.buffers.len() as u64);
        for b in &self.buffers {
            h.str(&b.name);
            h.u64(b.elem_bytes);
            hash_extent(&b.len, &mut h);
        }
        hash_ops(&self.body, &mut h);
        h.f64(self.active_fraction);
        h.finish()
    }

    /// Static (source-apparent) op totals for a launch: what a perfect
    /// reader of the code would count, before any cache effects.
    pub fn static_op_estimate(
        &self,
        params: &BTreeMap<String, u64>,
        total_threads: u64,
    ) -> (f64, f64, f64) {
        let s = self.summarize(params);
        let t = total_threads as f64;
        (
            s.costs.flops_sp * t,
            s.costs.flops_dp * t,
            s.costs.intops * t,
        )
    }
}

fn hash_extent(e: &Extent, h: &mut Fnv) {
    match e {
        Extent::Const(v) => {
            h.u64(0);
            h.u64(*v);
        }
        Extent::Param(name) => {
            h.u64(1);
            h.str(name);
        }
        Extent::ParamScaled(name, scale) => {
            h.u64(2);
            h.str(name);
            h.f64(*scale);
        }
    }
}

fn hash_ops(ops: &[Op], h: &mut Fnv) {
    h.u64(ops.len() as u64);
    for op in ops {
        match op {
            Op::Flop(p) => {
                h.u64(10);
                h.u64(p.bytes());
            }
            Op::Fma(p) => {
                h.u64(11);
                h.u64(p.bytes());
            }
            Op::Special(p, f) => {
                h.u64(12);
                h.u64(p.bytes());
                h.u64(f.flop_weight());
            }
            Op::Int(kind) => {
                h.u64(13);
                h.u64(match kind {
                    IntKind::Simple => 0,
                    IntKind::Mul => 1,
                    IntKind::Div => 2,
                });
            }
            Op::Mem {
                buffer,
                dir,
                pattern,
            } => {
                h.u64(14);
                h.str(buffer);
                h.u64(matches!(dir, Dir::Write) as u64);
                match pattern {
                    AccessPattern::Coalesced => h.u64(0),
                    AccessPattern::Strided(s) => {
                        h.u64(1);
                        h.u64(*s as u64);
                    }
                    AccessPattern::Random => h.u64(2),
                    AccessPattern::Broadcast => h.u64(3),
                }
            }
            Op::Shared(dir) => {
                h.u64(15);
                h.u64(matches!(dir, Dir::Write) as u64);
            }
            Op::Sync => h.u64(16),
            Op::Loop { trip, body } => {
                h.u64(17);
                hash_extent(trip, h);
                hash_ops(body, h);
            }
            Op::Guard { fraction, body } => {
                h.u64(18);
                h.f64(*fraction);
                hash_ops(body, h);
            }
        }
    }
}

fn scale_costs(c: &mut ThreadCosts, f: f64) {
    c.flops_sp *= f;
    c.flops_dp *= f;
    c.intops *= f;
    c.inst_fp32 *= f;
    c.inst_fp64 *= f;
    c.inst_int *= f;
    c.inst_sfu *= f;
    c.shared_accesses *= f;
    // syncs are *not* scaled: barriers execute regardless of divergence.
    c.divergence *= f;
}

fn fold(
    ops: &[Op],
    weight: f64,
    params: &BTreeMap<String, u64>,
    costs: &mut ThreadCosts,
    demands: &mut Vec<MemDemand>,
) {
    for op in ops {
        match op {
            Op::Flop(p) => match p {
                Precision::F32 => {
                    costs.flops_sp += weight;
                    costs.inst_fp32 += weight;
                }
                Precision::F64 => {
                    costs.flops_dp += weight;
                    costs.inst_fp64 += weight;
                }
            },
            Op::Fma(p) => match p {
                Precision::F32 => {
                    costs.flops_sp += 2.0 * weight;
                    costs.inst_fp32 += weight;
                }
                Precision::F64 => {
                    costs.flops_dp += 2.0 * weight;
                    costs.inst_fp64 += weight;
                }
            },
            Op::Special(p, f) => {
                let flops = f.flop_weight() as f64 * weight;
                match p {
                    Precision::F32 => costs.flops_sp += flops,
                    Precision::F64 => costs.flops_dp += flops,
                }
                costs.inst_sfu += weight;
            }
            Op::Int(kind) => {
                costs.intops += weight;
                costs.inst_int += weight
                    * match kind {
                        IntKind::Simple => 1.0,
                        IntKind::Mul => 1.0,
                        IntKind::Div => 8.0,
                    };
            }
            Op::Mem {
                buffer,
                dir,
                pattern,
            } => {
                // Address arithmetic implied by the access: one int op.
                costs.intops += weight;
                costs.inst_int += weight;
                if let Some(existing) = demands
                    .iter_mut()
                    .find(|d| d.buffer == *buffer && d.dir == *dir && d.pattern == *pattern)
                {
                    existing.accesses_per_thread += weight;
                } else {
                    demands.push(MemDemand {
                        buffer: buffer.clone(),
                        dir: *dir,
                        pattern: *pattern,
                        accesses_per_thread: weight,
                    });
                }
            }
            Op::Shared(_) => costs.shared_accesses += weight,
            Op::Sync => costs.syncs += 1.0,
            Op::Loop { trip, body } => {
                let n = trip.resolve(params) as f64;
                fold(body, weight * n, params, costs, demands);
            }
            Op::Guard { fraction, body } => {
                // A divergent warp issues both paths; charge the extra
                // issue bandwidth as a divergence penalty.
                costs.divergence += weight * (1.0 - fraction).min(*fraction) * 2.0;
                fold(body, weight * fraction, params, costs, demands);
            }
        }
    }
}

/// Fluent builder for [`KernelIr`].
#[derive(Debug, Clone)]
pub struct KernelBuilder {
    name: String,
    buffers: Vec<BufferDecl>,
    body: Vec<Op>,
    active_fraction: f64,
}

impl KernelBuilder {
    /// Declare a buffer of `elem_bytes`-sized elements with length `len`.
    pub fn buffer(mut self, name: &str, elem_bytes: u64, len: Extent) -> Self {
        self.buffers.push(BufferDecl {
            name: name.to_string(),
            elem_bytes,
            len,
        });
        self
    }

    /// Append an op to the kernel body.
    pub fn op(mut self, op: Op) -> Self {
        self.body.push(op);
        self
    }

    /// Append several ops.
    pub fn ops(mut self, ops: impl IntoIterator<Item = Op>) -> Self {
        self.body.extend(ops);
        self
    }

    /// Set the entry-guard active fraction (`if (i < n)`).
    pub fn guard_fraction(mut self, fraction: f64) -> Self {
        self.active_fraction = fraction;
        self
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if the kernel fails validation — builders are only used from
    /// generator code, so an invalid kernel is a programming error.
    pub fn build(self) -> KernelIr {
        let kernel = KernelIr {
            name: self.name,
            buffers: self.buffers,
            body: self.body,
            active_fraction: self.active_fraction,
        };
        let problems = kernel.validate();
        assert!(problems.is_empty(), "invalid kernel IR: {problems:?}");
        kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64) -> BTreeMap<String, u64> {
        let mut m = BTreeMap::new();
        m.insert("n".to_string(), n);
        m
    }

    fn saxpy() -> KernelIr {
        KernelIr::builder("saxpy")
            .buffer("x", 4, Extent::Param("n".into()))
            .buffer("y", 4, Extent::Param("n".into()))
            .op(Op::load("x", AccessPattern::Coalesced))
            .op(Op::load("y", AccessPattern::Coalesced))
            .op(Op::fma(Precision::F32))
            .op(Op::store("y", AccessPattern::Coalesced))
            .build()
    }

    #[test]
    fn saxpy_per_thread_costs() {
        let s = saxpy().summarize(&params(1024));
        // One FMA = 2 SP flops.
        assert_eq!(s.costs.flops_sp, 2.0);
        assert_eq!(s.costs.flops_dp, 0.0);
        // 3 memory ops charge 3 implied int address ops.
        assert_eq!(s.costs.intops, 3.0);
        assert_eq!(s.demands.len(), 3);
    }

    #[test]
    fn loops_multiply_costs() {
        let k = KernelIr::builder("loop")
            .buffer("a", 8, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(10),
                vec![
                    Op::fma(Precision::F64),
                    Op::load("a", AccessPattern::Coalesced),
                ],
            ))
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_dp, 20.0);
        assert_eq!(s.demands[0].accesses_per_thread, 10.0);
    }

    #[test]
    fn nested_loops_compose_multiplicatively() {
        let k = KernelIr::builder("nest")
            .op(Op::loop_n(
                Extent::Const(4),
                vec![Op::loop_n(Extent::Const(5), vec![Op::flop(Precision::F32)])],
            ))
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_sp, 20.0);
    }

    #[test]
    fn param_trip_counts_resolve_from_launch() {
        let k = KernelIr::builder("param")
            .op(Op::loop_n(
                Extent::Param("iters".into()),
                vec![Op::int(IntKind::Simple)],
            ))
            .build();
        let mut p = BTreeMap::new();
        p.insert("iters".to_string(), 7);
        assert_eq!(k.summarize(&p).costs.intops, 7.0);
        // Missing param defaults to 1.
        assert_eq!(k.summarize(&BTreeMap::new()).costs.intops, 1.0);
    }

    #[test]
    fn param_scaled_extent_rounds_and_clamps() {
        let e = Extent::ParamScaled("n".into(), 1.0 / 256.0);
        assert_eq!(e.resolve(&params(1024)), 4);
        assert_eq!(e.resolve(&params(1)), 1); // clamps to >= 1
    }

    #[test]
    fn guards_scale_costs_and_record_divergence() {
        let k = KernelIr::builder("guarded")
            .op(Op::Guard {
                fraction: 0.25,
                body: vec![Op::flop(Precision::F32); 4],
            })
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_sp, 1.0); // 4 flops * 0.25
        assert!(s.costs.divergence > 0.0);
    }

    #[test]
    fn entry_guard_scales_everything_but_syncs() {
        let k = KernelIr::builder("entry")
            .buffer("a", 4, Extent::Const(100))
            .op(Op::flop(Precision::F32))
            .op(Op::Sync)
            .op(Op::load("a", AccessPattern::Coalesced))
            .guard_fraction(0.5)
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_sp, 0.5);
        assert_eq!(s.costs.syncs, 1.0);
        assert_eq!(s.demands[0].accesses_per_thread, 0.5);
    }

    #[test]
    fn fma_counts_two_flops_one_instruction() {
        let k = KernelIr::builder("fma").op(Op::fma(Precision::F32)).build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_sp, 2.0);
        assert_eq!(s.costs.inst_fp32, 1.0);
    }

    #[test]
    fn special_functions_weight_flops() {
        let k = KernelIr::builder("sfu")
            .op(Op::Special(Precision::F32, SpecialFn::Trig))
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.flops_sp, 12.0);
        assert_eq!(s.costs.inst_sfu, 1.0);
    }

    #[test]
    fn int_div_is_issue_expensive() {
        let k = KernelIr::builder("div").op(Op::int(IntKind::Div)).build();
        let s = k.summarize(&params(1));
        assert_eq!(s.costs.intops, 1.0);
        assert!(s.costs.inst_int > 1.0);
    }

    #[test]
    fn repeated_access_sites_merge() {
        let k = KernelIr::builder("merge")
            .buffer("a", 4, Extent::Const(10))
            .op(Op::load("a", AccessPattern::Coalesced))
            .op(Op::load("a", AccessPattern::Coalesced))
            .build();
        let s = k.summarize(&params(1));
        assert_eq!(s.demands.len(), 1);
        assert_eq!(s.demands[0].accesses_per_thread, 2.0);
    }

    #[test]
    fn validation_catches_undeclared_buffer_and_bad_fractions() {
        let k = KernelIr {
            name: "bad".into(),
            buffers: vec![],
            body: vec![
                Op::load("ghost", AccessPattern::Coalesced),
                Op::Guard {
                    fraction: 2.0,
                    body: vec![],
                },
            ],
            active_fraction: -0.5,
        };
        let problems = k.validate();
        assert_eq!(problems.len(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid kernel IR")]
    fn builder_panics_on_invalid() {
        KernelIr::builder("bad")
            .op(Op::load("nope", AccessPattern::Coalesced))
            .build();
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        assert_eq!(saxpy().fingerprint(), saxpy().fingerprint());
        // Any structural edit moves the fingerprint.
        let mut renamed = saxpy();
        renamed.name = "saxpy2".into();
        assert_ne!(renamed.fingerprint(), saxpy().fingerprint());
        let mut guarded = saxpy();
        guarded.active_fraction = 0.5;
        assert_ne!(guarded.fingerprint(), saxpy().fingerprint());
        let extra_op = KernelIr::builder("saxpy")
            .buffer("x", 4, Extent::Param("n".into()))
            .buffer("y", 4, Extent::Param("n".into()))
            .op(Op::load("x", AccessPattern::Coalesced))
            .op(Op::load("y", AccessPattern::Coalesced))
            .op(Op::fma(Precision::F32))
            .op(Op::fma(Precision::F32))
            .op(Op::store("y", AccessPattern::Coalesced))
            .build();
        assert_ne!(extra_op.fingerprint(), saxpy().fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_field_boundaries() {
        // "ab"+"c" vs "a"+"bc" across adjacent string fields must differ
        // (lengths are folded in).
        let a = KernelIr::builder("ab")
            .buffer("c", 4, Extent::Const(1))
            .build();
        let b = KernelIr::builder("a")
            .buffer("bc", 4, Extent::Const(1))
            .build();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn static_op_estimate_scales_by_threads() {
        let k = saxpy();
        let (sp, dp, int) = k.static_op_estimate(&params(1024), 1000);
        assert_eq!(sp, 2000.0);
        assert_eq!(dp, 0.0);
        assert_eq!(int, 3000.0);
    }
}
