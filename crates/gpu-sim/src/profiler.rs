//! The nvprof-like profiler front end.
//!
//! [`Profiler::profile`] runs the whole pipeline for one launch in two
//! phases — a hardware-*independent* summary phase ([`Profiler::summary`]:
//! fold the IR against the launch parameters) and a hardware-*dependent*
//! resolve phase ([`Profiler::resolve`]: memory system + timing) — and
//! packages the result as a [`KernelProfile`] exposing exactly the
//! counters the paper's ground-truth labeling consumes, plus a
//! human-readable report.
//!
//! Attach a [`SimCaches`] bundle with [`Profiler::with_caches`] to memoize
//! both phases: summaries are shared across every hardware spec that folds
//! the same (IR, params) pair, and whole profiles are shared across
//! repeated suite runs. Cached and uncached profiling are bit-identical —
//! both phases are pure functions of their inputs.

use std::sync::Arc;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_roofline::{HardwareSpec, KernelObservation, OpCounts};

use crate::cache::SimCaches;
use crate::ir::{BodySummary, KernelIr};
use crate::launch::LaunchConfig;
use crate::memory::{resolve_memory, BufferTraffic, MemoryResolution};
use crate::timing::{estimate_runtime, TimingBreakdown};

/// A complete profiled kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub kernel: String,
    /// Hardware the profile was taken on.
    pub hardware: String,
    /// The five paper counters (ops + DRAM bytes).
    pub counts: OpCounts,
    /// Estimated runtime in seconds.
    pub runtime_s: f64,
    /// Timing breakdown (bottleneck analysis).
    pub timing: TimingBreakdown,
    /// Per-buffer traffic breakdown.
    pub buffers: Vec<BufferTraffic>,
    /// Launch geometry, echoed for reports.
    pub grid: (u32, u32, u32),
    /// Block geometry.
    pub block: (u32, u32, u32),
}

impl KernelProfile {
    /// Convert to the roofline crate's observation type.
    pub fn observation(&self) -> KernelObservation {
        KernelObservation::new(self.counts, self.runtime_s)
    }

    /// Render an `nvprof`-style text report.
    pub fn report(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "==PROF== Kernel: {}  on {}\n",
            self.kernel, self.hardware
        ));
        out.push_str(&format!(
            "  grid {:?}  block {:?}  runtime {:.3} us  bottleneck {}\n",
            self.grid,
            self.block,
            self.runtime_s * 1e6,
            self.timing.bottleneck()
        ));
        out.push_str(&format!(
            "  flop_count_sp {:>16}\n  flop_count_dp {:>16}\n  int_count     {:>16}\n",
            self.counts.flops_sp, self.counts.flops_dp, self.counts.intops
        ));
        out.push_str(&format!(
            "  dram_read     {:>16} B\n  dram_write    {:>16} B\n",
            self.counts.dram_read_bytes, self.counts.dram_write_bytes
        ));
        out.push_str(&format!(
            "  occupancy {:.2}  wave_eff {:.2}\n",
            self.timing.occupancy, self.timing.wave_efficiency
        ));
        for b in &self.buffers {
            out.push_str(&format!(
                "  buffer {:<12} footprint {:>12.0} B  dram_rd {:>14.0} B  dram_wr {:>14.0} B  hit {:.2}\n",
                b.buffer,
                b.footprint_bytes,
                b.dram_read_bytes,
                b.dram_write_bytes,
                b.read_hit_rate()
            ));
        }
        out
    }
}

/// The profiler: owns the hardware model and, optionally, a shared cache
/// bundle.
#[derive(Debug, Clone)]
pub struct Profiler {
    hw: HardwareSpec,
    /// When false, the L2 model is bypassed and requested bytes hit DRAM
    /// directly — the "no cache" ablation from DESIGN.md.
    cache_enabled: bool,
    /// Memoization layer; `None` profiles from scratch on every call.
    caches: Option<SimCaches>,
}

impl Profiler {
    /// Create a profiler for the given hardware.
    pub fn new(hw: HardwareSpec) -> Self {
        Profiler {
            hw,
            cache_enabled: true,
            caches: None,
        }
    }

    /// Disable the L2 model (ablation).
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// Attach a shared memoization bundle (builder style). Clones of one
    /// [`SimCaches`] share storage, so profilers for different hardware
    /// specs reuse each other's body summaries.
    pub fn with_caches(mut self, caches: SimCaches) -> Self {
        self.caches = Some(caches);
        self
    }

    /// The hardware model in use.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hw
    }

    /// Phase 1 (hardware-independent): fold the kernel body against the
    /// launch parameters. Served from the shared summary cache when one is
    /// attached.
    pub fn summary(&self, kernel: &KernelIr, launch: &LaunchConfig) -> Arc<BodySummary> {
        match &self.caches {
            Some(c) => c.summaries().summary(kernel, &launch.params),
            None => Arc::new(kernel.summarize(&launch.params)),
        }
    }

    /// Phase 2 (hardware-dependent): resolve the memory system and timing
    /// model for a pre-folded summary and package the profile.
    pub fn resolve(
        &self,
        kernel: &KernelIr,
        launch: &LaunchConfig,
        summary: &BodySummary,
    ) -> KernelProfile {
        let mem = if self.cache_enabled {
            resolve_memory(&self.hw, kernel, launch, &summary.demands)
        } else {
            uncached_memory(&self.hw, kernel, launch, &summary.demands)
        };
        let timing = estimate_runtime(&self.hw, launch, &summary.costs, &mem);

        let threads = launch.total_threads() as f64;
        let counts = OpCounts {
            flops_sp: (summary.costs.flops_sp * threads).round() as u64,
            flops_dp: (summary.costs.flops_dp * threads).round() as u64,
            intops: (summary.costs.intops * threads).round() as u64,
            dram_read_bytes: mem.dram_read_bytes.round() as u64,
            dram_write_bytes: mem.dram_write_bytes.round() as u64,
        };

        KernelProfile {
            kernel: kernel.name.clone(),
            hardware: self.hw.name.clone(),
            counts,
            runtime_s: timing.runtime_s,
            timing,
            buffers: mem.buffers,
            grid: (launch.grid.x, launch.grid.y, launch.grid.z),
            block: (launch.block.x, launch.block.y, launch.block.z),
        }
    }

    /// Profile one kernel launch (summary phase, then resolve phase).
    pub fn profile(&self, kernel: &KernelIr, launch: &LaunchConfig) -> KernelProfile {
        match &self.caches {
            None => {
                let summary = kernel.summarize(&launch.params);
                self.resolve(kernel, launch, &summary)
            }
            Some(_) => (*self.profile_shared(kernel, launch)).clone(),
        }
    }

    /// Profile one kernel launch, sharing the result allocation through
    /// the attached profile memo (or a fresh `Arc` when uncached). The
    /// preferred entry point for bulk pipelines that only read the profile.
    pub fn profile_shared(&self, kernel: &KernelIr, launch: &LaunchConfig) -> Arc<KernelProfile> {
        match &self.caches {
            None => {
                let summary = kernel.summarize(&launch.params);
                Arc::new(self.resolve(kernel, launch, &summary))
            }
            Some(c) => c
                .profiles()
                .profile(kernel, launch, &self.hw, self.cache_enabled, || {
                    let summary = self.summary(kernel, launch);
                    self.resolve(kernel, launch, &summary)
                }),
        }
    }

    /// Profile a batch of launches in parallel (rayon).
    ///
    /// Takes the jobs by reference so call sites iterate owned or borrowed
    /// storage without cloning kernel IR: pass
    /// `jobs.iter().map(|(k, lc)| (k, lc))` for a `Vec<(KernelIr,
    /// LaunchConfig)>`, or zip two slices.
    pub fn profile_batch<'a>(
        &self,
        jobs: impl IntoIterator<Item = (&'a KernelIr, &'a LaunchConfig)>,
    ) -> Vec<KernelProfile> {
        let jobs: Vec<(&KernelIr, &LaunchConfig)> = jobs.into_iter().collect();
        jobs.par_iter()
            .map(|&(k, lc)| self.profile(k, lc))
            .collect()
    }
}

/// The no-cache ablation: requested bytes (after coalescing) go straight
/// to DRAM.
fn uncached_memory(
    hw: &HardwareSpec,
    kernel: &KernelIr,
    launch: &LaunchConfig,
    demands: &[crate::ir::MemDemand],
) -> MemoryResolution {
    // Reuse the full model but with an L2 of one byte: every capacity term
    // collapses to a miss.
    let mut tiny = hw.clone();
    tiny.l2_bytes = 1;
    resolve_memory(&tiny, kernel, launch, demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, Extent, Op, Precision};

    fn saxpy(n: u64) -> (KernelIr, LaunchConfig) {
        let k = KernelIr::builder("saxpy")
            .buffer("x", 4, Extent::Param("n".into()))
            .buffer("y", 4, Extent::Param("n".into()))
            .op(Op::load("x", AccessPattern::Coalesced))
            .op(Op::load("y", AccessPattern::Coalesced))
            .op(Op::fma(Precision::F32))
            .op(Op::store("y", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        (k, lc)
    }

    #[test]
    fn profile_counts_match_analytic_expectation() {
        let n = 1 << 22;
        let (k, lc) = saxpy(n);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        assert_eq!(p.counts.flops_sp, 2 * lc.total_threads());
        assert_eq!(p.counts.flops_dp, 0);
        // 3 implied address int ops per thread.
        assert_eq!(p.counts.intops, 3 * lc.total_threads());
        assert!(p.runtime_s > 0.0);
    }

    #[test]
    fn saxpy_is_bandwidth_bound_on_3080() {
        let n = 16_000_000;
        let (k, lc) = saxpy(n);
        let hw = HardwareSpec::rtx_3080();
        let p = Profiler::new(hw.clone()).profile(&k, &lc);
        let joint = pce_roofline::classify_joint(&hw, &p.counts);
        assert_eq!(joint.label, pce_roofline::Boundedness::Bandwidth);
    }

    #[test]
    fn profiling_is_deterministic() {
        let (k, lc) = saxpy(1 << 20);
        let prof = Profiler::new(HardwareSpec::rtx_3080());
        let a = prof.profile(&k, &lc);
        let b = prof.profile(&k, &lc);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_matches_sequential() {
        let jobs: Vec<_> = (18..24).map(|s| saxpy(1 << s)).collect();
        let prof = Profiler::new(HardwareSpec::rtx_3080());
        // The batch API borrows: no IR clone at the call site.
        let batch = prof.profile_batch(jobs.iter().map(|(k, lc)| (k, lc)));
        for (job, p) in jobs.iter().zip(&batch) {
            assert_eq!(*p, prof.profile(&job.0, &job.1));
        }
    }

    #[test]
    fn phase_split_matches_fused_profile() {
        let (k, lc) = saxpy(1 << 20);
        let prof = Profiler::new(HardwareSpec::rtx_3080());
        let summary = prof.summary(&k, &lc);
        assert_eq!(*summary, k.summarize(&lc.params));
        assert_eq!(prof.resolve(&k, &lc, &summary), prof.profile(&k, &lc));
    }

    #[test]
    fn cached_profiling_is_bit_identical_and_shares_summaries() {
        let caches = SimCaches::new();
        let jobs: Vec<_> = (18..22).map(|s| saxpy(1 << s)).collect();
        // Two "specs" fold the same IR: the second must hit the summary
        // cache for every job.
        let specs = [HardwareSpec::rtx_3080(), HardwareSpec::a100()];
        for hw in &specs {
            let cold = Profiler::new(hw.clone());
            let warm = Profiler::new(hw.clone()).with_caches(caches.clone());
            for (k, lc) in &jobs {
                assert_eq!(warm.profile(k, lc), cold.profile(k, lc), "{}", hw.name);
            }
        }
        let sc = caches.summaries().counters();
        assert_eq!(sc.misses, jobs.len() as u64);
        assert_eq!(sc.hits, jobs.len() as u64, "second spec re-folded IR");
        // Re-running an identical launch hits the profile memo.
        let warm = Profiler::new(HardwareSpec::rtx_3080()).with_caches(caches.clone());
        let a = warm.profile_shared(&jobs[0].0, &jobs[0].1);
        let b = warm.profile_shared(&jobs[0].0, &jobs[0].1);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(caches.profiles().counters().hits >= 1);
    }

    #[test]
    fn l2_ablation_entries_do_not_collide_in_the_profile_memo() {
        let caches = SimCaches::new();
        let n = 4096u64;
        let k = KernelIr::builder("reuse")
            .buffer("t", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(64),
                vec![Op::load("t", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let hw = HardwareSpec::rtx_3080();
        let cached = Profiler::new(hw.clone()).with_caches(caches.clone());
        let ablated = Profiler::new(hw).without_cache().with_caches(caches);
        assert!(
            ablated.profile(&k, &lc).counts.dram_read_bytes
                > cached.profile(&k, &lc).counts.dram_read_bytes
        );
    }

    #[test]
    fn cache_ablation_increases_traffic_for_reuse_kernels() {
        let n = 4096u64;
        let k = KernelIr::builder("reuse")
            .buffer("t", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(64),
                vec![Op::load("t", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).unwrap().with_param("n", n);
        let hw = HardwareSpec::rtx_3080();
        let cached = Profiler::new(hw.clone()).profile(&k, &lc);
        let uncached = Profiler::new(hw).without_cache().profile(&k, &lc);
        assert!(
            uncached.counts.dram_read_bytes > 10 * cached.counts.dram_read_bytes,
            "uncached {} vs cached {}",
            uncached.counts.dram_read_bytes,
            cached.counts.dram_read_bytes
        );
    }

    #[test]
    fn report_contains_all_counters() {
        let (k, lc) = saxpy(1 << 18);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        let report = p.report();
        for needle in ["flop_count_sp", "dram_read", "occupancy", "buffer"] {
            assert!(report.contains(needle), "missing {needle} in report");
        }
    }

    #[test]
    fn observation_conversion_preserves_counts() {
        let (k, lc) = saxpy(1 << 18);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        let obs = p.observation();
        assert_eq!(obs.counts, p.counts);
        assert_eq!(obs.runtime_s, p.runtime_s);
    }
}
