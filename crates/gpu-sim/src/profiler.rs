//! The nvprof-like profiler front end.
//!
//! [`Profiler::profile`] runs the whole pipeline for one launch — fold the
//! IR, resolve the memory system, estimate timing — and packages the result
//! as a [`KernelProfile`] exposing exactly the counters the paper's
//! ground-truth labeling consumes, plus a human-readable report.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_roofline::{HardwareSpec, KernelObservation, OpCounts};

use crate::ir::KernelIr;
use crate::launch::LaunchConfig;
use crate::memory::{resolve_memory, BufferTraffic, MemoryResolution};
use crate::timing::{estimate_runtime, TimingBreakdown};

/// A complete profiled kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name.
    pub kernel: String,
    /// Hardware the profile was taken on.
    pub hardware: String,
    /// The five paper counters (ops + DRAM bytes).
    pub counts: OpCounts,
    /// Estimated runtime in seconds.
    pub runtime_s: f64,
    /// Timing breakdown (bottleneck analysis).
    pub timing: TimingBreakdown,
    /// Per-buffer traffic breakdown.
    pub buffers: Vec<BufferTraffic>,
    /// Launch geometry, echoed for reports.
    pub grid: (u32, u32, u32),
    /// Block geometry.
    pub block: (u32, u32, u32),
}

impl KernelProfile {
    /// Convert to the roofline crate's observation type.
    pub fn observation(&self) -> KernelObservation {
        KernelObservation::new(self.counts, self.runtime_s)
    }

    /// Render an `nvprof`-style text report.
    pub fn report(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "==PROF== Kernel: {}  on {}\n",
            self.kernel, self.hardware
        ));
        out.push_str(&format!(
            "  grid {:?}  block {:?}  runtime {:.3} us  bottleneck {}\n",
            self.grid,
            self.block,
            self.runtime_s * 1e6,
            self.timing.bottleneck()
        ));
        out.push_str(&format!(
            "  flop_count_sp {:>16}\n  flop_count_dp {:>16}\n  int_count     {:>16}\n",
            self.counts.flops_sp, self.counts.flops_dp, self.counts.intops
        ));
        out.push_str(&format!(
            "  dram_read     {:>16} B\n  dram_write    {:>16} B\n",
            self.counts.dram_read_bytes, self.counts.dram_write_bytes
        ));
        out.push_str(&format!(
            "  occupancy {:.2}  wave_eff {:.2}\n",
            self.timing.occupancy, self.timing.wave_efficiency
        ));
        for b in &self.buffers {
            out.push_str(&format!(
                "  buffer {:<12} footprint {:>12.0} B  dram_rd {:>14.0} B  dram_wr {:>14.0} B  hit {:.2}\n",
                b.buffer,
                b.footprint_bytes,
                b.dram_read_bytes,
                b.dram_write_bytes,
                b.read_hit_rate()
            ));
        }
        out
    }
}

/// The profiler: owns the hardware model.
#[derive(Debug, Clone)]
pub struct Profiler {
    hw: HardwareSpec,
    /// When false, the L2 model is bypassed and requested bytes hit DRAM
    /// directly — the "no cache" ablation from DESIGN.md.
    cache_enabled: bool,
}

impl Profiler {
    /// Create a profiler for the given hardware.
    pub fn new(hw: HardwareSpec) -> Self {
        Profiler {
            hw,
            cache_enabled: true,
        }
    }

    /// Disable the L2 model (ablation).
    pub fn without_cache(mut self) -> Self {
        self.cache_enabled = false;
        self
    }

    /// The hardware model in use.
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hw
    }

    /// Profile one kernel launch.
    pub fn profile(&self, kernel: &KernelIr, launch: &LaunchConfig) -> KernelProfile {
        let summary = kernel.summarize(&launch.params);
        let mem = if self.cache_enabled {
            resolve_memory(&self.hw, kernel, launch, &summary.demands)
        } else {
            uncached_memory(&self.hw, kernel, launch, &summary.demands)
        };
        let timing = estimate_runtime(&self.hw, launch, &summary.costs, &mem);

        let threads = launch.total_threads() as f64;
        let counts = OpCounts {
            flops_sp: (summary.costs.flops_sp * threads).round() as u64,
            flops_dp: (summary.costs.flops_dp * threads).round() as u64,
            intops: (summary.costs.intops * threads).round() as u64,
            dram_read_bytes: mem.dram_read_bytes.round() as u64,
            dram_write_bytes: mem.dram_write_bytes.round() as u64,
        };

        KernelProfile {
            kernel: kernel.name.clone(),
            hardware: self.hw.name.clone(),
            counts,
            runtime_s: timing.runtime_s,
            timing,
            buffers: mem.buffers,
            grid: (launch.grid.x, launch.grid.y, launch.grid.z),
            block: (launch.block.x, launch.block.y, launch.block.z),
        }
    }

    /// Profile a batch of launches in parallel (rayon).
    pub fn profile_batch(&self, jobs: &[(KernelIr, LaunchConfig)]) -> Vec<KernelProfile> {
        jobs.par_iter().map(|(k, lc)| self.profile(k, lc)).collect()
    }
}

/// The no-cache ablation: requested bytes (after coalescing) go straight
/// to DRAM.
fn uncached_memory(
    hw: &HardwareSpec,
    kernel: &KernelIr,
    launch: &LaunchConfig,
    demands: &[crate::ir::MemDemand],
) -> MemoryResolution {
    // Reuse the full model but with an L2 of one byte: every capacity term
    // collapses to a miss.
    let mut tiny = hw.clone();
    tiny.l2_bytes = 1;
    resolve_memory(&tiny, kernel, launch, demands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{AccessPattern, Extent, Op, Precision};

    fn saxpy(n: u64) -> (KernelIr, LaunchConfig) {
        let k = KernelIr::builder("saxpy")
            .buffer("x", 4, Extent::Param("n".into()))
            .buffer("y", 4, Extent::Param("n".into()))
            .op(Op::load("x", AccessPattern::Coalesced))
            .op(Op::load("y", AccessPattern::Coalesced))
            .op(Op::fma(Precision::F32))
            .op(Op::store("y", AccessPattern::Coalesced))
            .build();
        let lc = LaunchConfig::linear(n, 256).with_param("n", n);
        (k, lc)
    }

    #[test]
    fn profile_counts_match_analytic_expectation() {
        let n = 1 << 22;
        let (k, lc) = saxpy(n);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        assert_eq!(p.counts.flops_sp, 2 * lc.total_threads());
        assert_eq!(p.counts.flops_dp, 0);
        // 3 implied address int ops per thread.
        assert_eq!(p.counts.intops, 3 * lc.total_threads());
        assert!(p.runtime_s > 0.0);
    }

    #[test]
    fn saxpy_is_bandwidth_bound_on_3080() {
        let n = 16_000_000;
        let (k, lc) = saxpy(n);
        let hw = HardwareSpec::rtx_3080();
        let p = Profiler::new(hw.clone()).profile(&k, &lc);
        let joint = pce_roofline::classify_joint(&hw, &p.counts);
        assert_eq!(joint.label, pce_roofline::Boundedness::Bandwidth);
    }

    #[test]
    fn profiling_is_deterministic() {
        let (k, lc) = saxpy(1 << 20);
        let prof = Profiler::new(HardwareSpec::rtx_3080());
        let a = prof.profile(&k, &lc);
        let b = prof.profile(&k, &lc);
        assert_eq!(a, b);
    }

    #[test]
    fn batch_matches_sequential() {
        let jobs: Vec<_> = (18..24).map(|s| saxpy(1 << s)).collect();
        let prof = Profiler::new(HardwareSpec::rtx_3080());
        let batch = prof.profile_batch(&jobs);
        for (job, p) in jobs.iter().zip(&batch) {
            assert_eq!(*p, prof.profile(&job.0, &job.1));
        }
    }

    #[test]
    fn cache_ablation_increases_traffic_for_reuse_kernels() {
        let n = 4096u64;
        let k = KernelIr::builder("reuse")
            .buffer("t", 4, Extent::Param("n".into()))
            .op(Op::loop_n(
                Extent::Const(64),
                vec![Op::load("t", AccessPattern::Coalesced)],
            ))
            .build();
        let lc = LaunchConfig::linear(n, 256).with_param("n", n);
        let hw = HardwareSpec::rtx_3080();
        let cached = Profiler::new(hw.clone()).profile(&k, &lc);
        let uncached = Profiler::new(hw).without_cache().profile(&k, &lc);
        assert!(
            uncached.counts.dram_read_bytes > 10 * cached.counts.dram_read_bytes,
            "uncached {} vs cached {}",
            uncached.counts.dram_read_bytes,
            cached.counts.dram_read_bytes
        );
    }

    #[test]
    fn report_contains_all_counters() {
        let (k, lc) = saxpy(1 << 18);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        let report = p.report();
        for needle in ["flop_count_sp", "dram_read", "occupancy", "buffer"] {
            assert!(report.contains(needle), "missing {needle} in report");
        }
    }

    #[test]
    fn observation_conversion_preserves_counts() {
        let (k, lc) = saxpy(1 << 18);
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&k, &lc);
        let obs = p.observation();
        assert_eq!(obs.counts, p.counts);
        assert_eq!(obs.runtime_s, p.runtime_s);
    }
}
