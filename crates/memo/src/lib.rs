//! # pce-memo
//!
//! The memoization primitives shared by the suite-scale caches in
//! `pce-gpu-sim` (body summaries, kernel profiles) and `pce-llm` (static
//! analyses, prompt parses):
//!
//! * [`Fnv`] — a word-granular FNV-1a accumulator for structural
//!   fingerprints (f64s enter via `to_bits`, strings are length-prefixed
//!   so adjacent fields cannot alias),
//! * [`Memo`] — a sharded, fingerprint-bucketed memo table whose buckets
//!   hold the *full* keys: entries are verified with `PartialEq` before
//!   reuse, so a fingerprint collision degrades to a bucket scan — never
//!   to a wrong value. That property is what lets the caches guarantee
//!   bit-identical warm and cold runs,
//! * [`CacheCounters`] — hit/miss/eviction counters every cache exposes
//!   to the bench harness's effectiveness report.
//!
//! ## Bounding
//!
//! A memo table is either *unbounded* ([`Memo::new`]) or *bounded*
//! ([`Memo::bounded`]) by a byte capacity plus a caller-supplied cost
//! function. Bounded tables evict with a sharded second-chance (CLOCK)
//! sweep that walks entries in ascending fingerprint order, so which
//! entry is evicted depends only on the resident set — not on insertion
//! order or thread scheduling. Because every cached function in this
//! workspace is pure, an eviction is observationally just a future miss:
//! bounded and unbounded runs produce byte-identical outputs.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of lock shards per memo table. Small power of two: enough to
/// keep a rayon team from serializing on one lock, cheap enough to scan
/// when reporting counters.
const SHARDS: usize = 16;

/// Finalizing mixer (splitmix64) applied to a fingerprint before shard
/// selection: FNV-1a's high bits are poorly mixed for short inputs, so
/// taking `fp >> 60` straight would pile short keys onto a few shards.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58476d1ce4e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    x
}

/// Hit/miss/eviction counters for one cache, as reported by the bench
/// harness. `resident_bytes` is a point-in-time gauge (0 for unbounded
/// tables, which do no size accounting); the rest are monotone counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populated the cache).
    pub misses: u64,
    /// Entries evicted to stay under the configured byte capacity.
    pub evictions: u64,
    /// Bytes currently resident, per the caller's cost function.
    pub resident_bytes: u64,
}

impl CacheCounters {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 for an unused cache).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// Counters of a first-seen/duplicate classification over a fingerprint
/// stream — what the sharded corpus pipeline reports as its variant-dedup
/// rate. Unlike [`CacheCounters`] (a live gauge on a concurrent table),
/// these are a pure fold over an *ordered* stream, so two runs over the
/// same corpus produce identical stats regardless of shard count or
/// thread schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupStats {
    /// Fingerprints seen for the first time (distinct work items).
    pub unique: u64,
    /// Fingerprints already seen earlier in the stream (work that a
    /// fingerprint memo serves without recomputation).
    pub duplicates: u64,
}

impl DedupStats {
    /// Total fingerprints observed.
    pub fn total(&self) -> u64 {
        self.unique + self.duplicates
    }

    /// Duplicate fraction in `[0, 1]` (0 for an empty stream): the share
    /// of the stream a fingerprint memo absorbs.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.duplicates as f64 / self.total() as f64
        }
    }
}

/// A seen-set over 64-bit fingerprints that classifies each observation
/// as first-seen or duplicate. Feed it an ordered fingerprint stream
/// (e.g. per-program profile identities in corpus order) and read the
/// [`DedupStats`] off at the end.
#[derive(Debug, Default)]
pub struct StreamDedup {
    seen: std::collections::BTreeSet<u64>,
    stats: DedupStats,
}

impl StreamDedup {
    /// A fresh, empty dedup set.
    pub fn new() -> StreamDedup {
        StreamDedup::default()
    }

    /// Observe one fingerprint. Returns `true` when it is new (first
    /// occurrence in the stream), `false` for a duplicate.
    pub fn observe(&mut self, fp: u64) -> bool {
        let new = self.seen.insert(fp);
        if new {
            self.stats.unique += 1;
        } else {
            self.stats.duplicates += 1;
        }
        new
    }

    /// The accumulated first-seen/duplicate counters.
    pub fn stats(&self) -> DedupStats {
        self.stats
    }

    /// Number of distinct fingerprints seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no fingerprint has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// A tiny word-granular FNV-1a accumulator: the fingerprint primitive
/// behind every cache key (and the kernel IR's structural fingerprint).
/// Word-at-a-time folding keeps hashing cheap relative to the work being
/// memoized.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// A fresh accumulator at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Resume from a previously [`finish`](Fnv::finish)ed state — used to
    /// derive sub-keys (e.g. tagging one prompt fingerprint for several
    /// caches) without re-hashing the underlying bytes.
    #[inline]
    pub fn resume(state: u64) -> Fnv {
        Fnv(state)
    }

    /// Fold one 64-bit word.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// Fold one float (by bit pattern).
    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Fold a name → value map (length-prefixed, entries in map order) —
    /// the shape of launch-parameter and CLI-binding cache keys.
    pub fn map_u64(&mut self, map: &std::collections::BTreeMap<String, u64>) {
        self.u64(map.len() as u64);
        for (name, value) in map {
            self.str(name);
            self.u64(*value);
        }
    }

    /// Fold a string 8 bytes at a time (length included, so `"ab" + "c"`
    /// and `"a" + "bc"` cannot collide across adjacent fields).
    #[inline]
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = [0u8; 8];
        let rest = chunks.remainder();
        tail[..rest.len()].copy_from_slice(rest);
        self.u64(u64::from_le_bytes(tail));
    }

    /// The accumulated fingerprint.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One resident entry: the full key, its shared value, the cost charged
/// at insertion, and the CLOCK reference bit (set on every hit, cleared
/// by the sweep to grant one second chance).
struct Entry<K, V> {
    key: K,
    value: Arc<V>,
    cost: u64,
    referenced: AtomicBool,
}

/// One lock shard: fingerprint-ordered buckets (ordering is what makes
/// the eviction sweep deterministic), resident-byte tally, and the CLOCK
/// hand — the fingerprint where the next sweep resumes.
struct Shard<K, V> {
    buckets: BTreeMap<u64, Vec<Entry<K, V>>>,
    bytes: u64,
    hand: u64,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            buckets: BTreeMap::new(),
            bytes: 0,
            hand: 0,
        }
    }
}

/// Per-entry cost function for bounded tables.
type CostFn<K, V> = Arc<dyn Fn(&K, &V) -> u64 + Send + Sync>;

/// A sharded fingerprint-bucketed memo table, optionally bounded.
///
/// Keys are bucketed by a caller-supplied 64-bit fingerprint; each bucket
/// holds the full keys (verified with `PartialEq`) so collisions degrade
/// to a scan, never to a wrong answer.
///
/// [`Memo::bounded`] adds a byte capacity with a per-entry cost function:
/// after each insert the owning shard sweeps entries in ascending
/// fingerprint order (second-chance/CLOCK) until it is back under its
/// slice of the capacity. Eviction order depends only on the resident
/// set, never on insertion order, so runs are reproducible.
pub struct Memo<K, V> {
    shards: Vec<RwLock<Shard<K, V>>>,
    capacity: Option<u64>,
    cost: Option<CostFn<K, V>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    resident: AtomicU64,
}

impl<K, V> fmt::Debug for Memo<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memo")
            .field("capacity", &self.capacity)
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .field("evictions", &self.evictions.load(Ordering::Relaxed))
            .field("resident_bytes", &self.resident.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<K: PartialEq, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo {
            shards: (0..SHARDS).map(|_| RwLock::new(Shard::default())).collect(),
            capacity: None,
            cost: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            resident: AtomicU64::new(0),
        }
    }
}

impl<K: PartialEq, V> Memo<K, V> {
    /// A fresh, empty, unbounded table (no size accounting, no eviction).
    pub fn new() -> Self {
        Memo::default()
    }

    /// A fresh table bounded to `capacity_bytes`, with `cost` charging
    /// each entry at insertion. Capacity is split evenly across shards;
    /// an entry larger than its shard's slice is admitted, returned, and
    /// evicted by the very next sweep — callers still get correct values,
    /// the table just stops retaining them (all-miss behavior).
    pub fn bounded(
        capacity_bytes: u64,
        cost: impl Fn(&K, &V) -> u64 + Send + Sync + 'static,
    ) -> Self {
        Memo {
            capacity: Some(capacity_bytes),
            cost: Some(Arc::new(cost)),
            ..Memo::default()
        }
    }

    /// Look up by fingerprint + exact key match, computing and inserting
    /// on a miss. `compute` must be pure: under concurrent misses both
    /// threads may compute, and whichever inserts first wins — identical
    /// values make the race unobservable.
    pub fn get_or_insert_with(
        &self,
        fp: u64,
        matches: impl Fn(&K) -> bool,
        make_key: impl FnOnce() -> K,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let shard = &self.shards[mix64(fp) as usize % SHARDS];
        if let Some(bucket) = shard.read().buckets.get(&fp) {
            if let Some(e) = bucket.iter().find(|e| matches(&e.key)) {
                e.referenced.store(true, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return e.value.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let key = make_key();
        let cost = match &self.cost {
            Some(f) => f(&key, &value),
            None => 0,
        };
        let mut guard = shard.write();
        let bucket = guard.buckets.entry(fp).or_default();
        // Another worker may have inserted while we computed; reuse its
        // entry so every caller shares one allocation.
        if let Some(e) = bucket.iter().find(|e| matches(&e.key)) {
            e.referenced.store(true, Ordering::Relaxed);
            return e.value.clone();
        }
        // New entries start with the reference bit clear: a second chance
        // is earned by a hit, so churn that is never re-read cannot push
        // hot entries out of the table.
        bucket.push(Entry {
            key,
            value: value.clone(),
            cost,
            referenced: AtomicBool::new(false),
        });
        guard.bytes += cost;
        self.resident.fetch_add(cost, Ordering::Relaxed);
        if let Some(capacity) = self.capacity {
            self.enforce(&mut guard, capacity / SHARDS as u64);
        }
        value
    }

    /// Second-chance sweep: walk buckets in ascending fingerprint order
    /// from the shard's hand (wrapping once past the largest key), clear
    /// reference bits on the first pass, evict on the second, until the
    /// shard is back under `budget`. Holding the write lock means no hit
    /// can re-set a bit mid-sweep, so each iteration either evicts an
    /// entry or clears at least one set bit — the sweep terminates even
    /// at a budget of zero.
    fn enforce(&self, shard: &mut Shard<K, V>, budget: u64) {
        while shard.bytes > budget {
            let fp = match shard
                .buckets
                .range(shard.hand..)
                .next()
                .map(|(k, _)| *k)
                .or_else(|| shard.buckets.keys().next().copied())
            {
                Some(fp) => fp,
                None => break,
            };
            let bucket = shard.buckets.get_mut(&fp).expect("bucket at swept fp");
            if let Some(pos) = bucket
                .iter()
                .position(|e| !e.referenced.load(Ordering::Relaxed))
            {
                let evicted = bucket.remove(pos);
                if bucket.is_empty() {
                    shard.buckets.remove(&fp);
                }
                shard.bytes = shard.bytes.saturating_sub(evicted.cost);
                self.resident.fetch_sub(evicted.cost, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            } else {
                for e in bucket.iter() {
                    e.referenced.store(false, Ordering::Relaxed);
                }
            }
            shard.hand = fp.wrapping_add(1);
        }
    }

    /// Hit/miss/eviction counters plus the current resident-byte gauge.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            resident_bytes: self.resident.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct entries held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().buckets.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_dedup_classifies_and_counts() {
        let mut d = StreamDedup::new();
        assert!(d.is_empty());
        assert!(d.observe(1));
        assert!(d.observe(2));
        assert!(!d.observe(1));
        assert!(!d.observe(2));
        assert!(d.observe(3));
        let s = d.stats();
        assert_eq!((s.unique, s.duplicates), (3, 2));
        assert_eq!(s.total(), 5);
        assert!((s.hit_rate() - 0.4).abs() < 1e-12);
        assert_eq!(d.len(), 3);
        assert_eq!(DedupStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn dedup_stats_round_trip_through_serde() {
        let s = DedupStats {
            unique: 7,
            duplicates: 3,
        };
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<DedupStats>(&json).unwrap(), s);
    }

    #[test]
    fn fnv_is_stable_and_length_prefixed() {
        let fp = |parts: &[&str]| {
            let mut h = Fnv::new();
            for p in parts {
                h.str(p);
            }
            h.finish()
        };
        assert_eq!(fp(&["abc"]), fp(&["abc"]));
        assert_ne!(fp(&["abc"]), fp(&["abd"]));
        // Field boundaries cannot alias.
        assert_ne!(fp(&["ab", "c"]), fp(&["a", "bc"]));
        assert_ne!(fp(&["abc", ""]), fp(&["abc"]));
    }

    #[test]
    fn fnv_folds_floats_by_bit_pattern() {
        let fp = |v: f64| {
            let mut h = Fnv::new();
            h.f64(v);
            h.finish()
        };
        assert_eq!(fp(1.5), fp(1.5));
        assert_ne!(fp(0.0), fp(-0.0), "signed zeros are distinct bit patterns");
    }

    #[test]
    fn memo_hits_after_first_compute_and_shares_the_allocation() {
        let memo: Memo<u32, String> = Memo::new();
        let a = memo.get_or_insert_with(7, |&k| k == 1, || 1, || "one".to_string());
        let b = memo.get_or_insert_with(7, |&k| k == 1, || 1, || unreachable!());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            memo.counters(),
            CacheCounters {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn colliding_fingerprints_stay_distinct_entries() {
        let memo: Memo<u32, u32> = Memo::new();
        // Same fingerprint, different keys: the bucket scan must keep both.
        let a = memo.get_or_insert_with(42, |&k| k == 1, || 1, || 10);
        let b = memo.get_or_insert_with(42, |&k| k == 2, || 2, || 20);
        assert_eq!((*a, *b), (10, 20));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.counters().misses, 2);
        assert_eq!(*memo.get_or_insert_with(42, |&k| k == 2, || 2, || 99), 20);
    }

    #[test]
    fn concurrent_misses_converge_on_one_entry() {
        let memo: Arc<Memo<u32, u64>> = Arc::new(Memo::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let memo = memo.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(*memo.get_or_insert_with(3, |&k| k == 3, || 3, || 30), 30);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.counters().total(), 400);
    }

    #[test]
    fn counters_report_rates() {
        let c = CacheCounters {
            hits: 3,
            misses: 1,
            ..Default::default()
        };
        assert_eq!(c.total(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn unbounded_table_does_no_size_accounting() {
        let memo: Memo<u32, u64> = Memo::new();
        for k in 0..100u32 {
            memo.get_or_insert_with(k as u64, |&x| x == k, || k, || k as u64);
        }
        let c = memo.counters();
        assert_eq!((c.evictions, c.resident_bytes), (0, 0));
        assert_eq!(memo.len(), 100);
    }

    #[test]
    fn bounded_table_stays_under_capacity_and_counts_evictions() {
        // 16 shards × 64-byte slices; every entry costs 32 bytes, so each
        // shard retains at most 2 entries.
        let memo: Memo<u32, u64> = Memo::bounded(1024, |_, _| 32);
        for k in 0..200u32 {
            let fp = {
                let mut h = Fnv::new();
                h.u64(k as u64);
                h.finish()
            };
            memo.get_or_insert_with(fp, |&x| x == k, || k, || k as u64);
        }
        let c = memo.counters();
        assert!(c.resident_bytes <= 1024, "resident={}", c.resident_bytes);
        assert!(c.evictions > 0, "expected evictions at this capacity");
        assert_eq!(c.misses, 200);
        assert_eq!(
            memo.len() as u64 * 32,
            c.resident_bytes,
            "byte tally matches entry count"
        );
    }

    #[test]
    fn capacity_one_table_still_returns_correct_values() {
        // A 1-byte capacity admits nothing durably: every lookup is a
        // miss, every insert is evicted by its own sweep — but returned
        // values are always correct.
        let memo: Memo<u32, u64> = Memo::bounded(1, |_, _| 64);
        for round in 0..3 {
            for k in 0..20u32 {
                let got = memo.get_or_insert_with(k as u64, |&x| x == k, || k, || (k as u64) * 10);
                assert_eq!(*got, (k as u64) * 10, "round {round}");
            }
        }
        let c = memo.counters();
        assert_eq!(c.hits, 0, "capacity-1 cache cannot retain entries");
        assert_eq!(c.misses, 60);
        assert_eq!(c.evictions, 60);
        assert_eq!(c.resident_bytes, 0);
        assert!(memo.is_empty());
    }

    #[test]
    fn recently_hit_entries_survive_the_sweep() {
        // One shard's slice fits 2 entries. Keep hitting key A while
        // inserting churn keys routed to the same shard: the CLOCK's
        // second chance must keep A resident.
        let memo: Memo<u64, u64> = Memo::bounded(16 * 64, |_, _| 32);
        let same_shard: Vec<u64> = (0..1 << 16)
            .filter(|&fp| (mix64(fp) as usize).is_multiple_of(SHARDS))
            .take(12)
            .collect();
        assert!(same_shard.len() >= 12, "need enough colliding fingerprints");
        let a = same_shard[0];
        memo.get_or_insert_with(a, |&k| k == a, || a, || 111);
        for &fp in &same_shard[1..] {
            // Touch A, then insert churn.
            assert_eq!(
                *memo.get_or_insert_with(a, |&k| k == a, || a, || 0),
                111,
                "hot entry must survive churn at fp {fp}"
            );
            memo.get_or_insert_with(fp, |&k| k == fp, || fp, || fp);
        }
        assert!(memo.counters().evictions > 0);
    }

    #[test]
    fn sweep_evicts_in_ascending_fingerprint_order() {
        // The sweep walks fingerprints, not insertion history: whichever
        // order three same-shard entries arrive in, the lowest unreferenced
        // fingerprint is evicted first, leaving the same resident set.
        let fps: Vec<u64> = (0..1u64 << 16)
            .filter(|&fp| mix64(fp) as usize % SHARDS == 3)
            .take(3)
            .collect();
        let run = |order: &[u64]| -> Vec<u64> {
            // One shard's slice fits 2 entries of 32 bytes.
            let memo: Memo<u64, u64> = Memo::bounded(16 * 64, |_, _| 32);
            for &fp in order {
                memo.get_or_insert_with(fp, |&k| k == fp, || fp, || fp);
            }
            assert_eq!(memo.counters().evictions, 1);
            let resident = memo.shards[3].read().buckets.keys().copied().collect();
            resident
        };
        let mut rev = fps.clone();
        rev.reverse();
        assert_eq!(run(&fps), fps[1..], "lowest fingerprint goes first");
        assert_eq!(run(&rev), fps[1..], "insertion order does not matter");
    }

    #[test]
    fn shards_spread_short_string_fingerprints() {
        // Satellite fix: FNV-1a fingerprints of short strings concentrate
        // in the top bits; after mixing, shard occupancy must be spread.
        let mut occupancy = [0usize; SHARDS];
        for i in 0..1000 {
            let mut h = Fnv::new();
            h.str(&format!("kernel_{i}"));
            occupancy[mix64(h.finish()) as usize % SHARDS] += 1;
        }
        let (min, max) = (
            *occupancy.iter().min().expect("non-empty"),
            *occupancy.iter().max().expect("non-empty"),
        );
        // Expected 62.5 per shard; demand every shard is populated and no
        // shard hoards more than 3× its fair share.
        assert!(min >= 20, "under-filled shard: {occupancy:?}");
        assert!(max <= 187, "over-filled shard: {occupancy:?}");

        // And the memo table itself actually lands entries on many shards.
        let memo: Memo<String, u64> = Memo::new();
        for i in 0..1000 {
            let key = format!("kernel_{i}");
            let mut h = Fnv::new();
            h.str(&key);
            let fp = h.finish();
            let key2 = key.clone();
            memo.get_or_insert_with(fp, |k| *k == key, move || key2, || i);
        }
        let populated = memo
            .shards
            .iter()
            .filter(|s| !s.read().buckets.is_empty())
            .count();
        assert_eq!(populated, SHARDS, "all shards should see entries");
    }
}
