//! # pce-memo
//!
//! The memoization primitives shared by the suite-scale caches in
//! `pce-gpu-sim` (body summaries, kernel profiles) and `pce-llm` (static
//! analyses, prompt parses):
//!
//! * [`Fnv`] — a word-granular FNV-1a accumulator for structural
//!   fingerprints (f64s enter via `to_bits`, strings are length-prefixed
//!   so adjacent fields cannot alias),
//! * [`Memo`] — a sharded, fingerprint-bucketed memo table whose buckets
//!   hold the *full* keys: entries are verified with `PartialEq` before
//!   reuse, so a fingerprint collision degrades to a bucket scan — never
//!   to a wrong value. That property is what lets the caches guarantee
//!   bit-identical warm and cold runs,
//! * [`CacheCounters`] — hit/miss counters every cache exposes to the
//!   bench harness's effectiveness report.
//!
//! All cached functions in this workspace are pure, so the only
//! observable difference between a hit and a miss is time.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of lock shards per memo table. Small power of two: enough to
/// keep a rayon team from serializing on one lock, cheap enough to scan
/// when reporting counters.
const SHARDS: usize = 16;

/// Hit/miss counters for one cache, as reported by the bench harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute (and then populated the cache).
    pub misses: u64,
}

impl CacheCounters {
    /// Total lookups.
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 for an unused cache).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }
}

/// A tiny word-granular FNV-1a accumulator: the fingerprint primitive
/// behind every cache key (and the kernel IR's structural fingerprint).
/// Word-at-a-time folding keeps hashing cheap relative to the work being
/// memoized.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv::new()
    }
}

impl Fnv {
    /// A fresh accumulator at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    /// Resume from a previously [`finish`](Fnv::finish)ed state — used to
    /// derive sub-keys (e.g. tagging one prompt fingerprint for several
    /// caches) without re-hashing the underlying bytes.
    #[inline]
    pub fn resume(state: u64) -> Fnv {
        Fnv(state)
    }

    /// Fold one 64-bit word.
    #[inline]
    pub fn u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }

    /// Fold one float (by bit pattern).
    #[inline]
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Fold a name → value map (length-prefixed, entries in map order) —
    /// the shape of launch-parameter and CLI-binding cache keys.
    pub fn map_u64(&mut self, map: &std::collections::BTreeMap<String, u64>) {
        self.u64(map.len() as u64);
        for (name, value) in map {
            self.str(name);
            self.u64(*value);
        }
    }

    /// Fold a string 8 bytes at a time (length included, so `"ab" + "c"`
    /// and `"a" + "bc"` cannot collide across adjacent fields).
    #[inline]
    pub fn str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.u64(bytes.len() as u64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = [0u8; 8];
        let rest = chunks.remainder();
        tail[..rest.len()].copy_from_slice(rest);
        self.u64(u64::from_le_bytes(tail));
    }

    /// The accumulated fingerprint.
    #[inline]
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One fingerprint bucket: full keys plus their shared values. Collisions
/// degrade to a scan over the bucket, never to a wrong answer.
type Bucket<K, V> = Vec<(K, Arc<V>)>;

/// A sharded fingerprint-bucketed memo table.
///
/// Keys are bucketed by a caller-supplied 64-bit fingerprint; each bucket
/// holds the full keys (verified with `PartialEq`) so collisions degrade
/// to a scan, never to a wrong answer.
#[derive(Debug)]
pub struct Memo<K, V> {
    shards: Vec<RwLock<HashMap<u64, Bucket<K, V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: PartialEq, V> Default for Memo<K, V> {
    fn default() -> Self {
        Memo {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }
}

impl<K: PartialEq, V> Memo<K, V> {
    /// A fresh, empty table.
    pub fn new() -> Self {
        Memo::default()
    }

    /// Look up by fingerprint + exact key match, computing and inserting
    /// on a miss. `compute` must be pure: under concurrent misses both
    /// threads may compute, and whichever inserts first wins — identical
    /// values make the race unobservable.
    pub fn get_or_insert_with(
        &self,
        fp: u64,
        matches: impl Fn(&K) -> bool,
        make_key: impl FnOnce() -> K,
        compute: impl FnOnce() -> V,
    ) -> Arc<V> {
        let shard = &self.shards[(fp >> 60) as usize % SHARDS];
        if let Some(bucket) = shard.read().get(&fp) {
            if let Some((_, v)) = bucket.iter().find(|(k, _)| matches(k)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v.clone();
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let key = make_key();
        let mut guard = shard.write();
        let bucket = guard.entry(fp).or_default();
        // Another worker may have inserted while we computed; reuse its
        // entry so every caller shares one allocation.
        if let Some((_, v)) = bucket.iter().find(|(k, _)| matches(k)) {
            return v.clone();
        }
        bucket.push((key, value.clone()));
        value
    }

    /// Hit/miss counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Number of distinct entries held.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().values().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Whether the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_stable_and_length_prefixed() {
        let fp = |parts: &[&str]| {
            let mut h = Fnv::new();
            for p in parts {
                h.str(p);
            }
            h.finish()
        };
        assert_eq!(fp(&["abc"]), fp(&["abc"]));
        assert_ne!(fp(&["abc"]), fp(&["abd"]));
        // Field boundaries cannot alias.
        assert_ne!(fp(&["ab", "c"]), fp(&["a", "bc"]));
        assert_ne!(fp(&["abc", ""]), fp(&["abc"]));
    }

    #[test]
    fn fnv_folds_floats_by_bit_pattern() {
        let fp = |v: f64| {
            let mut h = Fnv::new();
            h.f64(v);
            h.finish()
        };
        assert_eq!(fp(1.5), fp(1.5));
        assert_ne!(fp(0.0), fp(-0.0), "signed zeros are distinct bit patterns");
    }

    #[test]
    fn memo_hits_after_first_compute_and_shares_the_allocation() {
        let memo: Memo<u32, String> = Memo::new();
        let a = memo.get_or_insert_with(7, |&k| k == 1, || 1, || "one".to_string());
        let b = memo.get_or_insert_with(7, |&k| k == 1, || 1, || unreachable!());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(memo.counters(), CacheCounters { hits: 1, misses: 1 });
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn colliding_fingerprints_stay_distinct_entries() {
        let memo: Memo<u32, u32> = Memo::new();
        // Same fingerprint, different keys: the bucket scan must keep both.
        let a = memo.get_or_insert_with(42, |&k| k == 1, || 1, || 10);
        let b = memo.get_or_insert_with(42, |&k| k == 2, || 2, || 20);
        assert_eq!((*a, *b), (10, 20));
        assert_eq!(memo.len(), 2);
        assert_eq!(memo.counters().misses, 2);
        assert_eq!(*memo.get_or_insert_with(42, |&k| k == 2, || 2, || 99), 20);
    }

    #[test]
    fn concurrent_misses_converge_on_one_entry() {
        let memo: Arc<Memo<u32, u64>> = Arc::new(Memo::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let memo = memo.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        assert_eq!(*memo.get_or_insert_with(3, |&k| k == 3, || 3, || 30), 30);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.counters().total(), 400);
    }

    #[test]
    fn counters_report_rates() {
        let c = CacheCounters { hits: 3, misses: 1 };
        assert_eq!(c.total(), 4);
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }
}
