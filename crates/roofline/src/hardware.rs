//! GPU hardware specifications used as roofline ceilings.
//!
//! A [`HardwareSpec`] captures exactly the quantities the paper's prompts
//! expose to the LLMs (Fig. 4): peak single-precision, double-precision and
//! integer throughput, plus peak DRAM bandwidth.

use serde::{Deserialize, Serialize};

use crate::model::Roofline;

/// The class of arithmetic operation a roofline is drawn for.
///
/// The paper profiles three counters per kernel — single-precision FLOPs,
/// double-precision FLOPs and integer ops — and draws one roofline per class
/// (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-precision (32-bit) floating-point operations.
    Sp,
    /// Double-precision (64-bit) floating-point operations.
    Dp,
    /// Integer operations (32-bit).
    Int,
}

impl OpClass {
    /// All operation classes, in the order the paper reports them.
    pub const ALL: [OpClass; 3] = [OpClass::Sp, OpClass::Dp, OpClass::Int];

    /// Human-readable label matching the paper's figures ("SP-FLOP", ...).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Sp => "SP-FLOP",
            OpClass::Dp => "DP-FLOP",
            OpClass::Int => "INTOP",
        }
    }

    /// Unit string for throughput in this class.
    pub fn unit(self) -> &'static str {
        match self {
            OpClass::Sp | OpClass::Dp => "GFLOP/s",
            OpClass::Int => "GINTOP/s",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A GPU hardware description sufficient to draw its rooflines.
///
/// All throughputs are *theoretical peaks* in units of 10⁹ operations per
/// second (GFLOP/s or GINTOP/s); bandwidth is peak DRAM bandwidth in GB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Marketing name, e.g. `"NVIDIA GeForce RTX 3080"`.
    pub name: String,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_sp_gflops: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_dp_gflops: f64,
    /// Peak integer throughput in GINTOP/s.
    pub peak_int_giops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Device memory capacity in GiB (prompt metadata only).
    pub memory_gib: f64,
    /// Number of streaming multiprocessors (used by the GPU simulator).
    pub num_sms: u32,
    /// Core clock in MHz (used by the GPU simulator).
    pub core_clock_mhz: f64,
    /// L2 cache size in bytes (used by the GPU simulator's cache model).
    pub l2_bytes: u64,
}

impl HardwareSpec {
    /// The paper's target device: NVIDIA GeForce RTX 3080 10 GB (§2.1).
    ///
    /// Peaks follow the published Ampere GA102 numbers: 29.77 TFLOP/s SP,
    /// 1/64 rate DP, half-rate INT32, 760 GB/s GDDR6X bandwidth.
    pub fn rtx_3080() -> Self {
        HardwareSpec {
            name: "NVIDIA GeForce RTX 3080".to_string(),
            peak_sp_gflops: 29_770.0,
            peak_dp_gflops: 465.1,
            peak_int_giops: 14_885.0,
            bandwidth_gbs: 760.0,
            memory_gib: 10.0,
            num_sms: 68,
            core_clock_mhz: 1_710.0,
            l2_bytes: 5 * 1024 * 1024,
        }
    }

    /// NVIDIA A100-SXM4-40GB (used by the "expanding dataset" future-work
    /// experiments and the hardware-sensitivity ablation).
    pub fn a100() -> Self {
        HardwareSpec {
            name: "NVIDIA A100-SXM4-40GB".to_string(),
            peak_sp_gflops: 19_500.0,
            peak_dp_gflops: 9_700.0,
            peak_int_giops: 19_500.0,
            bandwidth_gbs: 1_555.0,
            memory_gib: 40.0,
            num_sms: 108,
            core_clock_mhz: 1_410.0,
            l2_bytes: 40 * 1024 * 1024,
        }
    }

    /// NVIDIA Tesla V100-SXM2-16GB.
    pub fn v100() -> Self {
        HardwareSpec {
            name: "NVIDIA Tesla V100-SXM2-16GB".to_string(),
            peak_sp_gflops: 15_700.0,
            peak_dp_gflops: 7_800.0,
            peak_int_giops: 15_700.0,
            bandwidth_gbs: 900.0,
            memory_gib: 16.0,
            num_sms: 80,
            core_clock_mhz: 1_530.0,
            l2_bytes: 6 * 1024 * 1024,
        }
    }

    /// AMD Instinct MI100 (performance-portability ablation target).
    pub fn mi100() -> Self {
        HardwareSpec {
            name: "AMD Instinct MI100".to_string(),
            peak_sp_gflops: 23_100.0,
            peak_dp_gflops: 11_500.0,
            peak_int_giops: 23_100.0,
            bandwidth_gbs: 1_229.0,
            memory_gib: 32.0,
            num_sms: 120,
            core_clock_mhz: 1_502.0,
            l2_bytes: 8 * 1024 * 1024,
        }
    }

    /// NVIDIA H100 SXM5 80GB (Hopper): full-rate DP, half-rate INT32,
    /// HBM3. The cross-hardware suite's "datacenter flagship" point.
    pub fn h100_sxm() -> Self {
        HardwareSpec {
            name: "NVIDIA H100 SXM5 80GB".to_string(),
            peak_sp_gflops: 66_910.0,
            peak_dp_gflops: 33_450.0,
            peak_int_giops: 33_450.0,
            bandwidth_gbs: 3_350.0,
            memory_gib: 80.0,
            num_sms: 132,
            core_clock_mhz: 1_830.0,
            l2_bytes: 50 * 1024 * 1024,
        }
    }

    /// NVIDIA GeForce RTX 4090 (Ada AD102): like the 3080, consumer
    /// silicon with 1/64-rate DP pipes and half-rate INT32 — but with the
    /// highest SP ridge point in the catalog (82.6 TFLOP/s over ~1 TB/s).
    pub fn rtx_4090() -> Self {
        HardwareSpec {
            name: "NVIDIA GeForce RTX 4090".to_string(),
            peak_sp_gflops: 82_580.0,
            peak_dp_gflops: 1_290.0,
            peak_int_giops: 41_290.0,
            bandwidth_gbs: 1_008.0,
            memory_gib: 24.0,
            num_sms: 128,
            core_clock_mhz: 2_520.0,
            l2_bytes: 72 * 1024 * 1024,
        }
    }

    /// AMD Instinct MI250X (CDNA2, both GCDs): full-rate vector DP over
    /// 3.2 TB/s of HBM2e — the catalog's bandwidth-rich extreme.
    pub fn mi250x() -> Self {
        HardwareSpec {
            name: "AMD Instinct MI250X".to_string(),
            peak_sp_gflops: 47_870.0,
            peak_dp_gflops: 47_870.0,
            peak_int_giops: 47_870.0,
            bandwidth_gbs: 3_277.0,
            memory_gib: 128.0,
            num_sms: 220,
            core_clock_mhz: 1_700.0,
            l2_bytes: 16 * 1024 * 1024,
        }
    }

    /// All built-in presets.
    pub fn presets() -> Vec<HardwareSpec> {
        vec![
            Self::rtx_3080(),
            Self::a100(),
            Self::v100(),
            Self::mi100(),
            Self::h100_sxm(),
            Self::rtx_4090(),
            Self::mi250x(),
        ]
    }

    /// The marketing names of all built-in presets, in preset order.
    pub fn preset_names() -> Vec<String> {
        Self::presets().into_iter().map(|hw| hw.name).collect()
    }

    /// Look up a preset by a case- and format-insensitive fragment of its
    /// name: `"A100"`, `"a100"`, `"RTX 3080"`, `"rtx-3080"` and
    /// `"NVIDIA GeForce RTX 3080"` all resolve. Matching ignores case and
    /// every non-alphanumeric character; the first preset (in
    /// [`Self::presets`] order) whose normalized name contains the
    /// normalized fragment wins. An empty fragment matches nothing.
    pub fn preset_by_name(name: &str) -> Option<HardwareSpec> {
        let needle = normalize_name(name);
        if needle.is_empty() {
            return None;
        }
        Self::presets()
            .into_iter()
            .find(|hw| normalize_name(&hw.name).contains(&needle))
    }

    /// Peak throughput for an operation class, in Gops/s.
    pub fn peak_gops(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Sp => self.peak_sp_gflops,
            OpClass::Dp => self.peak_dp_gflops,
            OpClass::Int => self.peak_int_giops,
        }
    }

    /// The roofline for one operation class.
    pub fn roofline(&self, class: OpClass) -> Roofline {
        Roofline::new(self.peak_gops(class), self.bandwidth_gbs)
    }

    /// The ridge (balance) point of one class's roofline, in ops/byte:
    /// the arithmetic intensity where the bandwidth slope meets the
    /// compute ceiling. Kernels whose AI falls between two specs' ridge
    /// points flip boundedness between them.
    pub fn ridge_point(&self, class: OpClass) -> f64 {
        self.peak_gops(class) / self.bandwidth_gbs
    }

    /// Validate physical plausibility of the spec.
    ///
    /// Returns a list of human-readable problems; empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check = |cond: bool, msg: &str| {
            if !cond {
                problems.push(msg.to_string());
            }
        };
        check(
            self.peak_sp_gflops > 0.0,
            "peak SP throughput must be positive",
        );
        check(
            self.peak_dp_gflops > 0.0,
            "peak DP throughput must be positive",
        );
        check(
            self.peak_int_giops > 0.0,
            "peak INT throughput must be positive",
        );
        check(self.bandwidth_gbs > 0.0, "bandwidth must be positive");
        check(
            self.peak_dp_gflops <= self.peak_sp_gflops,
            "DP peak cannot exceed SP peak on any real GPU",
        );
        check(self.num_sms > 0, "SM count must be positive");
        check(self.core_clock_mhz > 0.0, "core clock must be positive");
        check(self.l2_bytes > 0, "L2 size must be positive");
        check(self.memory_gib > 0.0, "memory capacity must be positive");
        problems
    }
}

/// Lowercase and strip every non-alphanumeric character, so name matching
/// ignores vendor prefixes' spacing, dashes and case.
fn normalize_name(s: &str) -> String {
    s.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx_3080_matches_published_specs() {
        let hw = HardwareSpec::rtx_3080();
        assert_eq!(hw.name, "NVIDIA GeForce RTX 3080");
        assert!((hw.peak_sp_gflops - 29_770.0).abs() < 1.0);
        assert!((hw.bandwidth_gbs - 760.0).abs() < 1e-9);
        // DP is the 1/64-rate GA102 figure.
        assert!(hw.peak_dp_gflops < hw.peak_sp_gflops / 60.0);
        assert!(hw.validate().is_empty());
    }

    #[test]
    fn all_presets_validate() {
        for hw in HardwareSpec::presets() {
            assert!(hw.validate().is_empty(), "{} failed validation", hw.name);
        }
    }

    #[test]
    fn catalog_has_seven_presets_with_unique_names() {
        let names = HardwareSpec::preset_names();
        assert_eq!(names.len(), 7);
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate preset names");
    }

    #[test]
    fn preset_lookup_is_case_and_format_insensitive() {
        for fragment in [
            "A100",
            "a100",
            "RTX 3080",
            "rtx-3080",
            "rtx3080",
            "NVIDIA GeForce RTX 3080",
            "h100",
            "H100 SXM5",
            "mi250x",
            "MI250X",
            "4090",
        ] {
            assert!(
                HardwareSpec::preset_by_name(fragment).is_some(),
                "'{fragment}' failed to resolve"
            );
        }
        assert_eq!(
            HardwareSpec::preset_by_name("rtx-3080").unwrap().name,
            "NVIDIA GeForce RTX 3080"
        );
        assert!(HardwareSpec::preset_by_name("H900-nonexistent").is_none());
        assert!(HardwareSpec::preset_by_name("").is_none());
        assert!(HardwareSpec::preset_by_name(" -_- ").is_none());
    }

    // Catalog-wide invariants (ridge points, name round-trips, validation)
    // live in the workspace property suite: tests/properties.rs.

    #[test]
    fn peak_gops_selects_the_right_class() {
        let hw = HardwareSpec::rtx_3080();
        assert_eq!(hw.peak_gops(OpClass::Sp), hw.peak_sp_gflops);
        assert_eq!(hw.peak_gops(OpClass::Dp), hw.peak_dp_gflops);
        assert_eq!(hw.peak_gops(OpClass::Int), hw.peak_int_giops);
    }

    #[test]
    fn op_class_labels_match_paper() {
        assert_eq!(OpClass::Sp.label(), "SP-FLOP");
        assert_eq!(OpClass::Dp.label(), "DP-FLOP");
        assert_eq!(OpClass::Int.label(), "INTOP");
        assert_eq!(OpClass::Int.unit(), "GINTOP/s");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut hw = HardwareSpec::rtx_3080();
        hw.peak_dp_gflops = hw.peak_sp_gflops * 2.0;
        hw.bandwidth_gbs = 0.0;
        let problems = hw.validate();
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let hw = HardwareSpec::rtx_3080();
        let json = serde_json::to_string(&hw).unwrap();
        let back: HardwareSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(hw, back);
    }
}
