//! Hardware specifications used as roofline ceilings.
//!
//! A [`HardwareSpec`] captures exactly the quantities the paper's prompts
//! expose to the LLMs (Fig. 4): peak single-precision, double-precision and
//! integer throughput, plus peak DRAM bandwidth. The catalog carries two
//! [`SpecClass`] families — the paper's GPUs, and a CPU preset family so the
//! OpenMP half of the corpus can be labeled against the roofline of the
//! machine class it actually targets. A [`SpecPair`] bundles one spec of
//! each class for language-aware routing.

use pce_fault::PceError;
use serde::{Deserialize, Serialize};

use crate::model::Roofline;

/// The class of arithmetic operation a roofline is drawn for.
///
/// The paper profiles three counters per kernel — single-precision FLOPs,
/// double-precision FLOPs and integer ops — and draws one roofline per class
/// (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-precision (32-bit) floating-point operations.
    Sp,
    /// Double-precision (64-bit) floating-point operations.
    Dp,
    /// Integer operations (32-bit).
    Int,
}

impl OpClass {
    /// All operation classes, in the order the paper reports them.
    pub const ALL: [OpClass; 3] = [OpClass::Sp, OpClass::Dp, OpClass::Int];

    /// Human-readable label matching the paper's figures ("SP-FLOP", ...).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Sp => "SP-FLOP",
            OpClass::Dp => "DP-FLOP",
            OpClass::Int => "INTOP",
        }
    }

    /// Unit string for throughput in this class.
    pub fn unit(self) -> &'static str {
        match self {
            OpClass::Sp | OpClass::Dp => "GFLOP/s",
            OpClass::Int => "GINTOP/s",
        }
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The machine class a hardware spec describes.
///
/// Ground-truth labels must come from the roofline of the hardware the
/// code actually targets: CUDA kernels are profiled against a `Gpu` spec,
/// OpenMP-offload kernels against a `Cpu` spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpecClass {
    /// A discrete GPU (the paper's machine model).
    Gpu,
    /// A many-core CPU (cores × SIMD × FMA × frequency peaks).
    Cpu,
}

impl SpecClass {
    /// Both spec classes, GPU first (catalog order).
    pub const ALL: [SpecClass; 2] = [SpecClass::Gpu, SpecClass::Cpu];

    /// Human-readable label ("GPU" / "CPU").
    pub fn label(self) -> &'static str {
        match self {
            SpecClass::Gpu => "GPU",
            SpecClass::Cpu => "CPU",
        }
    }
}

impl std::fmt::Display for SpecClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A hardware description sufficient to draw its rooflines.
///
/// All throughputs are *theoretical peaks* in units of 10⁹ operations per
/// second (GFLOP/s or GINTOP/s); bandwidth is peak DRAM bandwidth in GB/s.
/// For CPU specs the "SM" fields describe the analogous CPU quantities:
/// `num_sms` is the core count, `core_clock_mhz` the sustained all-core
/// clock, and `l2_bytes` the last-level (L3) cache capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Marketing name, e.g. `"NVIDIA GeForce RTX 3080"`.
    pub name: String,
    /// Machine class (GPU or CPU) — routes language-aware labeling.
    pub class: SpecClass,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_sp_gflops: f64,
    /// Peak double-precision throughput in GFLOP/s.
    pub peak_dp_gflops: f64,
    /// Peak integer throughput in GINTOP/s.
    pub peak_int_giops: f64,
    /// Peak DRAM bandwidth in GB/s.
    pub bandwidth_gbs: f64,
    /// Device memory capacity in GiB (prompt metadata only).
    pub memory_gib: f64,
    /// Number of streaming multiprocessors (GPU) or cores (CPU).
    pub num_sms: u32,
    /// Core clock in MHz (used by the simulator's timing model).
    pub core_clock_mhz: f64,
    /// Last-level cache size in bytes (L2 on GPUs, L3 on CPUs).
    pub l2_bytes: u64,
}

/// Why a preset-name lookup failed.
///
/// The [`std::fmt::Display`] rendering always ends with the full catalog
/// listing, grouped by [`SpecClass`], so CLI users never have to guess.
#[derive(Debug, Clone, PartialEq)]
pub enum PresetLookupError {
    /// The fragment normalized to nothing (empty or all separators).
    Empty,
    /// No preset name contains the normalized fragment.
    Unknown {
        /// The fragment as given.
        fragment: String,
    },
    /// Several presets contain the fragment and none matches it exactly.
    Ambiguous {
        /// The fragment as given.
        fragment: String,
        /// Every preset name the fragment matched, in catalog order.
        matches: Vec<String>,
    },
}

impl std::fmt::Display for PresetLookupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PresetLookupError::Empty => {
                write!(f, "empty hardware spec name")?;
            }
            PresetLookupError::Unknown { fragment } => {
                write!(f, "unknown hardware spec '{fragment}'")?;
            }
            PresetLookupError::Ambiguous { fragment, matches } => {
                write!(
                    f,
                    "ambiguous hardware spec '{fragment}' (matches {})",
                    matches.join(", ")
                )?;
            }
        }
        write!(f, "; known presets:\n{}", HardwareSpec::catalog_listing())
    }
}

impl std::error::Error for PresetLookupError {}

impl From<PresetLookupError> for PceError {
    /// A failed preset lookup is a spec problem: the name the user gave
    /// does not resolve, and retrying would not help.
    fn from(err: PresetLookupError) -> PceError {
        PceError::spec(err.to_string())
    }
}

impl HardwareSpec {
    /// The paper's target device: NVIDIA GeForce RTX 3080 10 GB (§2.1).
    ///
    /// Peaks follow the published Ampere GA102 numbers: 29.77 TFLOP/s SP,
    /// 1/64 rate DP, half-rate INT32, 760 GB/s GDDR6X bandwidth.
    pub fn rtx_3080() -> Self {
        HardwareSpec {
            name: "NVIDIA GeForce RTX 3080".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 29_770.0,
            peak_dp_gflops: 465.1,
            peak_int_giops: 14_885.0,
            bandwidth_gbs: 760.0,
            memory_gib: 10.0,
            num_sms: 68,
            core_clock_mhz: 1_710.0,
            l2_bytes: 5 * 1024 * 1024,
        }
    }

    /// NVIDIA A100-SXM4-40GB (used by the "expanding dataset" future-work
    /// experiments and the hardware-sensitivity ablation).
    pub fn a100() -> Self {
        HardwareSpec {
            name: "NVIDIA A100-SXM4-40GB".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 19_500.0,
            peak_dp_gflops: 9_700.0,
            peak_int_giops: 19_500.0,
            bandwidth_gbs: 1_555.0,
            memory_gib: 40.0,
            num_sms: 108,
            core_clock_mhz: 1_410.0,
            l2_bytes: 40 * 1024 * 1024,
        }
    }

    /// NVIDIA Tesla V100-SXM2-16GB.
    pub fn v100() -> Self {
        HardwareSpec {
            name: "NVIDIA Tesla V100-SXM2-16GB".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 15_700.0,
            peak_dp_gflops: 7_800.0,
            peak_int_giops: 15_700.0,
            bandwidth_gbs: 900.0,
            memory_gib: 16.0,
            num_sms: 80,
            core_clock_mhz: 1_530.0,
            l2_bytes: 6 * 1024 * 1024,
        }
    }

    /// AMD Instinct MI100 (performance-portability ablation target).
    pub fn mi100() -> Self {
        HardwareSpec {
            name: "AMD Instinct MI100".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 23_100.0,
            peak_dp_gflops: 11_500.0,
            peak_int_giops: 23_100.0,
            bandwidth_gbs: 1_229.0,
            memory_gib: 32.0,
            num_sms: 120,
            core_clock_mhz: 1_502.0,
            l2_bytes: 8 * 1024 * 1024,
        }
    }

    /// NVIDIA H100 SXM5 80GB (Hopper): full-rate DP, half-rate INT32,
    /// HBM3. The cross-hardware suite's "datacenter flagship" point.
    pub fn h100_sxm() -> Self {
        HardwareSpec {
            name: "NVIDIA H100 SXM5 80GB".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 66_910.0,
            peak_dp_gflops: 33_450.0,
            peak_int_giops: 33_450.0,
            bandwidth_gbs: 3_350.0,
            memory_gib: 80.0,
            num_sms: 132,
            core_clock_mhz: 1_830.0,
            l2_bytes: 50 * 1024 * 1024,
        }
    }

    /// NVIDIA GeForce RTX 4090 (Ada AD102): like the 3080, consumer
    /// silicon with 1/64-rate DP pipes and half-rate INT32 — but with the
    /// highest SP ridge point in the catalog (82.6 TFLOP/s over ~1 TB/s).
    pub fn rtx_4090() -> Self {
        HardwareSpec {
            name: "NVIDIA GeForce RTX 4090".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 82_580.0,
            peak_dp_gflops: 1_290.0,
            peak_int_giops: 41_290.0,
            bandwidth_gbs: 1_008.0,
            memory_gib: 24.0,
            num_sms: 128,
            core_clock_mhz: 2_520.0,
            l2_bytes: 72 * 1024 * 1024,
        }
    }

    /// AMD Instinct MI250X (CDNA2, both GCDs): full-rate vector DP over
    /// 3.2 TB/s of HBM2e — the catalog's bandwidth-rich extreme.
    pub fn mi250x() -> Self {
        HardwareSpec {
            name: "AMD Instinct MI250X".to_string(),
            class: SpecClass::Gpu,
            peak_sp_gflops: 47_870.0,
            peak_dp_gflops: 47_870.0,
            peak_int_giops: 47_870.0,
            bandwidth_gbs: 3_277.0,
            memory_gib: 128.0,
            num_sms: 220,
            core_clock_mhz: 1_700.0,
            l2_bytes: 16 * 1024 * 1024,
        }
    }

    /// Build a CPU spec from its microarchitectural throughput recipe.
    ///
    /// Per-class peaks follow the standard cores × SIMD × FMA × frequency
    /// expansion:
    ///
    /// * `sp_flops_per_cycle` is SP FLOPs per core per cycle — SIMD lanes
    ///   × FMA (×2) × FMA pipes,
    /// * DP throughput is half of SP (64-bit lanes halve the SIMD width),
    /// * integer SIMD has **no** fused multiply-add, so peak GINTOP/s is
    ///   `sp_flops_per_cycle / 2` per core per cycle — copying the
    ///   FMA-doubled GFLOP/s figure into the INTOP peak would double-count
    ///   integer throughput (and double the INT ridge point).
    #[allow(clippy::too_many_arguments)]
    fn cpu(
        name: &str,
        cores: u32,
        sp_flops_per_cycle: f64,
        clock_mhz: f64,
        bandwidth_gbs: f64,
        memory_gib: f64,
        l3_bytes: u64,
    ) -> Self {
        let ghz = clock_mhz / 1_000.0;
        // Round to 0.1 GFLOP/s: these are theoretical spec-sheet peaks,
        // and the tidy figure is what prompts and reports render.
        let sp = (cores as f64 * sp_flops_per_cycle * ghz * 10.0).round() / 10.0;
        HardwareSpec {
            name: name.to_string(),
            class: SpecClass::Cpu,
            peak_sp_gflops: sp,
            peak_dp_gflops: sp / 2.0,
            peak_int_giops: sp / 2.0,
            bandwidth_gbs,
            memory_gib,
            num_sms: cores,
            core_clock_mhz: clock_mhz,
            l2_bytes: l3_bytes,
        }
    }

    /// AMD EPYC 9654 (Genoa, Zen 4): 96 cores, two 256-bit FMA pipes per
    /// core (AVX-512 double-pumped → 32 SP FLOP/cycle), 2.4 GHz base,
    /// 12-channel DDR5-4800 (460.8 GB/s). The paper-default CPU spec for
    /// labeling the OpenMP corpus half.
    pub fn epyc_9654() -> Self {
        Self::cpu(
            "AMD EPYC 9654",
            96,
            32.0,
            2_400.0,
            460.8,
            384.0,
            384 * 1024 * 1024,
        )
    }

    /// Intel Xeon Platinum 8480+ (Sapphire Rapids): 56 cores, two native
    /// 512-bit FMA ports per core (64 SP FLOP/cycle), 2.0 GHz base,
    /// 8-channel DDR5-4800 (307.2 GB/s).
    pub fn xeon_8480p() -> Self {
        Self::cpu(
            "Intel Xeon Platinum 8480+",
            56,
            64.0,
            2_000.0,
            307.2,
            256.0,
            105 * 1024 * 1024,
        )
    }

    /// NVIDIA Grace (one die of the Superchip): 72 Neoverse V2 cores with
    /// four 128-bit SVE2 FMA pipes each (32 SP FLOP/cycle), 3.1 GHz,
    /// 546 GB/s of LPDDR5X — the catalog's bandwidth-rich CPU point.
    pub fn grace() -> Self {
        Self::cpu(
            "NVIDIA Grace CPU Superchip",
            72,
            32.0,
            3_100.0,
            546.0,
            120.0,
            114 * 1024 * 1024,
        )
    }

    /// All built-in GPU presets (the cross-hardware suite's GPU axis).
    pub fn gpu_presets() -> Vec<HardwareSpec> {
        vec![
            Self::rtx_3080(),
            Self::a100(),
            Self::v100(),
            Self::mi100(),
            Self::h100_sxm(),
            Self::rtx_4090(),
            Self::mi250x(),
        ]
    }

    /// All built-in CPU presets (the suite's CPU axis).
    pub fn cpu_presets() -> Vec<HardwareSpec> {
        vec![Self::epyc_9654(), Self::xeon_8480p(), Self::grace()]
    }

    /// All built-in presets: GPUs first, then CPUs.
    pub fn presets() -> Vec<HardwareSpec> {
        let mut all = Self::gpu_presets();
        all.extend(Self::cpu_presets());
        all
    }

    /// The built-in presets of one machine class.
    pub fn presets_of(class: SpecClass) -> Vec<HardwareSpec> {
        match class {
            SpecClass::Gpu => Self::gpu_presets(),
            SpecClass::Cpu => Self::cpu_presets(),
        }
    }

    /// The marketing names of all built-in presets, in preset order.
    pub fn preset_names() -> Vec<String> {
        Self::presets().into_iter().map(|hw| hw.name).collect()
    }

    /// The full catalog, grouped by [`SpecClass`] — the listing appended
    /// to every [`PresetLookupError`].
    pub fn catalog_listing() -> String {
        let mut out = String::new();
        for class in SpecClass::ALL {
            out.push_str(&format!("{class} presets:\n"));
            for hw in Self::presets_of(class) {
                out.push_str(&format!("  {}\n", hw.name));
            }
        }
        out
    }

    /// Look up a preset by a case- and format-insensitive fragment of its
    /// name: `"A100"`, `"a100"`, `"RTX 3080"`, `"rtx-3080"`, `"epyc-9654"`
    /// and `"NVIDIA GeForce RTX 3080"` all resolve. Matching ignores case
    /// and every non-alphanumeric character.
    ///
    /// A fragment that matches a preset's whole normalized name resolves
    /// to it; otherwise the fragment must be contained in **exactly one**
    /// preset name. Ambiguous fragments (`"nvidia"`, `"100"`) are
    /// rejected with the list of candidates rather than silently resolving
    /// to the first catalog entry; the error's `Display` always appends
    /// the catalog grouped by [`SpecClass`].
    pub fn preset_by_name(name: &str) -> Result<HardwareSpec, PresetLookupError> {
        let needle = normalize_name(name);
        if needle.is_empty() {
            return Err(PresetLookupError::Empty);
        }
        let presets = Self::presets();
        if let Some(exact) = presets.iter().find(|hw| normalize_name(&hw.name) == needle) {
            return Ok(exact.clone());
        }
        let matches: Vec<&HardwareSpec> = presets
            .iter()
            .filter(|hw| normalize_name(&hw.name).contains(&needle))
            .collect();
        match matches.as_slice() {
            [] => Err(PresetLookupError::Unknown {
                fragment: name.to_string(),
            }),
            [one] => Ok((*one).clone()),
            many => Err(PresetLookupError::Ambiguous {
                fragment: name.to_string(),
                matches: many.iter().map(|hw| hw.name.clone()).collect(),
            }),
        }
    }

    /// Peak throughput for an operation class, in Gops/s.
    pub fn peak_gops(&self, class: OpClass) -> f64 {
        match class {
            OpClass::Sp => self.peak_sp_gflops,
            OpClass::Dp => self.peak_dp_gflops,
            OpClass::Int => self.peak_int_giops,
        }
    }

    /// The roofline for one operation class.
    pub fn roofline(&self, class: OpClass) -> Roofline {
        Roofline::new(self.peak_gops(class), self.bandwidth_gbs)
    }

    /// The ridge (balance) point of one class's roofline, in ops/byte:
    /// the arithmetic intensity where the bandwidth slope meets the
    /// compute ceiling. Kernels whose AI falls between two specs' ridge
    /// points flip boundedness between them.
    ///
    /// Units: GFLOP/s ÷ GB/s = FLOP/byte for the floating-point classes,
    /// GINTOP/s ÷ GB/s = INTOP/byte for [`OpClass::Int`] — the numerator
    /// must be the class's own peak (never, e.g., the FMA-doubled SP
    /// figure reused for integers).
    pub fn ridge_point(&self, class: OpClass) -> f64 {
        self.peak_gops(class) / self.bandwidth_gbs
    }

    /// Validate physical plausibility of the spec.
    ///
    /// Returns a list of human-readable problems; empty when valid.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check = |cond: bool, msg: &str| {
            if !cond {
                problems.push(msg.to_string());
            }
        };
        check(
            self.peak_sp_gflops > 0.0,
            "peak SP throughput must be positive",
        );
        check(
            self.peak_dp_gflops > 0.0,
            "peak DP throughput must be positive",
        );
        check(
            self.peak_int_giops > 0.0,
            "peak INT throughput must be positive",
        );
        check(self.bandwidth_gbs > 0.0, "bandwidth must be positive");
        check(
            self.peak_dp_gflops <= self.peak_sp_gflops,
            "DP peak cannot exceed SP peak on any real device",
        );
        check(self.num_sms > 0, "SM/core count must be positive");
        check(self.core_clock_mhz > 0.0, "core clock must be positive");
        check(self.l2_bytes > 0, "last-level cache size must be positive");
        check(self.memory_gib > 0.0, "memory capacity must be positive");
        problems
    }
}

/// One hardware spec of each class, for language-aware routing: CUDA
/// kernels are profiled and labeled against the GPU spec, OpenMP kernels
/// against the CPU spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecPair {
    /// The GPU spec (CUDA corpus half).
    pub gpu: HardwareSpec,
    /// The CPU spec (OMP corpus half).
    pub cpu: HardwareSpec,
}

impl SpecPair {
    /// Pair a GPU spec with a CPU spec.
    ///
    /// # Errors
    /// Rejects specs whose [`SpecClass`] does not match their slot, so a
    /// CPU roofline can never silently label the CUDA half (or vice
    /// versa).
    pub fn new(gpu: HardwareSpec, cpu: HardwareSpec) -> Result<SpecPair, PceError> {
        if gpu.class != SpecClass::Gpu {
            return Err(PceError::spec(format!("'{}' is not a GPU spec", gpu.name)));
        }
        if cpu.class != SpecClass::Cpu {
            return Err(PceError::spec(format!("'{}' is not a CPU spec", cpu.name)));
        }
        Ok(SpecPair { gpu, cpu })
    }

    /// The paper-default pairing: RTX 3080 (the paper's GPU) with the
    /// EPYC 9654 CPU preset.
    pub fn paper_default() -> SpecPair {
        SpecPair {
            gpu: HardwareSpec::rtx_3080(),
            cpu: HardwareSpec::epyc_9654(),
        }
    }

    /// The spec for one machine class.
    pub fn for_class(&self, class: SpecClass) -> &HardwareSpec {
        match class {
            SpecClass::Gpu => &self.gpu,
            SpecClass::Cpu => &self.cpu,
        }
    }

    /// `"<gpu name> + <cpu name>"`, for report headings.
    pub fn label(&self) -> String {
        format!("{} + {}", self.gpu.name, self.cpu.name)
    }

    /// Validate both specs and the class/slot agreement.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.gpu.class != SpecClass::Gpu {
            problems.push(format!("gpu slot holds a {} spec", self.gpu.class));
        }
        if self.cpu.class != SpecClass::Cpu {
            problems.push(format!("cpu slot holds a {} spec", self.cpu.class));
        }
        for hw in [&self.gpu, &self.cpu] {
            for p in hw.validate() {
                problems.push(format!("{}: {p}", hw.name));
            }
        }
        problems
    }
}

/// Lowercase and strip every non-alphanumeric character, so name matching
/// ignores vendor prefixes' spacing, dashes and case.
fn normalize_name(s: &str) -> String {
    s.chars()
        .filter(char::is_ascii_alphanumeric)
        .map(|c| c.to_ascii_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx_3080_matches_published_specs() {
        let hw = HardwareSpec::rtx_3080();
        assert_eq!(hw.name, "NVIDIA GeForce RTX 3080");
        assert_eq!(hw.class, SpecClass::Gpu);
        assert!((hw.peak_sp_gflops - 29_770.0).abs() < 1.0);
        assert!((hw.bandwidth_gbs - 760.0).abs() < 1e-9);
        // DP is the 1/64-rate GA102 figure.
        assert!(hw.peak_dp_gflops < hw.peak_sp_gflops / 60.0);
        assert!(hw.validate().is_empty());
    }

    #[test]
    fn all_presets_validate() {
        for hw in HardwareSpec::presets() {
            assert!(hw.validate().is_empty(), "{} failed validation", hw.name);
        }
    }

    #[test]
    fn catalog_has_ten_presets_split_by_class() {
        let names = HardwareSpec::preset_names();
        assert_eq!(names.len(), 10);
        assert_eq!(HardwareSpec::gpu_presets().len(), 7);
        assert_eq!(HardwareSpec::cpu_presets().len(), 3);
        let unique: std::collections::BTreeSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate preset names");
        for hw in HardwareSpec::gpu_presets() {
            assert_eq!(hw.class, SpecClass::Gpu, "{}", hw.name);
        }
        for hw in HardwareSpec::cpu_presets() {
            assert_eq!(hw.class, SpecClass::Cpu, "{}", hw.name);
        }
    }

    #[test]
    fn cpu_presets_follow_the_simd_throughput_recipe() {
        // EPYC 9654: 96 cores × 32 SP FLOP/cycle × 2.4 GHz.
        let epyc = HardwareSpec::epyc_9654();
        assert!((epyc.peak_sp_gflops - 7_372.8).abs() < 1e-9);
        assert!((epyc.peak_dp_gflops - 3_686.4).abs() < 1e-9);
        for cpu in HardwareSpec::cpu_presets() {
            // DP halves the SIMD width; integer SIMD has no FMA, so the
            // INTOP peak is half the FMA-doubled SP figure (the unit
            // audit: GINTOP/s is ops, not FLOPs).
            assert!(
                (cpu.peak_dp_gflops - cpu.peak_sp_gflops / 2.0).abs() < 1e-9,
                "{}",
                cpu.name
            );
            assert!(
                (cpu.peak_int_giops - cpu.peak_sp_gflops / 2.0).abs() < 1e-9,
                "{}",
                cpu.name
            );
            // A CPU ridge sits far below every GPU SP ridge's upper range:
            // CPU SP ridges land in single-to-low-double digits.
            let ridge = cpu.ridge_point(OpClass::Sp);
            assert!((5.0..30.0).contains(&ridge), "{}: {ridge}", cpu.name);
        }
    }

    #[test]
    fn cpu_presets_have_distinct_ridge_points() {
        let cpus = HardwareSpec::cpu_presets();
        for class in OpClass::ALL {
            let mut ridges: Vec<f64> = cpus.iter().map(|c| c.ridge_point(class)).collect();
            ridges.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in ridges.windows(2) {
                assert!(w[1] - w[0] > 0.5, "{class}: ridges too close {ridges:?}");
            }
        }
    }

    #[test]
    fn preset_lookup_is_case_and_format_insensitive() {
        for fragment in [
            "A100",
            "a100",
            "RTX 3080",
            "rtx-3080",
            "rtx3080",
            "NVIDIA GeForce RTX 3080",
            "h100",
            "H100 SXM5",
            "mi250x",
            "MI250X",
            "4090",
            "epyc-9654",
            "EPYC 9654",
            "xeon",
            "8480",
            "grace",
        ] {
            assert!(
                HardwareSpec::preset_by_name(fragment).is_ok(),
                "'{fragment}' failed to resolve"
            );
        }
        assert_eq!(
            HardwareSpec::preset_by_name("rtx-3080").unwrap().name,
            "NVIDIA GeForce RTX 3080"
        );
        assert_eq!(
            HardwareSpec::preset_by_name("epyc-9654").unwrap().class,
            SpecClass::Cpu
        );
        assert!(matches!(
            HardwareSpec::preset_by_name("H900-nonexistent"),
            Err(PresetLookupError::Unknown { .. })
        ));
        assert!(matches!(
            HardwareSpec::preset_by_name(""),
            Err(PresetLookupError::Empty)
        ));
        assert!(matches!(
            HardwareSpec::preset_by_name(" -_- "),
            Err(PresetLookupError::Empty)
        ));
    }

    #[test]
    fn ambiguous_fragments_are_rejected_with_grouped_catalog() {
        for fragment in ["nvidia", "100", "rtx", "mi", "amd"] {
            let err = HardwareSpec::preset_by_name(fragment).unwrap_err();
            let PresetLookupError::Ambiguous { matches, .. } = &err else {
                panic!("'{fragment}' should be ambiguous, got {err:?}");
            };
            assert!(matches.len() > 1, "{fragment}");
            let msg = err.to_string();
            assert!(msg.contains("ambiguous"), "{msg}");
            assert!(msg.contains("GPU presets:"), "{msg}");
            assert!(msg.contains("CPU presets:"), "{msg}");
        }
        // An unknown fragment's message carries the grouped catalog too.
        let msg = HardwareSpec::preset_by_name("zen5-9999")
            .unwrap_err()
            .to_string();
        assert!(msg.contains("GPU presets:") && msg.contains("CPU presets:"));
        for name in HardwareSpec::preset_names() {
            assert!(msg.contains(&name), "catalog listing missing {name}");
        }
    }

    #[test]
    fn exact_normalized_match_beats_containment() {
        // "AMD Instinct MI100"'s normalized name is not a fragment of any
        // other preset, but a hypothetical future overlap must keep exact
        // matches working; today, the full-name lookup of every preset
        // must resolve despite shared vendor prefixes.
        for hw in HardwareSpec::presets() {
            assert_eq!(
                HardwareSpec::preset_by_name(&hw.name).unwrap().name,
                hw.name
            );
        }
    }

    // Catalog-wide invariants (ridge points, name round-trips, validation)
    // live in the workspace property suite: tests/properties.rs.

    #[test]
    fn peak_gops_selects_the_right_class() {
        let hw = HardwareSpec::rtx_3080();
        assert_eq!(hw.peak_gops(OpClass::Sp), hw.peak_sp_gflops);
        assert_eq!(hw.peak_gops(OpClass::Dp), hw.peak_dp_gflops);
        assert_eq!(hw.peak_gops(OpClass::Int), hw.peak_int_giops);
    }

    #[test]
    fn op_class_labels_match_paper() {
        assert_eq!(OpClass::Sp.label(), "SP-FLOP");
        assert_eq!(OpClass::Dp.label(), "DP-FLOP");
        assert_eq!(OpClass::Int.label(), "INTOP");
        assert_eq!(OpClass::Int.unit(), "GINTOP/s");
        assert_eq!(SpecClass::Gpu.label(), "GPU");
        assert_eq!(SpecClass::Cpu.label(), "CPU");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut hw = HardwareSpec::rtx_3080();
        hw.peak_dp_gflops = hw.peak_sp_gflops * 2.0;
        hw.bandwidth_gbs = 0.0;
        let problems = hw.validate();
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn spec_pair_enforces_class_slots() {
        let pair = SpecPair::paper_default();
        assert_eq!(pair.gpu.class, SpecClass::Gpu);
        assert_eq!(pair.cpu.class, SpecClass::Cpu);
        assert!(pair.validate().is_empty());
        assert_eq!(pair.for_class(SpecClass::Gpu).name, pair.gpu.name);
        assert_eq!(pair.for_class(SpecClass::Cpu).name, pair.cpu.name);
        assert!(pair.label().contains(&pair.gpu.name));
        assert!(pair.label().contains(&pair.cpu.name));

        assert!(SpecPair::new(HardwareSpec::epyc_9654(), HardwareSpec::epyc_9654()).is_err());
        assert!(SpecPair::new(HardwareSpec::rtx_3080(), HardwareSpec::a100()).is_err());
        assert!(SpecPair::new(HardwareSpec::rtx_3080(), HardwareSpec::grace()).is_ok());

        // The errors are typed, name the offending spec, and are final.
        let err = SpecPair::new(HardwareSpec::epyc_9654(), HardwareSpec::grace()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid spec: 'AMD EPYC 9654' is not a GPU spec"
        );
        assert_eq!(err.kind(), "spec");
        assert!(!err.retryable());
        let err = SpecPair::new(HardwareSpec::rtx_3080(), HardwareSpec::a100()).unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid spec: 'NVIDIA A100-SXM4-40GB' is not a CPU spec"
        );

        let swapped = SpecPair {
            gpu: HardwareSpec::grace(),
            cpu: HardwareSpec::rtx_3080(),
        };
        assert_eq!(swapped.validate().len(), 2);
    }

    #[test]
    fn preset_lookup_errors_convert_to_spec_errors() {
        let err: PceError = HardwareSpec::preset_by_name("no-such-chip")
            .unwrap_err()
            .into();
        assert_eq!(err.kind(), "spec");
        assert!(err
            .to_string()
            .contains("unknown hardware spec 'no-such-chip'"));
        assert!(err.to_string().contains("known presets:"));
        assert!(!err.retryable());
    }

    #[test]
    fn serde_round_trip() {
        let hw = HardwareSpec::rtx_3080();
        let json = serde_json::to_string(&hw).unwrap();
        let back: HardwareSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(hw, back);

        let pair = SpecPair::paper_default();
        let json = serde_json::to_string(&pair).unwrap();
        let back: SpecPair = serde_json::from_str(&json).unwrap();
        assert_eq!(pair, back);
    }
}
