//! Hierarchical rooflines: per-memory-level ceilings (L1 / L2 / DRAM),
//! following the NERSC hierarchical-roofline methodology the paper builds
//! on (Yang, Kurth & Williams, CCPE 2020 — reference [34]).
//!
//! The flat model of [`crate::model`] draws one bandwidth slope; real GPUs
//! have one per memory level. A kernel's *level-specific* arithmetic
//! intensity (ops per byte moved at that level) against that level's slope
//! tells you which part of the hierarchy limits it — the diagnostic the
//! paper's future-work section wants LLMs to learn next.

use serde::{Deserialize, Serialize};

use crate::classify::Boundedness;
use crate::hardware::{HardwareSpec, OpClass};
use crate::model::Roofline;

/// A memory level of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// Per-SM L1/shared level.
    L1,
    /// Chip-wide L2.
    L2,
    /// Device DRAM (HBM/GDDR).
    Dram,
}

impl MemLevel {
    /// All levels, innermost first.
    pub const ALL: [MemLevel; 3] = [MemLevel::L1, MemLevel::L2, MemLevel::Dram];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::L1 => "L1",
            MemLevel::L2 => "L2",
            MemLevel::Dram => "DRAM",
        }
    }
}

/// A hierarchical roofline: one compute ceiling, one slope per level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalRoofline {
    /// Peak throughput in Gops/s for the op class of interest.
    pub peak_gops: f64,
    /// `(level, bandwidth GB/s)` innermost→outermost, strictly decreasing.
    pub levels: Vec<(MemLevel, f64)>,
}

impl HierarchicalRoofline {
    /// Derive a hierarchy from a flat hardware spec using Ampere-class
    /// ratios: L1 ≈ SM count × 128 B/cycle, L2 ≈ 2.5× DRAM.
    pub fn from_spec(hw: &HardwareSpec, class: OpClass) -> Self {
        let l1 = hw.num_sms as f64 * 128.0 * hw.core_clock_mhz * 1e6 / 1e9;
        let l2 = hw.bandwidth_gbs * 2.5;
        let dram = hw.bandwidth_gbs;
        HierarchicalRoofline {
            peak_gops: hw.peak_gops(class),
            levels: vec![
                (MemLevel::L1, l1),
                (MemLevel::L2, l2),
                (MemLevel::Dram, dram),
            ],
        }
    }

    /// The flat roofline of one level.
    pub fn level(&self, level: MemLevel) -> Option<Roofline> {
        self.levels
            .iter()
            .find(|(l, _)| *l == level)
            .map(|&(_, bw)| Roofline::new(self.peak_gops, bw))
    }

    /// Classify a kernel from its per-level AI values
    /// (`ops / bytes-moved-at-level`); returns each level's verdict.
    ///
    /// Levels with no traffic (infinite AI) are compute-bound by
    /// definition at that level.
    pub fn classify(&self, ai_per_level: &[(MemLevel, f64)]) -> Vec<(MemLevel, Boundedness)> {
        ai_per_level
            .iter()
            .filter_map(|&(level, ai)| {
                self.level(level).map(|roof| {
                    let verdict = if ai.is_infinite() {
                        Boundedness::Compute
                    } else {
                        roof.classify(ai)
                    };
                    (level, verdict)
                })
            })
            .collect()
    }

    /// The limiting level: the outermost level that is bandwidth-bound, or
    /// `None` if the kernel is compute-bound at every level.
    pub fn limiting_level(&self, ai_per_level: &[(MemLevel, f64)]) -> Option<MemLevel> {
        let verdicts = self.classify(ai_per_level);
        // Outermost = later in MemLevel::ALL ordering.
        MemLevel::ALL
            .iter()
            .rev()
            .find(|lvl| {
                verdicts
                    .iter()
                    .any(|(l, v)| l == *lvl && *v == Boundedness::Bandwidth)
            })
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier() -> HierarchicalRoofline {
        HierarchicalRoofline::from_spec(&HardwareSpec::rtx_3080(), OpClass::Sp)
    }

    #[test]
    fn bandwidths_decrease_outward() {
        let h = hier();
        let bws: Vec<f64> = h.levels.iter().map(|&(_, bw)| bw).collect();
        assert!(bws[0] > bws[1] && bws[1] > bws[2], "{bws:?}");
        // DRAM slope matches the flat model.
        assert_eq!(bws[2], HardwareSpec::rtx_3080().bandwidth_gbs);
    }

    #[test]
    fn balance_points_grow_inward_to_outward() {
        let h = hier();
        let bp = |l| h.level(l).unwrap().balance_point();
        assert!(bp(MemLevel::L1) < bp(MemLevel::L2));
        assert!(bp(MemLevel::L2) < bp(MemLevel::Dram));
    }

    #[test]
    fn dram_bound_kernel_is_limited_by_dram() {
        let h = hier();
        // Streams everything: same AI at every level, below all balances.
        let ai = vec![
            (MemLevel::L1, 0.2),
            (MemLevel::L2, 0.2),
            (MemLevel::Dram, 0.2),
        ];
        assert_eq!(h.limiting_level(&ai), Some(MemLevel::Dram));
    }

    #[test]
    fn cache_blocked_kernel_is_limited_by_l1() {
        let h = hier();
        // Shared-memory-blocked GEMM: heavy L1 traffic, light DRAM traffic.
        let dram_bp = h.level(MemLevel::Dram).unwrap().balance_point();
        let l1_bp = h.level(MemLevel::L1).unwrap().balance_point();
        let ai = vec![
            (MemLevel::L1, l1_bp * 0.5),      // BB at L1
            (MemLevel::L2, dram_bp * 5.0),    // CB at L2
            (MemLevel::Dram, dram_bp * 50.0), // CB at DRAM
        ];
        assert_eq!(h.limiting_level(&ai), Some(MemLevel::L1));
    }

    #[test]
    fn fully_compute_bound_kernel_has_no_limiting_level() {
        let h = hier();
        let ai = vec![
            (MemLevel::L1, f64::INFINITY),
            (MemLevel::L2, f64::INFINITY),
            (MemLevel::Dram, f64::INFINITY),
        ];
        assert_eq!(h.limiting_level(&ai), None);
        let verdicts = h.classify(&ai);
        assert!(verdicts.iter().all(|(_, v)| *v == Boundedness::Compute));
    }

    #[test]
    fn serde_round_trip() {
        let h = hier();
        let json = serde_json::to_string(&h).unwrap();
        let back: HierarchicalRoofline = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
