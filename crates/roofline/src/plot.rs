//! Generation of the data series behind the paper's Figure 1: the target
//! GPU's rooflines with all profiled kernels scattered on top.
//!
//! The figure has, per op class: a bandwidth slope, a compute ceiling, the
//! balance-point marker, and one scatter point per kernel with nonzero ops
//! in that class at `(AI_class, achieved Gops/s)`.

use serde::{Deserialize, Serialize};

use crate::classify::Boundedness;
use crate::hardware::{HardwareSpec, OpClass};
use crate::observation::KernelObservation;

/// A polyline for one roofline curve, sampled on a log-spaced AI axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflineCurve {
    /// Which op class this roofline belongs to.
    pub class: OpClass,
    /// Balance point in ops/byte.
    pub balance_point: f64,
    /// Peak ceiling in Gops/s.
    pub peak_gops: f64,
    /// `(ai, attainable)` samples, AI ascending.
    pub points: Vec<(f64, f64)>,
}

/// One kernel's scatter point in roofline space.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScatterPoint {
    /// Identifier of the program/kernel this point belongs to.
    pub id: String,
    /// Op class of the point.
    pub class: OpClass,
    /// Arithmetic intensity (ops/byte).
    pub ai: f64,
    /// Achieved throughput (Gops/s).
    pub achieved_gops: f64,
    /// Per-class verdict at this point.
    pub verdict: Boundedness,
}

/// The complete Figure-1 payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RooflinePlot {
    /// Hardware the plot was generated for.
    pub hardware: String,
    /// One curve per op class.
    pub curves: Vec<RooflineCurve>,
    /// One point per (kernel, class-with-ops).
    pub scatter: Vec<ScatterPoint>,
}

impl RooflinePlot {
    /// Fraction of scatter points in a class that are bandwidth-bound.
    ///
    /// The paper notes "the majority of the SP-FLOP and INT samples are BB
    /// on this hardware" — this is the statistic backing that sentence.
    pub fn bandwidth_bound_fraction(&self, class: OpClass) -> f64 {
        let points: Vec<_> = self.scatter.iter().filter(|p| p.class == class).collect();
        if points.is_empty() {
            return 0.0;
        }
        let bb = points
            .iter()
            .filter(|p| p.verdict == Boundedness::Bandwidth)
            .count();
        bb as f64 / points.len() as f64
    }

    /// Render the plot as CSV rows (`series,id,ai,gops,verdict`) for
    /// external plotting tools.
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.scatter.len() + 64));
        out.push_str("series,id,ai,gops,verdict\n");
        for curve in &self.curves {
            for &(ai, att) in &curve.points {
                out.push_str(&format!(
                    "roofline-{},{},{:.6e},{:.6e},\n",
                    curve.class.label(),
                    self.hardware,
                    ai,
                    att
                ));
            }
        }
        for p in &self.scatter {
            out.push_str(&format!(
                "sample-{},{},{:.6e},{:.6e},{}\n",
                p.class.label(),
                p.id,
                p.ai,
                p.achieved_gops,
                p.verdict.short()
            ));
        }
        out
    }
}

/// Sample one roofline curve on `n` log-spaced AI values across
/// `[ai_min, ai_max]`.
pub fn sample_curve(
    hw: &HardwareSpec,
    class: OpClass,
    ai_min: f64,
    ai_max: f64,
    n: usize,
) -> RooflineCurve {
    assert!(ai_min > 0.0 && ai_max > ai_min, "need 0 < ai_min < ai_max");
    assert!(n >= 2, "need at least two samples");
    let roof = hw.roofline(class);
    let (lo, hi) = (ai_min.log10(), ai_max.log10());
    let mut points = Vec::with_capacity(n + 1);
    for i in 0..n {
        let ai = 10f64.powf(lo + (hi - lo) * i as f64 / (n - 1) as f64);
        points.push((ai, roof.attainable_gops(ai)));
    }
    // Always include the exact ridge point so plots show a sharp knee.
    let bp = roof.balance_point();
    if bp > ai_min && bp < ai_max {
        points.push((bp, roof.peak_gops));
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
    }
    RooflineCurve {
        class,
        balance_point: bp,
        peak_gops: roof.peak_gops,
        points,
    }
}

/// Build the full Figure-1 payload from a set of profiled kernels.
///
/// `observations` pairs a kernel identifier with its profiled observation.
/// Points are emitted only for classes with nonzero ops and finite AI, as
/// in the paper's plot.
pub fn build_plot(
    hw: &HardwareSpec,
    observations: &[(String, KernelObservation)],
    curve_samples: usize,
) -> RooflinePlot {
    let (ai_min, ai_max) = (1e-3, 1e4);
    let curves = OpClass::ALL
        .iter()
        .map(|&c| sample_curve(hw, c, ai_min, ai_max, curve_samples))
        .collect();

    let mut scatter = Vec::with_capacity(observations.len() * 2);
    for (id, obs) in observations {
        for &class in &OpClass::ALL {
            if obs.counts.ops(class) == 0 {
                continue;
            }
            let ai = obs.counts.ai(class);
            if !ai.is_finite() {
                continue;
            }
            let roof = hw.roofline(class);
            scatter.push(ScatterPoint {
                id: id.clone(),
                class,
                ai,
                achieved_gops: obs.achieved_gops(class),
                verdict: roof.classify(ai),
            });
        }
    }
    RooflinePlot {
        hardware: hw.name.clone(),
        curves,
        scatter,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::OpCounts;

    fn obs(flops_sp: u64, flops_dp: u64, bytes: u64, runtime_s: f64) -> KernelObservation {
        KernelObservation::new(
            OpCounts {
                flops_sp,
                flops_dp,
                intops: 0,
                dram_read_bytes: bytes / 2,
                dram_write_bytes: bytes - bytes / 2,
            },
            runtime_s,
        )
    }

    #[test]
    fn curve_is_monotonic_and_saturates_at_peak() {
        let hw = HardwareSpec::rtx_3080();
        let curve = sample_curve(&hw, OpClass::Sp, 1e-3, 1e4, 64);
        for w in curve.points.windows(2) {
            assert!(w[0].0 < w[1].0, "AI samples must ascend");
            assert!(w[0].1 <= w[1].1 + 1e-9, "attainable must be non-decreasing");
        }
        let last = curve.points.last().unwrap();
        assert!((last.1 - hw.peak_sp_gflops).abs() < 1e-6);
        // Ridge point included exactly.
        assert!(curve
            .points
            .iter()
            .any(|&(ai, att)| (ai - curve.balance_point).abs() < 1e-12
                && (att - curve.peak_gops).abs() < 1e-9));
    }

    #[test]
    fn scatter_skips_zero_op_classes() {
        let hw = HardwareSpec::rtx_3080();
        let observations = vec![("k0".to_string(), obs(1_000_000, 0, 12_000_000, 1e-4))];
        let plot = build_plot(&hw, &observations, 16);
        // Only the SP class has ops.
        assert_eq!(plot.scatter.len(), 1);
        assert_eq!(plot.scatter[0].class, OpClass::Sp);
    }

    #[test]
    fn scatter_points_sit_below_the_roofline() {
        let hw = HardwareSpec::rtx_3080();
        // A realistic sub-peak observation.
        let observations = vec![("k".to_string(), obs(10_000_000, 0, 12_000_000, 1e-3))];
        let plot = build_plot(&hw, &observations, 16);
        for p in &plot.scatter {
            let roof = hw.roofline(p.class);
            assert!(p.achieved_gops <= roof.attainable_gops(p.ai) * 1.0 + 1e-6);
        }
    }

    #[test]
    fn bandwidth_bound_fraction_counts_correctly() {
        let hw = HardwareSpec::rtx_3080();
        let observations = vec![
            // Low-AI SP sample: BB.
            ("low".to_string(), obs(1_000_000, 0, 12_000_000, 1e-4)),
            // Very high-AI SP sample: CB (AI = 1e9/1e4 = 1e5).
            ("high".to_string(), obs(1_000_000_000, 0, 10_000, 1e-3)),
        ];
        let plot = build_plot(&hw, &observations, 16);
        let frac = plot.bandwidth_bound_fraction(OpClass::Sp);
        assert!((frac - 0.5).abs() < 1e-12);
        // No DP samples at all.
        assert_eq!(plot.bandwidth_bound_fraction(OpClass::Dp), 0.0);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let hw = HardwareSpec::rtx_3080();
        let observations = vec![("k".to_string(), obs(1_000_000, 0, 12_000_000, 1e-4))];
        let plot = build_plot(&hw, &observations, 8);
        let csv = plot.to_csv();
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "series,id,ai,gops,verdict");
        let expected_curve_rows: usize = plot.curves.iter().map(|c| c.points.len()).sum();
        assert_eq!(lines.len(), 1 + expected_curve_rows + plot.scatter.len());
    }
}
