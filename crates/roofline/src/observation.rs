//! Profiled kernel counters and the arithmetic-intensity values derived
//! from them.
//!
//! These mirror the five quantities the paper's profiling step records per
//! kernel (§2.1): SP-FLOPs, DP-FLOPs, INTOPs, global-memory read/write
//! bytes, plus execution time.

use serde::{Deserialize, Serialize};

use crate::hardware::OpClass;

/// Raw operation and DRAM-traffic counters for one profiled kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCounts {
    /// Single-precision floating-point operations executed.
    pub flops_sp: u64,
    /// Double-precision floating-point operations executed.
    pub flops_dp: u64,
    /// Integer arithmetic operations executed.
    pub intops: u64,
    /// Bytes read from device DRAM (post-cache traffic).
    pub dram_read_bytes: u64,
    /// Bytes written to device DRAM (post-cache traffic).
    pub dram_write_bytes: u64,
}

impl OpCounts {
    /// Total DRAM traffic in bytes.
    #[inline]
    pub fn total_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// Operation count for one class.
    #[inline]
    pub fn ops(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Sp => self.flops_sp,
            OpClass::Dp => self.flops_dp,
            OpClass::Int => self.intops,
        }
    }

    /// Total operations across all classes.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.flops_sp + self.flops_dp + self.intops
    }

    /// Arithmetic intensity (ops/byte) for one class.
    ///
    /// A kernel whose working set is entirely cache-resident can produce
    /// zero DRAM traffic with nonzero ops; its AI is unbounded and
    /// represented as `f64::INFINITY` (such kernels are trivially
    /// compute-bound). Zero ops over zero bytes yields AI 0.
    pub fn ai(&self, class: OpClass) -> f64 {
        let ops = self.ops(class);
        let bytes = self.total_bytes();
        if bytes == 0 {
            if ops == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            ops as f64 / bytes as f64
        }
    }

    /// The op class with the largest operation count, breaking ties in
    /// `Sp < Dp < Int` order. Returns `None` when no ops were executed.
    pub fn dominant_class(&self) -> Option<OpClass> {
        let candidates = [
            (self.flops_sp, OpClass::Sp),
            (self.flops_dp, OpClass::Dp),
            (self.intops, OpClass::Int),
        ];
        candidates
            .into_iter()
            .filter(|(n, _)| *n > 0)
            .max_by_key(|(n, _)| *n)
            .map(|(_, c)| c)
    }

    /// Element-wise sum of two counter sets (e.g. multiple kernel launches).
    pub fn accumulate(&self, other: &OpCounts) -> OpCounts {
        OpCounts {
            flops_sp: self.flops_sp + other.flops_sp,
            flops_dp: self.flops_dp + other.flops_dp,
            intops: self.intops + other.intops,
            dram_read_bytes: self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes: self.dram_write_bytes + other.dram_write_bytes,
        }
    }
}

/// A complete profiled observation of one kernel launch: counters plus the
/// measured execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelObservation {
    /// Operation and traffic counters.
    pub counts: OpCounts,
    /// Measured kernel execution time in seconds.
    pub runtime_s: f64,
}

impl KernelObservation {
    /// Construct an observation, validating the runtime.
    ///
    /// # Panics
    /// Panics on non-positive or non-finite runtimes.
    pub fn new(counts: OpCounts, runtime_s: f64) -> Self {
        assert!(
            runtime_s.is_finite() && runtime_s > 0.0,
            "runtime must be positive and finite, got {runtime_s}"
        );
        KernelObservation { counts, runtime_s }
    }

    /// Achieved throughput in Gops/s for one class.
    pub fn achieved_gops(&self, class: OpClass) -> f64 {
        self.counts.ops(class) as f64 / self.runtime_s / 1e9
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn achieved_bandwidth_gbs(&self) -> f64 {
        self.counts.total_bytes() as f64 / self.runtime_s / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn saxpy_counts() -> OpCounts {
        // n = 1M SAXPY: 2 flops, read 8B, write 4B per element.
        OpCounts {
            flops_sp: 2_000_000,
            flops_dp: 0,
            intops: 1_000_000,
            dram_read_bytes: 8_000_000,
            dram_write_bytes: 4_000_000,
        }
    }

    #[test]
    fn ai_divides_ops_by_total_bytes() {
        let c = saxpy_counts();
        assert!((c.ai(OpClass::Sp) - 2.0 / 12.0).abs() < 1e-12);
        assert!((c.ai(OpClass::Int) - 1.0 / 12.0).abs() < 1e-12);
        assert_eq!(c.ai(OpClass::Dp), 0.0);
    }

    #[test]
    fn cache_resident_kernel_has_infinite_ai() {
        let c = OpCounts {
            flops_sp: 100,
            ..OpCounts::default()
        };
        assert!(c.ai(OpClass::Sp).is_infinite());
    }

    #[test]
    fn empty_kernel_has_zero_ai() {
        let c = OpCounts::default();
        assert_eq!(c.ai(OpClass::Sp), 0.0);
        assert_eq!(c.dominant_class(), None);
    }

    #[test]
    fn dominant_class_picks_largest_counter() {
        let c = saxpy_counts();
        assert_eq!(c.dominant_class(), Some(OpClass::Sp));
        let c2 = OpCounts {
            intops: 10,
            flops_dp: 5,
            ..OpCounts::default()
        };
        assert_eq!(c2.dominant_class(), Some(OpClass::Int));
    }

    #[test]
    fn accumulate_adds_fields() {
        let c = saxpy_counts();
        let sum = c.accumulate(&c);
        assert_eq!(sum.flops_sp, 2 * c.flops_sp);
        assert_eq!(sum.total_bytes(), 2 * c.total_bytes());
    }

    #[test]
    fn achieved_metrics_use_runtime() {
        let obs = KernelObservation::new(saxpy_counts(), 1e-3);
        // 2e6 flops in 1 ms -> 2 GFLOP/s.
        assert!((obs.achieved_gops(OpClass::Sp) - 2.0).abs() < 1e-12);
        // 12 MB in 1 ms -> 12 GB/s.
        assert!((obs.achieved_bandwidth_gbs() - 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "runtime must be positive")]
    fn zero_runtime_panics() {
        let _ = KernelObservation::new(OpCounts::default(), 0.0);
    }
}
