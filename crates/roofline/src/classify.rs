//! CB/BB classification, including the paper's joint three-roofline rule.
//!
//! §2.1: *"we classify each of the kernels as BB or CB, relative to the
//! three arithmetic operation rooflines: SP-FLOP, DP-FLOP, or INTOP … If a
//! kernel is BB in all 3 arithmetic operations, we consider it BB for
//! classification; otherwise if there exists at least 1 operation type where
//! the kernel is CB, we consider it CB."*

use serde::{Deserialize, Serialize};

use crate::hardware::{HardwareSpec, OpClass};
use crate::observation::OpCounts;

/// The binary roofline class: the label space of the whole study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Boundedness {
    /// Performance limited by arithmetic throughput ("Compute" in prompts).
    Compute,
    /// Performance limited by memory bandwidth ("Bandwidth" in prompts).
    Bandwidth,
}

impl Boundedness {
    /// Both classes, CB first (the order used in Table 1's metrics).
    pub const ALL: [Boundedness; 2] = [Boundedness::Compute, Boundedness::Bandwidth];

    /// The single-word answer token the prompts require
    /// (`'Compute'` / `'Bandwidth'`, Fig. 4).
    pub fn answer_token(self) -> &'static str {
        match self {
            Boundedness::Compute => "Compute",
            Boundedness::Bandwidth => "Bandwidth",
        }
    }

    /// Short label used in figures ("CB"/"BB").
    pub fn short(self) -> &'static str {
        match self {
            Boundedness::Compute => "CB",
            Boundedness::Bandwidth => "BB",
        }
    }

    /// The opposite class.
    pub fn flipped(self) -> Boundedness {
        match self {
            Boundedness::Compute => Boundedness::Bandwidth,
            Boundedness::Bandwidth => Boundedness::Compute,
        }
    }

    /// Parse a (possibly decorated) model answer into a class.
    ///
    /// Accepts the canonical answer tokens case-insensitively, plus the
    /// common long forms "compute-bound"/"bandwidth-bound" and "memory".
    /// Returns `None` for anything else — the harness counts those as
    /// incorrect, as the paper's automation does.
    pub fn parse(answer: &str) -> Option<Boundedness> {
        let trimmed = answer
            .trim()
            .trim_matches(|c: char| c == '.' || c == '\'' || c == '"' || c == '`' || c == ':');
        let lower = trimmed.to_ascii_lowercase();
        if lower.starts_with("compute") {
            Some(Boundedness::Compute)
        } else if lower.starts_with("bandwidth") || lower.starts_with("memory") {
            Some(Boundedness::Bandwidth)
        } else {
            None
        }
    }
}

impl std::fmt::Display for Boundedness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.answer_token())
    }
}

/// Per-class classification outcome for one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassOutcome {
    /// The operation class this outcome refers to.
    pub class: OpClass,
    /// Arithmetic intensity under this class (ops / total DRAM bytes).
    pub ai: f64,
    /// Balance point of this class's roofline.
    pub balance_point: f64,
    /// The verdict for this class alone.
    pub verdict: Boundedness,
}

/// The joint classification of a kernel under all three rooflines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointClassification {
    /// Per-class outcomes in `OpClass::ALL` order.
    pub per_class: Vec<ClassOutcome>,
    /// The paper's joint label: CB iff any class is CB.
    pub label: Boundedness,
}

impl JointClassification {
    /// The classes under which this kernel is compute-bound.
    pub fn compute_bound_classes(&self) -> Vec<OpClass> {
        self.per_class
            .iter()
            .filter(|o| o.verdict == Boundedness::Compute)
            .map(|o| o.class)
            .collect()
    }
}

/// Classify one kernel's counters against each of the hardware's three
/// rooflines independently.
///
/// Classes with zero executed operations have AI 0 and are trivially
/// bandwidth-bound, matching how zero counters behave in the paper's
/// pipeline.
pub fn classify_per_class(hw: &HardwareSpec, counts: &OpCounts) -> Vec<ClassOutcome> {
    OpClass::ALL
        .iter()
        .map(|&class| {
            let roof = hw.roofline(class);
            let ai = counts.ai(class);
            let verdict = if ai.is_infinite() {
                Boundedness::Compute
            } else {
                roof.classify(ai)
            };
            ClassOutcome {
                class,
                ai,
                balance_point: roof.balance_point(),
                verdict,
            }
        })
        .collect()
}

/// The paper's joint labeling rule: BB iff bandwidth-bound under **all**
/// three op-class rooflines, CB if compute-bound under at least one.
pub fn classify_joint(hw: &HardwareSpec, counts: &OpCounts) -> JointClassification {
    let per_class = classify_per_class(hw, counts);
    let label = if per_class.iter().any(|o| o.verdict == Boundedness::Compute) {
        Boundedness::Compute
    } else {
        Boundedness::Bandwidth
    };
    JointClassification { per_class, label }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareSpec {
        HardwareSpec::rtx_3080()
    }

    #[test]
    fn streaming_kernel_is_bandwidth_bound() {
        // SAXPY-ish: very low AI in every class.
        let counts = OpCounts {
            flops_sp: 2_000_000,
            intops: 1_000_000,
            dram_read_bytes: 8_000_000,
            dram_write_bytes: 4_000_000,
            ..OpCounts::default()
        };
        let joint = classify_joint(&hw(), &counts);
        assert_eq!(joint.label, Boundedness::Bandwidth);
        assert!(joint.compute_bound_classes().is_empty());
    }

    #[test]
    fn dp_heavy_kernel_is_compute_bound_via_dp_roofline() {
        // DP balance point on the 3080 is ~0.61 flop/B, so a DP kernel with
        // AI 1.0 is CB by DP even though it would be BB by SP.
        let counts = OpCounts {
            flops_dp: 12_000_000,
            dram_read_bytes: 8_000_000,
            dram_write_bytes: 4_000_000,
            ..OpCounts::default()
        };
        let joint = classify_joint(&hw(), &counts);
        assert_eq!(joint.label, Boundedness::Compute);
        assert_eq!(joint.compute_bound_classes(), vec![OpClass::Dp]);
    }

    #[test]
    fn joint_rule_is_cb_if_any_class_cb() {
        // Sp AI 50 (> ~39.2 balance) forces CB regardless of other classes.
        let counts = OpCounts {
            flops_sp: 600_000_000,
            dram_read_bytes: 8_000_000,
            dram_write_bytes: 4_000_000,
            ..OpCounts::default()
        };
        let joint = classify_joint(&hw(), &counts);
        assert_eq!(joint.label, Boundedness::Compute);
    }

    #[test]
    fn cache_resident_counts_are_compute_bound() {
        let counts = OpCounts {
            flops_sp: 1000,
            ..OpCounts::default()
        };
        let joint = classify_joint(&hw(), &counts);
        assert_eq!(joint.label, Boundedness::Compute);
    }

    #[test]
    fn per_class_outcomes_cover_all_three_rooflines() {
        let counts = OpCounts::default();
        let outcomes = classify_per_class(&hw(), &counts);
        assert_eq!(outcomes.len(), 3);
        let classes: Vec<_> = outcomes.iter().map(|o| o.class).collect();
        assert_eq!(classes, OpClass::ALL.to_vec());
        // Zero counters: all BB.
        assert!(outcomes.iter().all(|o| o.verdict == Boundedness::Bandwidth));
    }

    #[test]
    fn balance_points_are_ordered_dp_int_sp_on_3080() {
        let outcomes = classify_per_class(&hw(), &OpCounts::default());
        let bp: std::collections::HashMap<_, _> = outcomes
            .iter()
            .map(|o| (o.class, o.balance_point))
            .collect();
        assert!(bp[&OpClass::Dp] < bp[&OpClass::Int]);
        assert!(bp[&OpClass::Int] < bp[&OpClass::Sp]);
    }

    #[test]
    fn answer_token_parsing_accepts_variants() {
        assert_eq!(Boundedness::parse("Compute"), Some(Boundedness::Compute));
        assert_eq!(
            Boundedness::parse(" bandwidth "),
            Some(Boundedness::Bandwidth)
        );
        assert_eq!(
            Boundedness::parse("Compute-bound."),
            Some(Boundedness::Compute)
        );
        assert_eq!(
            Boundedness::parse("'Bandwidth'"),
            Some(Boundedness::Bandwidth)
        );
        assert_eq!(
            Boundedness::parse("memory-bound"),
            Some(Boundedness::Bandwidth)
        );
        assert_eq!(Boundedness::parse("dunno"), None);
        assert_eq!(Boundedness::parse(""), None);
    }

    #[test]
    fn flipped_is_involutive() {
        for b in Boundedness::ALL {
            assert_eq!(b.flipped().flipped(), b);
        }
    }
}
