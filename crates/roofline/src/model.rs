//! The roofline curve itself: `attainable(AI) = min(peak, bandwidth * AI)`.

use serde::{Deserialize, Serialize};

use crate::classify::Boundedness;

/// A single roofline: one peak-throughput ceiling plus one bandwidth slope.
///
/// Units are GB/s for bandwidth and Gops/s for the peak; arithmetic
/// intensity is therefore in ops/byte, exactly as in the paper's prompts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak throughput ceiling in Gops/s.
    pub peak_gops: f64,
    /// Memory bandwidth slope in GB/s.
    pub bandwidth_gbs: f64,
}

impl Roofline {
    /// Create a roofline from a peak (Gops/s) and a bandwidth (GB/s).
    ///
    /// # Panics
    /// Panics if either quantity is non-positive or non-finite — a roofline
    /// with no ceiling or no slope is meaningless.
    pub fn new(peak_gops: f64, bandwidth_gbs: f64) -> Self {
        assert!(
            peak_gops.is_finite() && peak_gops > 0.0,
            "peak must be positive and finite, got {peak_gops}"
        );
        assert!(
            bandwidth_gbs.is_finite() && bandwidth_gbs > 0.0,
            "bandwidth must be positive and finite, got {bandwidth_gbs}"
        );
        Roofline {
            peak_gops,
            bandwidth_gbs,
        }
    }

    /// The balance point (a.k.a. machine balance or ridge point) in
    /// ops/byte: the AI at which the bandwidth slope meets the compute
    /// ceiling. Kernels below it are bandwidth-bound.
    #[inline]
    pub fn balance_point(&self) -> f64 {
        self.peak_gops / self.bandwidth_gbs
    }

    /// Attainable performance (Gops/s) at a given arithmetic intensity.
    #[inline]
    pub fn attainable_gops(&self, ai: f64) -> f64 {
        debug_assert!(ai >= 0.0, "arithmetic intensity cannot be negative");
        (self.bandwidth_gbs * ai).min(self.peak_gops)
    }

    /// Classify an arithmetic intensity against this roofline.
    ///
    /// The paper's convention (Fig. 3's CoT examples) is strict: AI below the
    /// balance point is bandwidth-bound, at-or-above is compute-bound.
    #[inline]
    pub fn classify(&self, ai: f64) -> Boundedness {
        if ai < self.balance_point() {
            Boundedness::Bandwidth
        } else {
            Boundedness::Compute
        }
    }

    /// Signed distance from the balance point in log₁₀ space.
    ///
    /// Positive values are compute-bound; the magnitude measures how far the
    /// kernel sits from the ridge (useful as a classification-difficulty
    /// proxy: kernels near zero are genuinely ambiguous).
    pub fn log_distance_to_balance(&self, ai: f64) -> f64 {
        assert!(ai > 0.0, "log distance requires positive AI");
        ai.log10() - self.balance_point().log10()
    }

    /// Fraction of peak achieved by an observed (AI, performance) point.
    ///
    /// Values are in `[0, 1]` for physically-possible observations; the
    /// denominator is the *attainable* roofline value at that AI, so a
    /// memory-bound kernel running at streaming bandwidth scores 1.0.
    pub fn efficiency(&self, ai: f64, achieved_gops: f64) -> f64 {
        let ceiling = self.attainable_gops(ai);
        if ceiling <= 0.0 {
            0.0
        } else {
            achieved_gops / ceiling
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roof() -> Roofline {
        // The worked CoT example from the paper's Fig. 3:
        // 45.9 GB/s bandwidth, 52.22 GFLOP/s peak -> balance 1.1377 FLOP/B.
        Roofline::new(52.22, 45.9)
    }

    #[test]
    fn balance_point_matches_paper_cot_example() {
        let bp = roof().balance_point();
        assert!((bp - 52.22 / 45.9).abs() < 1e-12);
        // The paper rounds to 1.14 FLOP/Byte.
        assert!((bp - 1.14).abs() < 0.005);
    }

    #[test]
    fn paper_cot_example_classifies_bandwidth_bound() {
        // "AI of 0.6 FLOP/Byte ... bandwidth-bound" (Fig. 3).
        assert_eq!(roof().classify(0.6), Boundedness::Bandwidth);
    }

    #[test]
    fn high_ai_classifies_compute_bound() {
        assert_eq!(roof().classify(5.0), Boundedness::Compute);
    }

    #[test]
    fn at_balance_point_is_compute_bound() {
        let r = roof();
        assert_eq!(r.classify(r.balance_point()), Boundedness::Compute);
    }

    #[test]
    fn attainable_is_min_of_slope_and_ceiling() {
        let r = roof();
        // Memory-limited region: slope.
        assert!((r.attainable_gops(0.5) - 45.9 * 0.5).abs() < 1e-9);
        // Compute-limited region: ceiling.
        assert!((r.attainable_gops(100.0) - 52.22).abs() < 1e-9);
        // Exactly at the ridge both sides agree.
        let bp = r.balance_point();
        assert!((r.attainable_gops(bp) - r.peak_gops).abs() < 1e-9);
    }

    #[test]
    fn log_distance_sign_encodes_boundedness() {
        let r = roof();
        assert!(r.log_distance_to_balance(0.1) < 0.0);
        assert!(r.log_distance_to_balance(10.0) > 0.0);
        assert!(r.log_distance_to_balance(r.balance_point()).abs() < 1e-12);
    }

    #[test]
    fn efficiency_is_relative_to_attainable() {
        let r = roof();
        // Streaming at full bandwidth with AI 0.5 => attainable achieved.
        let eff = r.efficiency(0.5, 45.9 * 0.5);
        assert!((eff - 1.0).abs() < 1e-12);
        // Half of attainable.
        let eff = r.efficiency(0.5, 45.9 * 0.25);
        assert!((eff - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "peak must be positive")]
    fn zero_peak_panics() {
        let _ = Roofline::new(0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn negative_bandwidth_panics() {
        let _ = Roofline::new(10.0, -1.0);
    }
}
