//! # pce-roofline
//!
//! An implementation of the Roofline performance model (Williams, Waterman &
//! Patterson, CACM 2009) as used by *"Can Large Language Models Predict
//! Parallel Code Performance?"* (HPDC'25).
//!
//! The Roofline model correlates a kernel's **arithmetic intensity** (AI,
//! operations per byte of memory traffic) with the hardware's peak
//! performance (operations per second) to determine a performance ceiling:
//!
//! ```text
//! attainable(AI) = min(peak_ops, bandwidth * AI)
//! ```
//!
//! Kernels whose AI falls *below* the **balance point** `peak / bandwidth`
//! are **Bandwidth-Bound (BB)**; kernels at or above it are
//! **Compute-Bound (CB)**.
//!
//! This crate provides:
//!
//! * [`HardwareSpec`] — GPU *and* CPU hardware descriptions with
//!   per-operation-class peaks (single-precision FLOP, double-precision
//!   FLOP, integer op), a [`SpecClass`] tag, and a preset database
//!   (RTX 3080 and friends on the GPU side; EPYC 9654, Xeon 8480+ and
//!   Grace on the CPU side), plus [`SpecPair`] for language-aware routing,
//! * [`Roofline`] — a single (peak, bandwidth) roofline with balance-point,
//!   attainable-performance, and classification queries,
//! * [`OpCounts`] / [`KernelObservation`] — profiled operation/byte counters
//!   and the AI values derived from them,
//! * [`classify_joint`] — the paper's three-roofline joint labeling rule
//!   (§2.1: BB iff BB under *all* op-class rooflines, CB otherwise),
//! * [`plot`] — generation of the data series behind the paper's Figure 1.
//!
//! ## Quick example
//!
//! ```
//! use pce_roofline::{HardwareSpec, OpClass, Boundedness};
//!
//! let hw = HardwareSpec::rtx_3080();
//! let roof = hw.roofline(OpClass::Sp);
//! // A SAXPY-like kernel: 2 flops per 12 bytes of traffic.
//! let ai = 2.0 / 12.0;
//! assert_eq!(roof.classify(ai), Boundedness::Bandwidth);
//! assert!(roof.balance_point() > 1.0);
//! ```

#![forbid(unsafe_code)]

pub mod classify;
pub mod hardware;
pub mod hierarchical;
pub mod model;
pub mod observation;
pub mod plot;

pub use classify::{classify_joint, classify_per_class, Boundedness, JointClassification};
pub use hardware::{HardwareSpec, OpClass, PresetLookupError, SpecClass, SpecPair};
pub use hierarchical::{HierarchicalRoofline, MemLevel};
pub use model::Roofline;
pub use observation::{KernelObservation, OpCounts};
