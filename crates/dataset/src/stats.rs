//! Dataset statistics: the Figure-2 token-distribution rows and the §2.2
//! funnel counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use pce_kernels::Language;
use pce_roofline::Boundedness;
use pce_tokenizer::{token_quartiles, TokenStats};

use crate::pipeline::Split;
use crate::sample::Sample;

/// One box of the Figure-2 box-and-whisker plot:
/// (split, language, class) → token-count distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// `"train"` or `"validation"`.
    pub split: String,
    /// `"CUDA"` or `"OMP"`.
    pub language: String,
    /// `"CB"` or `"BB"`.
    pub class: String,
    /// The distribution summary.
    pub stats: TokenStats,
}

/// Compute the eight Figure-2 rows (2 splits × 2 languages × 2 classes).
pub fn fig2_stats(split: &Split) -> Vec<Fig2Row> {
    let mut rows = Vec::with_capacity(8);
    for (split_name, ds) in [("train", &split.train), ("validation", &split.validation)] {
        for lang in [Language::Cuda, Language::Omp] {
            for label in [Boundedness::Compute, Boundedness::Bandwidth] {
                let counts: Vec<usize> = ds
                    .samples
                    .iter()
                    .filter(|s| s.language == lang && s.label == label)
                    .map(|s| s.token_count)
                    .collect();
                if counts.is_empty() {
                    continue;
                }
                rows.push(Fig2Row {
                    split: split_name.to_string(),
                    language: lang.label().to_string(),
                    class: label.short().to_string(),
                    stats: token_quartiles(&counts),
                });
            }
        }
    }
    rows
}

/// Count samples per (language, class) cell.
pub fn combo_counts(samples: &[Sample]) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for s in samples {
        *m.entry(format!("{}/{}", s.language.label(), s.label.short()))
            .or_insert(0) += 1;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_pipeline, PipelineConfig};
    use pce_kernels::{build_corpus, CorpusConfig};

    fn split() -> Split {
        let corpus = build_corpus(&CorpusConfig {
            seed: 5,
            cuda_programs: 90,
            omp_programs: 72,
        })
        .expect("corpus builds");
        let cfg = PipelineConfig {
            per_combo_cap: 10,
            tokenizer_vocab: 400,
            tokenizer_stride: 15,
            ..Default::default()
        };
        run_pipeline(&corpus, &cfg).1
    }

    #[test]
    fn fig2_has_all_eight_rows() {
        let rows = fig2_stats(&split());
        assert_eq!(rows.len(), 8);
        let train_rows = rows.iter().filter(|r| r.split == "train").count();
        assert_eq!(train_rows, 4);
    }

    #[test]
    fn fig2_stats_are_internally_consistent() {
        for row in fig2_stats(&split()) {
            let s = &row.stats;
            assert!(s.min <= s.q1 && s.q1 <= s.median);
            assert!(s.median <= s.q3 && s.q3 <= s.max);
            assert!(s.n > 0);
        }
    }

    #[test]
    fn combo_counts_sum_to_total() {
        let sp = split();
        let counts = combo_counts(&sp.train.samples);
        let total: usize = counts.values().sum();
        assert_eq!(total, sp.train.len());
        assert_eq!(counts.len(), 4);
    }

    #[test]
    fn report_raw_token_stats_matches_sequential_counts() {
        use crate::pipeline::run_pipeline;
        use pce_tokenizer::{BpeTrainer, Tokenizer};
        let corpus = build_corpus(&CorpusConfig {
            seed: 5,
            cuda_programs: 20,
            omp_programs: 12,
        })
        .expect("corpus builds");
        let cfg = PipelineConfig {
            per_combo_cap: 4,
            tokenizer_vocab: 400,
            tokenizer_stride: 15,
            ..Default::default()
        };
        let (_, _, report) = run_pipeline(&corpus, &cfg);
        let stats = report.raw_token_stats.expect("non-empty corpus");
        assert_eq!(stats.n, corpus.len());
        // Recompute with a sequentially-driven tokenizer: must agree.
        let docs: Vec<&str> = corpus
            .iter()
            .step_by(cfg.tokenizer_stride)
            .map(|p| p.source.as_str())
            .collect();
        let tok = Tokenizer::new(BpeTrainer::new(cfg.tokenizer_vocab).train(docs));
        let counts: Vec<usize> = corpus.iter().map(|p| tok.count(&p.source)).collect();
        assert_eq!(stats, pce_tokenizer::token_quartiles(&counts));
    }
}
