//! The evaluation sample: one profiled, labeled, token-counted program.

use serde::{Deserialize, Serialize};

use pce_kernels::Language;
use pce_roofline::{Boundedness, OpCounts, SpecClass};

/// One dataset sample — everything RQ2/RQ3 prompts need, plus the
/// ground-truth label and provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Program id from the corpus.
    pub id: String,
    /// Kernel family.
    pub family: String,
    /// Source language.
    pub language: Language,
    /// Name of the profiled (first) kernel.
    pub kernel_name: String,
    /// Full source text.
    pub source: String,
    /// Launch geometry string for the prompt.
    pub geometry: String,
    /// CLI arguments.
    pub args: Vec<String>,
    /// BPE token count of `source`.
    pub token_count: usize,
    /// Name of the hardware spec this sample was profiled and labeled on
    /// (the language-routed member of the pipeline's spec pair).
    pub spec_name: String,
    /// Machine class of that spec: `Gpu` for CUDA samples, `Cpu` for OMP.
    pub spec_class: SpecClass,
    /// Profiled counters (ground truth inputs).
    pub counts: OpCounts,
    /// Profiled runtime in seconds.
    pub runtime_s: f64,
    /// Ground-truth roofline class.
    pub label: Boundedness,
}

impl Sample {
    /// The (language, label) balance cell this sample belongs to.
    pub fn combo(&self) -> (Language, Boundedness) {
        (self.language, self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(lang: Language, label: Boundedness) -> Sample {
        Sample {
            id: "x".into(),
            family: "saxpy".into(),
            language: lang,
            kernel_name: "saxpy".into(),
            source: "__global__".into(),
            geometry: "(1,1,1) and (1,1,1)".into(),
            args: vec![],
            token_count: 10,
            spec_name: "NVIDIA GeForce RTX 3080".into(),
            spec_class: lang.spec_class(),
            counts: OpCounts::default(),
            runtime_s: 1e-6,
            label,
        }
    }

    #[test]
    fn combo_pairs_language_and_label() {
        let s = sample(Language::Cuda, Boundedness::Compute);
        assert_eq!(s.combo(), (Language::Cuda, Boundedness::Compute));
    }

    #[test]
    fn serde_round_trip() {
        let s = sample(Language::Omp, Boundedness::Bandwidth);
        let json = serde_json::to_string(&s).unwrap();
        let back: Sample = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
