//! The end-to-end dataset pipeline.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use pce_fault::PceError;
use pce_gpu_sim::{Profiler, SimCaches};
use pce_kernels::{Language, Program};
use pce_memo::{DedupStats, Fnv, StreamDedup};
use pce_roofline::{classify_joint, Boundedness, SpecPair};
use pce_tokenizer::{token_quartiles, BpeTrainer, TokenStats, Tokenizer};

use crate::sample::Sample;

/// Pipeline configuration (§2.1–2.2 defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Profiling hardware, one spec per machine class: CUDA programs are
    /// profiled and labeled against `specs.gpu` (the paper's RTX 3080),
    /// OMP programs against `specs.cpu`.
    pub specs: SpecPair,
    /// Token-count cutoff (the paper's 8e3).
    pub max_tokens: usize,
    /// Per-(language × class) cap after balancing (the paper's 85).
    pub per_combo_cap: usize,
    /// Training fraction of the final dataset (the paper's 0.8).
    pub train_fraction: f64,
    /// BPE vocabulary size for token counting.
    pub tokenizer_vocab: usize,
    /// Train the tokenizer on every k-th corpus source.
    pub tokenizer_stride: usize,
    /// Shuffle seed for balancing and splitting.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            specs: SpecPair::paper_default(),
            max_tokens: 8_000,
            per_combo_cap: 85,
            train_fraction: 0.8,
            tokenizer_vocab: 1_200,
            tokenizer_stride: 7,
            seed: 0x0da7a5e7,
        }
    }
}

/// A labeled dataset.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// The samples.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialize to pretty JSON.
    ///
    /// Fails with [`PceError::Io`] if the serializer reports an error —
    /// in practice only under resource exhaustion, but the signature is
    /// honest about it rather than panicking inside a library crate.
    pub fn to_json(&self) -> Result<String, PceError> {
        serde_json::to_string_pretty(self).map_err(|e| PceError::io(e.to_string()))
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, PceError> {
        serde_json::from_str(json).map_err(|e| PceError::parse(e.to_string()))
    }
}

/// The 80/20 fine-tuning split.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Split {
    /// Training set (~272 samples at paper scale).
    pub train: Dataset,
    /// Validation set (~68 samples).
    pub validation: Dataset,
}

/// The hardware-independent half of the pipeline: a trained tokenizer and
/// per-program token counts for one corpus.
///
/// Build it once with [`tokenize_corpus`] and feed it to
/// [`run_pipeline_with`] for every hardware spec — only profiling and
/// labeling depend on the hardware, so a cross-hardware sweep never
/// retrains the tokenizer or recounts tokens.
#[derive(Debug, Clone)]
pub struct TokenizedCorpus {
    /// The trained tokenizer (for downstream consumers such as prompts).
    pub tokenizer: Tokenizer,
    /// BPE token count per corpus program, in corpus order.
    pub token_counts: Vec<usize>,
    /// Token-count distribution over the raw corpus (`None` only for an
    /// empty corpus).
    pub raw_token_stats: Option<TokenStats>,
}

/// Train the tokenizer on the configured corpus subsample and token-count
/// every source. Depends only on `cfg.tokenizer_vocab` and
/// `cfg.tokenizer_stride`, never on the hardware.
pub fn tokenize_corpus(corpus: &[Program], cfg: &PipelineConfig) -> TokenizedCorpus {
    let training_docs: Vec<&str> = corpus
        .iter()
        .step_by(cfg.tokenizer_stride.max(1))
        .map(|p| p.source.as_str())
        .collect();
    let vocab = BpeTrainer::new(cfg.tokenizer_vocab).train(training_docs);
    let tokenizer = Tokenizer::new(vocab);

    let sources: Vec<&str> = corpus.iter().map(|p| p.source.as_str()).collect();
    let token_counts = tokenizer.count_batch(&sources);
    let raw_token_stats = (!token_counts.is_empty()).then(|| token_quartiles(&token_counts));
    TokenizedCorpus {
        tokenizer,
        token_counts,
        raw_token_stats,
    }
}

/// Stage-by-stage counts, mirroring the paper's §2.2 funnel numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Programs profiled, per language.
    pub built: BTreeMap<String, usize>,
    /// Token-count distribution over the *raw* corpus, before the cutoff
    /// prune (`None` only for an empty corpus). Reuses the pipeline's own
    /// batch token counts, so consumers (e.g. the `dataset_stats` bin)
    /// don't retrain a tokenizer to see the pre-funnel view.
    pub raw_token_stats: Option<TokenStats>,
    /// Programs surviving the token cutoff, per language.
    pub after_prune: BTreeMap<String, usize>,
    /// Ground-truth label per input corpus program (corpus order), taken
    /// *before* pruning and balancing — the cross-hardware suite's
    /// label-flip analysis compares these vectors across specs.
    pub corpus_labels: Vec<Boundedness>,
    /// Counts per (language, class) cell before balancing.
    pub combo_before_balance: BTreeMap<String, usize>,
    /// The balanced per-cell size.
    pub per_combo: usize,
    /// Final dataset size (paper: 340).
    pub final_size: usize,
    /// Train size (paper: 272).
    pub train_size: usize,
    /// Validation size (paper: 68).
    pub validation_size: usize,
    /// Profile-level dedup over the input corpus: how many programs map
    /// to an (IR, launch, routed-hardware) tuple already seen earlier in
    /// corpus order. Variant-expanded corpora dedup heavily here — a
    /// duplicate's profile is a memo hit, not a recompute. `hit_rate()`
    /// is the headline number. Defaults for reports serialized before
    /// this field existed.
    #[serde(default)]
    pub dedup: DedupStats,
    /// Per-rule hazard diagnostic counts over the corpus's *distinct*
    /// sources (lint rule id → firings), from the
    /// `pce_static_analysis::diagnostics` audit of every generated
    /// variant. Only rules that fired appear, so a hazard-clean corpus
    /// reports an empty map — and reports serialized before this field
    /// existed deserialize to the same. Deduped by source text, so
    /// variant expansion cannot inflate the counts.
    #[serde(default)]
    pub hazards: BTreeMap<String, u64>,
}

/// Run the full pipeline over a corpus.
///
/// Returns the balanced dataset, its train/validation split, and the
/// funnel report. Tokenizes internally; cross-hardware callers should
/// [`tokenize_corpus`] once and call [`run_pipeline_with`] per spec.
pub fn run_pipeline(corpus: &[Program], cfg: &PipelineConfig) -> (Dataset, Split, PipelineReport) {
    let tokenized = tokenize_corpus(corpus, cfg);
    run_pipeline_with(corpus, &tokenized, cfg)
}

/// Run the hardware-dependent half of the pipeline — profile, label,
/// prune, balance, split — against a pre-tokenized corpus.
///
/// Produces bit-identical output to [`run_pipeline`] with the same
/// `corpus` and `cfg`.
///
/// # Panics
/// Panics when `tokenized` was built from a different corpus (length
/// mismatch), or when `cfg.specs` holds a spec in the wrong class slot.
pub fn run_pipeline_with(
    corpus: &[Program],
    tokenized: &TokenizedCorpus,
    cfg: &PipelineConfig,
) -> (Dataset, Split, PipelineReport) {
    run_pipeline_impl(
        corpus,
        tokenized,
        cfg,
        RoutedProfilers {
            gpu: Profiler::new(cfg.specs.gpu.clone()),
            cpu: Profiler::new(cfg.specs.cpu.clone()),
        },
    )
}

/// [`run_pipeline_with`] against a shared profiler cache bundle.
///
/// Body summaries are hardware-independent, so a cross-hardware suite
/// that runs this once per spec pair folds each kernel exactly once;
/// profiles themselves are memoized per (kernel, launch, hardware) — the
/// hardware key is the *routed* spec, so a CUDA profile taken on the GPU
/// spec can never be served to an OMP lookup or vice versa. Bit-identical
/// to the uncached pipeline.
pub fn run_pipeline_cached(
    corpus: &[Program],
    tokenized: &TokenizedCorpus,
    cfg: &PipelineConfig,
    caches: &SimCaches,
) -> (Dataset, Split, PipelineReport) {
    run_pipeline_impl(
        corpus,
        tokenized,
        cfg,
        RoutedProfilers {
            gpu: Profiler::new(cfg.specs.gpu.clone()).with_caches(caches.clone()),
            cpu: Profiler::new(cfg.specs.cpu.clone()).with_caches(caches.clone()),
        },
    )
}

/// One profiler per machine class, selected by each program's language.
pub(crate) struct RoutedProfilers {
    pub(crate) gpu: Profiler,
    pub(crate) cpu: Profiler,
}

impl RoutedProfilers {
    pub(crate) fn for_language(&self, language: Language) -> &Profiler {
        match language.spec_class() {
            pce_roofline::SpecClass::Gpu => &self.gpu,
            pce_roofline::SpecClass::Cpu => &self.cpu,
        }
    }
}

/// The lightweight per-program record the selection stages operate on.
///
/// Pruning, balancing, and splitting only need these fields — never the
/// source text or the profile — which is what lets the sharded stream
/// (`crate::stream`) run selection over the whole corpus while holding
/// full [`Sample`]s for at most one shard at a time.
#[derive(Debug, Clone)]
pub(crate) struct SampleMeta {
    /// Position in the input corpus (stream index).
    pub(crate) index: usize,
    /// Program id (the balance/split sort key).
    pub(crate) id: String,
    /// Source language.
    pub(crate) language: Language,
    /// Ground-truth label against the routed spec.
    pub(crate) label: Boundedness,
    /// BPE token count of the source.
    pub(crate) token_count: usize,
}

/// Outcome of the prune → balance → split selection, as metadata: which
/// corpus indices land in each split, in final (id-sorted) order, plus
/// the funnel counts the report needs.
pub(crate) struct Selection {
    pub(crate) built: BTreeMap<String, usize>,
    pub(crate) after_prune: BTreeMap<String, usize>,
    pub(crate) combo_before_balance: BTreeMap<String, usize>,
    pub(crate) per_combo: usize,
    pub(crate) train: Vec<SampleMeta>,
    pub(crate) validation: Vec<SampleMeta>,
}

/// Prune by token count, balance (language × class) cells, and split —
/// entirely on metadata, in corpus order.
///
/// Both the materialized and the sharded pipeline call this exact
/// function, which is what makes their outputs byte-identical: the
/// seeded shuffle permutation depends only on each cell's length and the
/// RNG stream, so shuffling metadata reproduces precisely the
/// permutation the historical code applied to full samples.
///
/// # Panics
/// Panics when two programs share an id — that means corpus generation
/// broke its uniqueness invariant upstream.
pub(crate) fn select_and_balance(mut metas: Vec<SampleMeta>, cfg: &PipelineConfig) -> Selection {
    let count_lang = |metas: &[SampleMeta]| {
        let mut m = BTreeMap::new();
        for s in metas {
            *m.entry(s.language.label().to_string()).or_insert(0) += 1;
        }
        m
    };
    let built = count_lang(&metas);

    // --- Token-count pruning --------------------------------------------
    metas.retain(|m| m.token_count <= cfg.max_tokens);
    let after_prune = count_lang(&metas);

    // --- First kernel per program ----------------------------------------
    // Corpus programs carry exactly one profiled kernel (the first in the
    // object dump); a duplicate id would mean the invariant broke upstream.
    {
        let mut ids: Vec<&str> = metas.iter().map(|m| m.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate program ids in corpus");
    }

    // --- Balance (language × class) --------------------------------------
    let mut by_combo: BTreeMap<(Language, Boundedness), Vec<SampleMeta>> = BTreeMap::new();
    for m in metas {
        by_combo.entry((m.language, m.label)).or_default().push(m);
    }
    let combo_before_balance = by_combo
        .iter()
        .map(|((lang, label), v)| (format!("{}/{}", lang.label(), label.short()), v.len()))
        .collect();
    let min_cell = by_combo.values().map(|v| v.len()).min().unwrap_or(0);
    let per_combo = min_cell.min(cfg.per_combo_cap);

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut train = Vec::with_capacity(per_combo * 4);
    let mut validation = Vec::with_capacity(per_combo * 4);
    for (_, mut cell) in by_combo {
        cell.shuffle(&mut rng);
        cell.truncate(per_combo);
        // Split inside each cell so both splits stay balanced (§2.2: 68
        // train + 17 validation per cell).
        let train_n = (per_combo as f64 * cfg.train_fraction).round() as usize;
        for (i, m) in cell.into_iter().enumerate() {
            if i < train_n {
                train.push(m);
            } else {
                validation.push(m);
            }
        }
    }
    // Deterministic final ordering.
    train.sort_by(|a, b| a.id.cmp(&b.id));
    validation.sort_by(|a, b| a.id.cmp(&b.id));
    Selection {
        built,
        after_prune,
        combo_before_balance,
        per_combo,
        train,
        validation,
    }
}

/// Merge two id-sorted sample slices into the balanced union: one bulk
/// clone pass, no re-sort.
pub(crate) fn merge_sorted(train: &[Sample], validation: &[Sample]) -> Vec<Sample> {
    let mut balanced = Vec::with_capacity(train.len() + validation.len());
    let (mut t, mut v) = (train.iter().peekable(), validation.iter().peekable());
    loop {
        let take_train = match (t.peek(), v.peek()) {
            (Some(a), Some(b)) => a.id <= b.id,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        let next = if take_train { t.next() } else { v.next() };
        if let Some(s) = next {
            balanced.push(s.clone());
        }
    }
    balanced
}

/// Fingerprint of the profiling work one program induces: the (kernel
/// IR, launch, routed hardware) tuple, folded with the same word-granular
/// FNV the profile memo keys on. Two programs with equal fingerprints
/// profile identically — the second one's profile is a memo hit.
///
/// Computed with a standalone [`Fnv`] accumulator, never through the
/// [`SimCaches`] tables, so dedup accounting adds zero hit/miss traffic
/// to the profile memo counters.
/// Hazard counts of one source, aligned with
/// [`pce_static_analysis::RuleId::all`] order. A pure function of the
/// source text, so shards can compute it in parallel and the sequential
/// merge stays byte-identical to the materialized path.
pub(crate) fn hazard_counts(source: &str) -> Vec<u64> {
    let diags = pce_static_analysis::diagnose(source);
    pce_static_analysis::RuleId::all()
        .iter()
        .map(|r| diags.iter().filter(|d| d.rule == *r).count() as u64)
        .collect()
}

/// Corpus-order hazard audit, deduped by source text: each *distinct*
/// source contributes its per-rule diagnostic counts exactly once, so a
/// variant-expanded corpus (many ids, few distinct sources) reports the
/// hazards of its kernels, not of its multiplicity.
pub(crate) struct HazardAudit {
    seen: std::collections::HashSet<u64>,
    counts: BTreeMap<String, u64>,
}

impl HazardAudit {
    pub(crate) fn new() -> HazardAudit {
        HazardAudit {
            seen: std::collections::HashSet::new(),
            counts: BTreeMap::new(),
        }
    }

    /// The dedup key of one source text.
    pub(crate) fn source_fp(source: &str) -> u64 {
        let mut h = Fnv::new();
        h.str(source);
        h.finish()
    }

    /// Fold one program's precomputed [`hazard_counts`] under its source
    /// fingerprint; repeat sources are no-ops.
    pub(crate) fn observe_counts(&mut self, src_fp: u64, counts: &[u64]) {
        if !self.seen.insert(src_fp) {
            return;
        }
        for (rule, n) in pce_static_analysis::RuleId::all().iter().zip(counts) {
            if *n > 0 {
                *self.counts.entry(rule.id().to_string()).or_insert(0) += n;
            }
        }
    }

    /// Diagnose-and-fold one source in corpus order; repeat sources are
    /// not re-diagnosed.
    pub(crate) fn observe_source(&mut self, source: &str) {
        let fp = HazardAudit::source_fp(source);
        if self.seen.contains(&fp) {
            return;
        }
        let counts = hazard_counts(source);
        self.observe_counts(fp, &counts);
    }

    /// The per-rule totals (only rules that fired).
    pub(crate) fn into_counts(self) -> BTreeMap<String, u64> {
        self.counts
    }
}

pub(crate) fn profile_fingerprint(p: &Program, hw_name: &str) -> u64 {
    let mut h = Fnv::new();
    h.u64(p.ir.fingerprint());
    h.map_u64(&p.launch.params);
    for d in [p.launch.grid, p.launch.block] {
        h.u64(d.x as u64);
        h.u64(d.y as u64);
        h.u64(d.z as u64);
    }
    h.u64(p.launch.regs_per_thread as u64);
    h.u64(p.launch.shared_bytes_per_block as u64);
    h.str(hw_name);
    h.finish()
}

fn run_pipeline_impl(
    corpus: &[Program],
    tokenized: &TokenizedCorpus,
    cfg: &PipelineConfig,
    profilers: RoutedProfilers,
) -> (Dataset, Split, PipelineReport) {
    assert_eq!(
        tokenized.token_counts.len(),
        corpus.len(),
        "tokenized corpus does not match the program corpus"
    );
    assert!(
        cfg.specs.validate().is_empty(),
        "invalid spec pair: {:?}",
        cfg.specs.validate()
    );
    let token_counts = &tokenized.token_counts;
    let raw_token_stats = tokenized.raw_token_stats;

    // --- Profile + label (parallel) --------------------------------------
    let samples: Vec<Sample> = corpus
        .par_iter()
        .enumerate()
        .map(|(i, p)| {
            let profiler = profilers.for_language(p.language);
            let hw = profiler.hardware();
            let profile = profiler.profile_shared(&p.ir, &p.launch);
            let label = classify_joint(hw, &profile.counts).label;
            Sample {
                id: p.id.clone(),
                family: p.family.clone(),
                language: p.language,
                kernel_name: p.kernel_name.clone(),
                source: p.source.clone(),
                geometry: p.launch.geometry_string(),
                args: p.args.clone(),
                token_count: token_counts[i],
                spec_name: hw.name.clone(),
                spec_class: hw.class,
                counts: profile.counts,
                runtime_s: profile.runtime_s,
                label,
            }
        })
        .collect();
    let corpus_labels: Vec<Boundedness> = samples.iter().map(|s| s.label).collect();

    // --- Profile-dedup accounting (sequential, corpus order) -------------
    // Standalone Fnv fold: adds no traffic to the SimCaches counters and
    // is independent of thread count and sharding.
    let mut dedup = StreamDedup::new();
    let mut hazards = HazardAudit::new();
    for p in corpus {
        let hw = profilers.for_language(p.language).hardware();
        dedup.observe(profile_fingerprint(p, &hw.name));
        hazards.observe_source(&p.source);
    }

    // --- Prune → balance → split (shared with the sharded stream) --------
    let metas = samples
        .iter()
        .enumerate()
        .map(|(i, s)| SampleMeta {
            index: i,
            id: s.id.clone(),
            language: s.language,
            label: s.label,
            token_count: s.token_count,
        })
        .collect();
    let selection = select_and_balance(metas, cfg);
    let materialize = |metas: &[SampleMeta]| -> Vec<Sample> {
        metas.iter().map(|m| samples[m.index].clone()).collect()
    };
    let train = materialize(&selection.train);
    let validation = materialize(&selection.validation);
    let balanced = merge_sorted(&train, &validation);

    let report = PipelineReport {
        built: selection.built,
        raw_token_stats,
        after_prune: selection.after_prune,
        corpus_labels,
        combo_before_balance: selection.combo_before_balance,
        per_combo: selection.per_combo,
        final_size: balanced.len(),
        train_size: train.len(),
        validation_size: validation.len(),
        dedup: dedup.stats(),
        hazards: hazards.into_counts(),
    };
    (
        Dataset { samples: balanced },
        Split {
            train: Dataset { samples: train },
            validation: Dataset {
                samples: validation,
            },
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_kernels::{build_corpus, CorpusConfig};

    fn small_corpus() -> Vec<Program> {
        build_corpus(&CorpusConfig {
            seed: 3,
            cuda_programs: 90,
            omp_programs: 72,
        })
        .expect("corpus builds")
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            per_combo_cap: 10,
            tokenizer_vocab: 500,
            tokenizer_stride: 11,
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_produces_balanced_cells() {
        let (dataset, _, report) = run_pipeline(&small_corpus(), &cfg());
        let mut cells: BTreeMap<(Language, Boundedness), usize> = BTreeMap::new();
        for s in &dataset.samples {
            *cells.entry(s.combo()).or_insert(0) += 1;
        }
        assert_eq!(cells.len(), 4, "all four cells populated: {cells:?}");
        let sizes: Vec<_> = cells.values().copied().collect();
        assert!(
            sizes.iter().all(|&n| n == sizes[0]),
            "unbalanced: {cells:?}"
        );
        assert_eq!(report.final_size, sizes[0] * 4);
    }

    #[test]
    fn split_sizes_follow_the_train_fraction() {
        let (dataset, split, report) = run_pipeline(&small_corpus(), &cfg());
        assert_eq!(split.train.len() + split.validation.len(), dataset.len());
        assert_eq!(report.train_size, split.train.len());
        // 80% of each cell, rounded.
        let expected_train = (report.per_combo as f64 * 0.8).round() as usize * 4;
        assert_eq!(split.train.len(), expected_train);
    }

    #[test]
    fn split_cells_stay_balanced() {
        let (_, split, _) = run_pipeline(&small_corpus(), &cfg());
        for ds in [&split.train, &split.validation] {
            let mut cells: BTreeMap<(Language, Boundedness), usize> = BTreeMap::new();
            for s in &ds.samples {
                *cells.entry(s.combo()).or_insert(0) += 1;
            }
            let sizes: Vec<_> = cells.values().copied().collect();
            assert!(sizes.iter().all(|&n| n == sizes[0]), "{cells:?}");
        }
    }

    #[test]
    fn pruning_respects_the_token_cutoff() {
        let mut c = cfg();
        c.max_tokens = 2_000;
        let (dataset, _, report) = run_pipeline(&small_corpus(), &c);
        assert!(dataset.samples.iter().all(|s| s.token_count <= 2_000));
        let built: usize = report.built.values().sum();
        let kept: usize = report.after_prune.values().sum();
        assert!(kept < built, "a 2k cutoff must drop some programs");
    }

    #[test]
    fn shared_tokenization_is_bit_identical_to_inline() {
        let corpus = small_corpus();
        let c = cfg();
        let tokenized = tokenize_corpus(&corpus, &c);
        let (a, sa, ra) = run_pipeline(&corpus, &c);
        let (b, sb, rb) = run_pipeline_with(&corpus, &tokenized, &c);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
        assert_eq!(ra, rb);
    }

    #[test]
    fn cached_pipeline_is_bit_identical_and_shares_summaries_across_specs() {
        let corpus = small_corpus();
        let c = cfg();
        let tokenized = tokenize_corpus(&corpus, &c);
        let caches = SimCaches::new();
        let mut other = c.clone();
        other.specs.gpu = pce_roofline::HardwareSpec::a100();
        for cfg in [&c, &other] {
            let cold = run_pipeline_with(&corpus, &tokenized, cfg);
            let warm = run_pipeline_cached(&corpus, &tokenized, cfg, &caches);
            assert_eq!(cold, warm, "{}", cfg.specs.label());
        }
        // The corpus was summarized exactly once per kernel. The second
        // config only moves the GPU spec, so its CUDA half re-resolves
        // via the summary cache while the OMP half (same CPU spec) is
        // served straight from the whole-profile memo — summaries are
        // never re-consulted for it.
        let cuda_count = corpus
            .iter()
            .filter(|p| p.language == Language::Cuda)
            .count();
        let sc = caches.summaries().counters();
        assert_eq!(sc.misses as usize, corpus.len());
        assert_eq!(sc.hits as usize, cuda_count);
        let pc = caches.profiles().counters();
        assert_eq!(pc.hits as usize, corpus.len() - cuda_count);
        // Re-running a spec hits the whole-profile memo.
        let before = caches.profiles().counters().hits;
        let _ = run_pipeline_cached(&corpus, &tokenized, &c, &caches);
        assert_eq!(
            caches.profiles().counters().hits - before,
            corpus.len() as u64
        );
    }

    #[test]
    fn report_labels_cover_the_whole_corpus_in_order() {
        let corpus = small_corpus();
        let c = cfg();
        let (_, _, report) = run_pipeline(&corpus, &c);
        assert_eq!(report.corpus_labels.len(), corpus.len());
        // Spot-check alignment: relabeling program i (against its
        // language-routed spec) reproduces entry i.
        for (i, p) in corpus.iter().enumerate().step_by(17) {
            let hw = c.specs.for_class(p.language.spec_class());
            let profile = Profiler::new(hw.clone()).profile(&p.ir, &p.launch);
            assert_eq!(
                classify_joint(hw, &profile.counts).label,
                report.corpus_labels[i],
                "{}",
                p.id
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_tokenized_corpus_is_rejected() {
        let corpus = small_corpus();
        let c = cfg();
        let mut tokenized = tokenize_corpus(&corpus, &c);
        tokenized.token_counts.pop();
        run_pipeline_with(&corpus, &tokenized, &c);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let corpus = small_corpus();
        let (a, sa, _) = run_pipeline(&corpus, &cfg());
        let (b, sb, _) = run_pipeline(&corpus, &cfg());
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn labels_match_reprofiling() {
        let c = cfg();
        let (dataset, _, _) = run_pipeline(&small_corpus(), &c);
        for s in dataset.samples.iter().take(10) {
            let hw = c.specs.for_class(s.language.spec_class());
            assert_eq!(classify_joint(hw, &s.counts).label, s.label, "{}", s.id);
            assert_eq!(s.spec_name, hw.name, "{}", s.id);
            assert_eq!(s.spec_class, hw.class, "{}", s.id);
        }
    }

    #[test]
    fn json_round_trip() {
        let (dataset, _, _) = run_pipeline(&small_corpus(), &cfg());
        let json = dataset.to_json().expect("dataset serializes");
        let back = Dataset::from_json(&json).unwrap();
        // Float fields may round-trip within 1 ULP (the JSON parser is not
        // shortest-repr exact); everything else must be identical.
        assert_eq!(dataset.len(), back.len());
        for (a, b) in dataset.samples.iter().zip(&back.samples) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.source, b.source);
            assert_eq!(a.counts, b.counts);
            assert_eq!(a.label, b.label);
            assert_eq!(a.token_count, b.token_count);
            let rel = (a.runtime_s - b.runtime_s).abs() / a.runtime_s;
            assert!(
                rel < 1e-12,
                "runtime drifted: {} vs {}",
                a.runtime_s,
                b.runtime_s
            );
        }
        assert!(Dataset::from_json("not json").is_err());
    }

    #[test]
    fn train_and_validation_are_disjoint() {
        let (_, split, _) = run_pipeline(&small_corpus(), &cfg());
        let train_ids: std::collections::BTreeSet<_> =
            split.train.samples.iter().map(|s| &s.id).collect();
        for s in &split.validation.samples {
            assert!(
                !train_ids.contains(&s.id),
                "{} leaked into both splits",
                s.id
            );
        }
    }
}
