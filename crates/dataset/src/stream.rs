//! The sharded, bounded-memory streaming pipeline.
//!
//! [`run_pipeline_streamed`] runs the same corpus → tokenize → profile →
//! label → balance funnel as [`run_pipeline`](crate::run_pipeline), but
//! never materializes the corpus: programs are regenerated per shard from
//! a [`CorpusSpec`] (generation is random-access — any index rebuilds
//! from the seed alone), consumed, and dropped. Peak memory is
//! `O(shard_size × rayon threads)` programs plus the final dataset,
//! instead of `O(corpus)` samples.
//!
//! Stages:
//!
//! 1. **tokenize-train** — stream every `tokenizer_stride`-th source and
//!    train the BPE tokenizer (the only stage whose footprint scales with
//!    `corpus / stride`, same subsample as the materialized path).
//! 2. **shard-profile** — rayon over shards: regenerate the shard's
//!    programs, batch-count tokens, profile + label each against the
//!    language-routed spec through the shared [`SimCaches`] memos, and
//!    keep only lightweight [`SampleMeta`]s plus profile fingerprints.
//!    Variant expansion makes many programs map to an identical
//!    (IR, launch, hardware) tuple — those profile as memo hits, and the
//!    fingerprints are folded (sequentially, in corpus order, so the
//!    numbers are independent of sharding and thread count) into the
//!    report's dedup statistics.
//! 3. **select-balance** — the exact `select_and_balance` the
//!    materialized path uses, on metadata only.
//! 4. **materialize** — regenerate just the selected programs and build
//!    full [`Sample`]s (their profiles are now warm memo hits).
//!
//! Output is byte-identical to running the materialized pipeline over
//! `spec.stream().collect()`, for every shard size and
//! `RAYON_NUM_THREADS` — pinned by the root `pipeline_stream` test.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

use pce_fault::PceError;
use pce_gpu_sim::{Profiler, SimCaches};
use pce_kernels::CorpusSpec;
use pce_memo::StreamDedup;
use pce_roofline::classify_joint;
use pce_tokenizer::{token_quartiles, BpeTrainer, Tokenizer};

use crate::pipeline::{
    hazard_counts, merge_sorted, profile_fingerprint, select_and_balance, Dataset, HazardAudit,
    PipelineConfig, PipelineReport, RoutedProfilers, SampleMeta, Split,
};
use crate::sample::Sample;

/// Wall-clock of one streamed-pipeline stage, for the bench baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (`tokenize-train`, `shard-profile`, `select-balance`,
    /// `materialize`).
    pub stage: String,
    /// Elapsed seconds.
    pub seconds: f64,
}

impl StageTiming {
    fn new(stage: &str, elapsed: std::time::Duration) -> StageTiming {
        StageTiming {
            stage: stage.to_string(),
            seconds: elapsed.as_secs_f64(),
        }
    }
}

/// Run the full pipeline over a (possibly variant-expanded) corpus spec
/// as a sharded stream with bounded memory.
///
/// Byte-identical to materializing `spec.stream()` and running
/// [`run_pipeline_cached`](crate::run_pipeline_cached), for any
/// `shard_size ≥ 1` and any rayon thread count. The shared `caches` carry
/// profile memos across shards (and across calls — re-streaming the same
/// spec profiles zero new kernels).
pub fn run_pipeline_streamed(
    spec: &CorpusSpec,
    cfg: &PipelineConfig,
    caches: &SimCaches,
    shard_size: usize,
) -> Result<(Dataset, Split, PipelineReport), PceError> {
    let (dataset, split, report, _) = run_pipeline_streamed_timed(spec, cfg, caches, shard_size)?;
    Ok((dataset, split, report))
}

/// [`run_pipeline_streamed`], additionally reporting per-stage wall-clock
/// timings (consumed by the `pipeline` bench bin's `BENCH_pipeline.json`
/// baseline).
pub fn run_pipeline_streamed_timed(
    spec: &CorpusSpec,
    cfg: &PipelineConfig,
    caches: &SimCaches,
    shard_size: usize,
) -> Result<(Dataset, Split, PipelineReport, Vec<StageTiming>), PceError> {
    let spec_errors = cfg.specs.validate();
    if !spec_errors.is_empty() {
        return Err(PceError::spec(format!(
            "invalid spec pair: {spec_errors:?}"
        )));
    }
    let shard_size = shard_size.max(1);
    let total = spec.len();
    let mut timings = Vec::with_capacity(4);

    // --- Stage 1: tokenizer training (stride subsample, streamed) --------
    let t = Instant::now();
    let stride = cfg.tokenizer_stride.max(1);
    let mut training_docs = Vec::with_capacity(total.div_ceil(stride));
    let mut k = 0;
    while k < total {
        training_docs.push(spec.program(k)?.source);
        k += stride;
    }
    let vocab =
        BpeTrainer::new(cfg.tokenizer_vocab).train(training_docs.iter().map(|s| s.as_str()));
    let tokenizer = Tokenizer::new(vocab);
    drop(training_docs);
    timings.push(StageTiming::new("tokenize-train", t.elapsed()));

    // --- Stage 2: per-shard profile + label + token count -----------------
    let t = Instant::now();
    let profilers = RoutedProfilers {
        gpu: Profiler::new(cfg.specs.gpu.clone()).with_caches(caches.clone()),
        cpu: Profiler::new(cfg.specs.cpu.clone()).with_caches(caches.clone()),
    };
    let bounds: Vec<(usize, usize)> = (0..total)
        .step_by(shard_size)
        .map(|s| (s, (s + shard_size).min(total)))
        .collect();
    type ShardRow = (SampleMeta, u64, u64, Vec<u64>);
    let shards: Vec<Result<Vec<ShardRow>, PceError>> = bounds
        .par_iter()
        .map(|&(start, end)| {
            // The whole shard lives here and is dropped on return: only
            // the metas survive.
            let programs = spec
                .stream_range(start, end)
                .collect::<Result<Vec<_>, PceError>>()?;
            let sources: Vec<&str> = programs.iter().map(|p| p.source.as_str()).collect();
            let counts = tokenizer.count_batch(&sources);
            let mut out = Vec::with_capacity(programs.len());
            for (off, p) in programs.iter().enumerate() {
                let profiler = profilers.for_language(p.language);
                let hw = profiler.hardware();
                let profile = profiler.profile_shared(&p.ir, &p.launch);
                let label = classify_joint(hw, &profile.counts).label;
                out.push((
                    SampleMeta {
                        index: start + off,
                        id: p.id.clone(),
                        language: p.language,
                        label,
                        token_count: counts[off],
                    },
                    profile_fingerprint(p, &hw.name),
                    // Hazard audit inputs: a pure function of the source,
                    // so computing them here (parallel, pre-drop) and
                    // folding them sequentially below reproduces the
                    // materialized path's corpus-order audit exactly.
                    HazardAudit::source_fp(&p.source),
                    hazard_counts(&p.source),
                ));
            }
            Ok(out)
        })
        .collect();
    // Deterministic merge: shard order is corpus order, and the dedup fold
    // runs sequentially over it, so the stats are independent of sharding
    // and thread count.
    let mut metas = Vec::with_capacity(total);
    let mut dedup = StreamDedup::new();
    let mut hazards = HazardAudit::new();
    let mut corpus_labels = Vec::with_capacity(total);
    let mut token_counts = Vec::with_capacity(total);
    for shard in shards {
        for (meta, fp, src_fp, diag_counts) in shard? {
            dedup.observe(fp);
            hazards.observe_counts(src_fp, &diag_counts);
            corpus_labels.push(meta.label);
            token_counts.push(meta.token_count);
            metas.push(meta);
        }
    }
    let raw_token_stats = (!token_counts.is_empty()).then(|| token_quartiles(&token_counts));
    drop(token_counts);
    timings.push(StageTiming::new("shard-profile", t.elapsed()));

    // --- Stage 3: prune → balance → split (shared with materialized) -----
    let t = Instant::now();
    let selection = select_and_balance(metas, cfg);
    timings.push(StageTiming::new("select-balance", t.elapsed()));

    // --- Stage 4: materialize only the selected samples -------------------
    let t = Instant::now();
    let materialize = |chosen: &[SampleMeta]| -> Result<Vec<Sample>, PceError> {
        let rows: Vec<Result<Sample, PceError>> = chosen
            .par_iter()
            .map(|m| {
                let p = spec.program(m.index)?;
                let profiler = profilers.for_language(p.language);
                let hw = profiler.hardware();
                let profile = profiler.profile_shared(&p.ir, &p.launch);
                Ok(Sample {
                    id: p.id,
                    family: p.family,
                    language: p.language,
                    kernel_name: p.kernel_name,
                    geometry: p.launch.geometry_string(),
                    source: p.source,
                    args: p.args,
                    token_count: m.token_count,
                    spec_name: hw.name.clone(),
                    spec_class: hw.class,
                    counts: profile.counts,
                    runtime_s: profile.runtime_s,
                    label: m.label,
                })
            })
            .collect();
        rows.into_iter().collect()
    };
    let train = materialize(&selection.train)?;
    let validation = materialize(&selection.validation)?;
    let balanced = merge_sorted(&train, &validation);
    timings.push(StageTiming::new("materialize", t.elapsed()));

    let report = PipelineReport {
        built: selection.built,
        raw_token_stats,
        after_prune: selection.after_prune,
        corpus_labels,
        combo_before_balance: selection.combo_before_balance,
        per_combo: selection.per_combo,
        final_size: balanced.len(),
        train_size: train.len(),
        validation_size: validation.len(),
        dedup: dedup.stats(),
        hazards: hazards.into_counts(),
    };
    Ok((
        Dataset { samples: balanced },
        Split {
            train: Dataset { samples: train },
            validation: Dataset {
                samples: validation,
            },
        },
        report,
        timings,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::run_pipeline_cached;
    use pce_kernels::{CorpusConfig, VariantAxes};

    fn small_spec(axes: VariantAxes) -> CorpusSpec {
        CorpusSpec {
            base: CorpusConfig {
                seed: 3,
                cuda_programs: 40,
                omp_programs: 32,
            },
            axes,
        }
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            per_combo_cap: 8,
            tokenizer_vocab: 400,
            tokenizer_stride: 11,
            ..Default::default()
        }
    }

    #[test]
    fn streamed_matches_materialized_for_identity_and_expanded_specs() {
        for axes in [
            VariantAxes::none(),
            VariantAxes {
                unroll: vec![4],
                flip_precision: true,
                ..VariantAxes::none()
            },
        ] {
            let spec = small_spec(axes);
            let corpus: Vec<_> = spec
                .stream()
                .collect::<Result<_, _>>()
                .expect("corpus builds");
            let c = cfg();
            let tokenized = crate::pipeline::tokenize_corpus(&corpus, &c);
            let eager_caches = SimCaches::new();
            let eager = run_pipeline_cached(&corpus, &tokenized, &c, &eager_caches);
            for shard_size in [1, 17, 1_000_000] {
                let caches = SimCaches::new();
                let streamed = run_pipeline_streamed(&spec, &c, &caches, shard_size)
                    .expect("streamed pipeline runs");
                assert_eq!(eager, streamed, "shard_size={shard_size}");
            }
        }
    }

    #[test]
    fn corpus_hazard_audit_is_error_clean() {
        let spec = small_spec(VariantAxes::none());
        let caches = SimCaches::new();
        let (_, _, report) =
            run_pipeline_streamed(&spec, &cfg(), &caches, 64).expect("pipeline runs");
        // Generated kernels may legitimately carry warning-severity
        // hazards (serialized accumulators, strided subscripts) but must
        // never ship an error-severity one (races, missing barriers).
        for rule in pce_static_analysis::RuleId::all() {
            if rule.severity() == pce_static_analysis::Severity::Error {
                assert_eq!(
                    report.hazards.get(rule.id()),
                    None,
                    "corpus fires error rule {rule}"
                );
            }
        }
    }

    #[test]
    fn expanded_corpus_reports_nonzero_dedup() {
        let spec = small_spec(VariantAxes {
            unroll: vec![2, 4],
            ..VariantAxes::none()
        });
        let caches = SimCaches::new();
        let (_, _, report) =
            run_pipeline_streamed(&spec, &cfg(), &caches, 64).expect("pipeline runs");
        // Unroll variants change only the source text, so 2/3 of the
        // corpus dedups onto the base programs' profiles.
        assert_eq!(report.dedup.total() as usize, spec.len());
        assert!(
            report.dedup.duplicates as usize >= spec.len() / 2,
            "expected heavy unroll dedup, got {:?}",
            report.dedup
        );
        assert!(report.dedup.hit_rate() > 0.5);
    }

    #[test]
    fn restreaming_profiles_zero_new_kernels() {
        let spec = small_spec(VariantAxes {
            flip_precision: true,
            ..VariantAxes::none()
        });
        let caches = SimCaches::new();
        let first = run_pipeline_streamed(&spec, &cfg(), &caches, 32).expect("first pass runs");
        let misses_after_first = caches.profiles().counters().misses;
        let second = run_pipeline_streamed(&spec, &cfg(), &caches, 32).expect("second pass runs");
        assert_eq!(
            caches.profiles().counters().misses,
            misses_after_first,
            "re-streaming the same seed must profile zero new kernels"
        );
        assert_eq!(first, second);
    }

    #[test]
    fn invalid_spec_pair_is_a_typed_error() {
        let mut c = cfg();
        c.specs.cpu = c.specs.gpu.clone();
        let err = run_pipeline_streamed(&small_spec(VariantAxes::none()), &c, &SimCaches::new(), 8)
            .expect_err("mismatched spec classes must be rejected");
        assert_eq!(err.kind(), "spec");
    }

    #[test]
    fn stage_timings_name_every_stage() {
        let caches = SimCaches::new();
        let (_, _, _, timings) =
            run_pipeline_streamed_timed(&small_spec(VariantAxes::none()), &cfg(), &caches, 16)
                .expect("pipeline runs");
        let names: Vec<&str> = timings.iter().map(|t| t.stage.as_str()).collect();
        assert_eq!(
            names,
            [
                "tokenize-train",
                "shard-profile",
                "select-balance",
                "materialize"
            ]
        );
        assert!(timings.iter().all(|t| t.seconds >= 0.0));
    }
}
