//! # pce-dataset
//!
//! The dataset pipeline of §2.1–2.2: profile the corpus, derive
//! ground-truth labels, prune by token count, balance by
//! (language × class), and split for fine-tuning.
//!
//! The paper's funnel, which this crate reproduces stage by stage:
//!
//! ```text
//! 446 CUDA + 303 OMP built programs
//!   └─ profile first kernel on the RTX 3080      (pce-gpu-sim)
//!   └─ label BB/CB via the 3-roofline joint rule (pce-roofline)
//!   └─ drop sources over 8e3 tokens              (pce-tokenizer)   → ~55% kept
//!   └─ one (first) kernel per program
//!   └─ balance lang × class to the smallest cell, capped at 85     → 340
//!   └─ 80/20 train/validation                                      → 272 / 68
//! ```

#![forbid(unsafe_code)]

pub mod pipeline;
pub mod sample;
pub mod stats;
pub mod stream;

pub use pipeline::{
    run_pipeline, run_pipeline_cached, run_pipeline_with, tokenize_corpus, Dataset, PipelineConfig,
    PipelineReport, Split, TokenizedCorpus,
};
pub use sample::Sample;
pub use stats::{combo_counts, fig2_stats, Fig2Row};
pub use stream::{run_pipeline_streamed, run_pipeline_streamed_timed, StageTiming};
