//! # pce-kernels
//!
//! A synthetic GPU benchmark corpus modeled on the HeCBench suite the paper
//! profiles (§2.1): 446 CUDA programs and 303 OpenMP-offload programs drawn
//! from 30 kernel families spanning streaming, dense linear algebra,
//! stencil, and compute-heavy workloads.
//!
//! Every generated [`Program`](corpus::Program) carries *two consistent
//! views* of the same computation:
//!
//! * **source text** — a complete, compilable-looking CUDA or OpenMP C++
//!   program (kernel + host harness + argument parsing), which is what the
//!   LLMs see in the paper's prompts, and
//! * **kernel IR + launch config** — the `pce-gpu-sim` lowering, which is
//!   what the profiler executes to produce ground-truth labels.
//!
//! The two views agree on computational structure (op mix, loop bounds,
//! access patterns) but diverge exactly where real profiling diverges from
//! source reading: caches, coalescing, and runtime-dependent sizes. That
//! gap is the paper's entire subject.
//!
//! ```
//! use pce_kernels::{build_corpus, CorpusConfig, Language};
//!
//! let cfg = CorpusConfig { seed: 7, cuda_programs: 10, omp_programs: 5 };
//! let corpus = build_corpus(&cfg).expect("registry families all render");
//! assert_eq!(corpus.iter().filter(|p| p.language == Language::Cuda).count(), 10);
//! assert!(corpus[0].source.contains("__global__") || corpus[0].source.contains("#pragma omp"));
//! ```
//!
//! Corpora no longer have to be materialized: [`CorpusSpec`] describes a
//! (possibly variant-expanded) corpus and [`CorpusSpec::stream`] walks it
//! lazily, with random access to any index — the primitive the sharded
//! dataset pipeline builds on:
//!
//! ```
//! use pce_kernels::{CorpusConfig, CorpusSpec, VariantAxes};
//!
//! let spec = CorpusSpec {
//!     base: CorpusConfig { seed: 7, cuda_programs: 10, omp_programs: 5 },
//!     axes: VariantAxes { unroll: vec![4], ..VariantAxes::none() },
//! };
//! assert_eq!(spec.len(), 30); // every base program plus one unroll variant
//! let first = spec.stream().next().expect("non-empty").expect("renders");
//! assert_eq!(first, spec.program(0).expect("random access agrees"));
//! ```

#![forbid(unsafe_code)]

pub mod corpus;
pub mod families;
pub mod source;
pub mod stream;

pub use corpus::{build_corpus, CorpusConfig, Language, Program};
pub use families::{family_names, Variant};
pub use stream::{CorpusSpec, CorpusStream, VariantAxes};
