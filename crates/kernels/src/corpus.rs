//! Corpus construction: instantiate the family registry into the paper's
//! program counts — 446 CUDA and 303 OpenMP-offload programs (§2.1) — with
//! seeded, reproducible parameter sampling.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use pce_fault::PceError;
use pce_gpu_sim::{KernelIr, LaunchConfig, Precision};

use crate::families::{registry, Family, FamilyInput};
use crate::stream::CorpusSpec;

pub use crate::source::Language;

/// One benchmark program of the corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Stable identifier, e.g. `"cuda-saxpy-0042"`.
    pub id: String,
    /// Family this program was instantiated from.
    pub family: String,
    /// Source language.
    pub language: Language,
    /// Complete source text (what LLM prompts embed).
    pub source: String,
    /// Name of the first kernel in the program (the one the paper queries).
    pub kernel_name: String,
    /// Simulator IR of that kernel.
    pub ir: KernelIr,
    /// Launch configuration of the profiled invocation.
    pub launch: LaunchConfig,
    /// Command-line arguments the binary is started with.
    pub args: Vec<String>,
}

/// Corpus generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Master seed; every program derives its own stream from it.
    pub seed: u64,
    /// Number of CUDA programs (the paper built 446).
    pub cuda_programs: usize,
    /// Number of OpenMP programs (the paper built 303).
    pub omp_programs: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x5eed_c0de,
            cuda_programs: 446,
            omp_programs: 303,
        }
    }
}

/// SplitMix64: derive decorrelated per-item seeds from the master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// The weighted family rotation the corpus draws from: compute-heavy
/// families appear twice (HeCBench leans heavily on crypto/Monte-Carlo/
/// finance kernels, and the balanced dataset needs enough compute-bound
/// programs per language, §2.2), and the OMP rotation keeps only families
/// with an OpenMP port.
pub(crate) fn weighted_families() -> (Vec<Family>, Vec<Family>) {
    let mut fams = Vec::new();
    for f in registry() {
        fams.push(f);
        if is_compute_heavy_family(f.name) {
            fams.push(f);
        }
    }
    let omp_fams: Vec<_> = fams.iter().filter(|f| f.has_omp).cloned().collect();
    (fams, omp_fams)
}

/// Build the full corpus eagerly.
///
/// This is now one consumer of the lazy [`CorpusStream`]
/// (`crate::stream`): it materializes the identity-variant stream (no
/// parametric expansion), which yields byte-identical programs to the
/// historical eager builder. Fails with [`PceError::Spec`] if a family
/// advertises an OMP port it does not render.
pub fn build_corpus(cfg: &CorpusConfig) -> Result<Vec<Program>, PceError> {
    CorpusSpec::materialized(*cfg).stream().collect()
}

/// Families whose kernels are integer-only: precision sampling is moot.
fn is_integer_family(name: &str) -> bool {
    matches!(name, "histogram" | "hashcrypt" | "rngstream")
}

/// Compute-heavy families that get double weight in the rotation.
fn is_compute_heavy_family(name: &str) -> bool {
    matches!(
        name,
        "mandelbrot"
            | "nbody"
            | "blackscholes"
            | "montecarlo"
            | "hashcrypt"
            | "polyeval"
            | "gelu"
            | "rngstream"
            | "matexp"
            | "gemm"
            | "conv2d"
            | "softmax"
    )
}

/// Sample a family's parameters for one corpus slot. Pure function of
/// `(seed, language, family, index)` — no sequential RNG state — which is
/// what makes random access to any stream index possible.
pub(crate) fn sample_input(seed: u64, lang: Language, family: &str, index: usize) -> FamilyInput {
    let lang_tag = match lang {
        Language::Cuda => 0x1u64,
        Language::Omp => 0x2u64,
    };
    let mut h = splitmix64(seed ^ lang_tag.rotate_left(32) ^ index as u64);
    for b in family.bytes() {
        h = splitmix64(h ^ b as u64);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(h);

    // Problem size: log-uniform over 2^14 .. 2^26 elements.
    let exp = rng.gen_range(14.0..26.0);
    let n = 2f64.powf(exp) as u64;

    // Iterations: log-uniform over 4 .. 4096.
    let iters = 2f64.powf(rng.gen_range(2.0..12.0)) as u64;

    let precision = if is_integer_family(family) || rng.gen_bool(0.38) {
        Precision::F32
    } else {
        Precision::F64
    };

    // Scaffolding verbosity: weighted toward the middle, with a real tail
    // of bloated programs (the token-pruning step needs something to prune).
    let verbosity = match rng.gen_range(0..100) {
        0..=19 => 0,
        20..=54 => 1,
        55..=84 => 2,
        _ => 3,
    };

    FamilyInput {
        n,
        iters,
        precision,
        verbosity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            seed: 42,
            cuda_programs: 60,
            omp_programs: 48,
        }
    }

    #[test]
    fn corpus_has_requested_counts_per_language() {
        let corpus = build_corpus(&small_cfg()).expect("corpus builds");
        assert_eq!(corpus.len(), 108);
        assert_eq!(
            corpus
                .iter()
                .filter(|p| p.language == Language::Cuda)
                .count(),
            60
        );
        assert_eq!(
            corpus
                .iter()
                .filter(|p| p.language == Language::Omp)
                .count(),
            48
        );
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = build_corpus(&small_cfg()).expect("corpus builds");
        let b = build_corpus(&small_cfg()).expect("corpus builds");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let a = build_corpus(&small_cfg()).expect("corpus builds");
        let b = build_corpus(&CorpusConfig {
            seed: 43,
            ..small_cfg()
        })
        .expect("corpus builds");
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_unique() {
        let corpus = build_corpus(&small_cfg()).expect("corpus builds");
        let mut ids: Vec<_> = corpus.iter().map(|p| p.id.clone()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn omp_programs_contain_target_pragmas() {
        let corpus = build_corpus(&small_cfg()).expect("corpus builds");
        for p in corpus.iter().filter(|p| p.language == Language::Omp) {
            assert!(
                p.source.contains("#pragma omp target"),
                "{} lacks a target region",
                p.id
            );
            assert!(!p.source.contains("__global__"), "{} leaked CUDA", p.id);
        }
    }

    #[test]
    fn cuda_programs_contain_kernels() {
        let corpus = build_corpus(&small_cfg()).expect("corpus builds");
        for p in corpus.iter().filter(|p| p.language == Language::Cuda) {
            assert!(p.source.contains("__global__"), "{} lacks a kernel", p.id);
        }
    }

    #[test]
    fn source_lengths_are_diverse() {
        let corpus = build_corpus(&small_cfg()).expect("corpus builds");
        let lens: Vec<usize> = corpus.iter().map(|p| p.source.len()).collect();
        let min = lens.iter().min().unwrap();
        let max = lens.iter().max().unwrap();
        assert!(*max > 2 * *min, "need length diversity, got {min}..{max}");
    }

    #[test]
    fn full_paper_counts_build() {
        // The real corpus: 446 + 303. Smoke-build it (fast: generation is
        // string assembly, no profiling).
        let corpus = build_corpus(&CorpusConfig::default()).expect("corpus builds");
        assert_eq!(corpus.len(), 749);
        let families_used: std::collections::BTreeSet<_> =
            corpus.iter().map(|p| p.family.clone()).collect();
        assert!(families_used.len() >= 30);
    }

    #[test]
    fn programs_serde_round_trip() {
        let corpus = build_corpus(&CorpusConfig {
            seed: 1,
            cuda_programs: 2,
            omp_programs: 1,
        })
        .expect("corpus builds");
        let json = serde_json::to_string(&corpus).unwrap();
        let back: Vec<Program> = serde_json::from_str(&json).unwrap();
        assert_eq!(corpus, back);
    }
}
