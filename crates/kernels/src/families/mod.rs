//! The kernel-family registry: 30 benchmark families spanning the workload
//! categories HeCBench covers (streaming, reductions, stencils, dense
//! linear algebra, sparse/irregular, and compute-heavy kernels).
//!
//! Each family builds a [`Variant`] — the paired (source text, kernel IR,
//! launch) description of one program instance — from a [`FamilyInput`]
//! (problem size, iteration count, precision, scaffold verbosity).

pub mod compute;
pub mod dense;
pub mod streaming;

use pce_gpu_sim::{KernelIr, LaunchConfig, Precision};

use crate::source::Verbosity;

/// Parameters a family is instantiated with.
#[derive(Debug, Clone, Copy)]
pub struct FamilyInput {
    /// Problem size (elements / matrix order / bodies …).
    pub n: u64,
    /// Iteration count for iterative kernels.
    pub iters: u64,
    /// Floating-point precision of the variant.
    pub precision: Precision,
    /// Scaffolding verbosity (0–3).
    pub verbosity: u8,
}

impl FamilyInput {
    /// C type name for the chosen precision.
    pub fn c_type(&self) -> &'static str {
        match self.precision {
            Precision::F32 => "float",
            Precision::F64 => "double",
        }
    }

    /// Literal suffix for the chosen precision (`1.0f` vs `1.0`).
    pub fn lit(&self, v: &str) -> String {
        match self.precision {
            Precision::F32 => format!("{v}f"),
            Precision::F64 => v.to_string(),
        }
    }

    /// Math-intrinsic name for the chosen precision (`expf` vs `exp`).
    pub fn fun(&self, base: &str) -> String {
        match self.precision {
            Precision::F32 => format!("{base}f"),
            Precision::F64 => base.to_string(),
        }
    }

    /// Element width in bytes.
    pub fn elem(&self) -> u64 {
        self.precision.bytes()
    }

    /// Verbosity wrapper.
    pub fn verb(&self) -> Verbosity {
        Verbosity(self.verbosity)
    }
}

/// One generated program instance, before corpus packaging.
#[derive(Debug, Clone)]
pub struct Variant {
    /// Family name (e.g. `"saxpy"`).
    pub family: &'static str,
    /// Name of the primary (first) kernel.
    pub kernel_name: String,
    /// Kernel IR for the simulator.
    pub ir: KernelIr,
    /// Launch configuration (geometry + named params).
    pub launch: LaunchConfig,
    /// Full CUDA source text.
    pub cuda: String,
    /// Full OpenMP-offload source text, when the family has an OMP port.
    pub omp: Option<String>,
    /// Command-line arguments the binary is launched with (positional).
    pub args: Vec<String>,
}

/// A registered family: name, whether an OMP port exists, and the builder.
#[derive(Clone, Copy)]
pub struct Family {
    /// Family name.
    pub name: &'static str,
    /// Whether this family ships an OpenMP-offload port (HeCBench has
    /// fewer OMP benchmarks than CUDA ones: 303 vs 446).
    pub has_omp: bool,
    /// Variant builder.
    pub build: fn(&FamilyInput) -> Variant,
}

impl std::fmt::Debug for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Family")
            .field("name", &self.name)
            .field("has_omp", &self.has_omp)
            .finish()
    }
}

/// The full registry, in a stable order.
pub fn registry() -> Vec<Family> {
    let mut fams = Vec::with_capacity(32);
    fams.extend(streaming::families());
    fams.extend(dense::families());
    fams.extend(compute::families());
    fams
}

/// Names of all registered families.
pub fn family_names() -> Vec<&'static str> {
    registry().into_iter().map(|f| f.name).collect()
}

/// Look up a family by name.
pub fn family(name: &str) -> Option<Family> {
    registry().into_iter().find(|f| f.name == name)
}

/// Shared helper: the standard 1-D launch used by elementwise families.
pub(crate) fn linear_launch(input: &FamilyInput) -> LaunchConfig {
    LaunchConfig::linear(input.n, 256)
        .expect("corpus launch shapes are statically valid")
        .with_param("n", input.n)
        .with_param("iters", input.iters)
}

/// Shared helper: entry-guard fraction for a padded 1-D launch.
pub(crate) fn guard_fraction(input: &FamilyInput, launch: &LaunchConfig) -> f64 {
    input.n as f64 / launch.total_threads() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_input() -> FamilyInput {
        FamilyInput {
            n: 1 << 16,
            iters: 10,
            precision: Precision::F32,
            verbosity: 1,
        }
    }

    #[test]
    fn registry_has_thirty_families_with_unique_names() {
        let fams = registry();
        assert!(
            fams.len() >= 30,
            "expected >= 30 families, got {}",
            fams.len()
        );
        let mut names: Vec<_> = fams.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate family names");
    }

    #[test]
    fn omp_coverage_is_partial_like_hecbench() {
        let fams = registry();
        let with_omp = fams.iter().filter(|f| f.has_omp).count();
        assert!(with_omp >= 18, "need enough OMP ports, got {with_omp}");
        assert!(with_omp < fams.len(), "some families must be CUDA-only");
    }

    #[test]
    fn every_family_builds_a_consistent_variant() {
        let input = demo_input();
        for fam in registry() {
            let v = (fam.build)(&input);
            assert_eq!(v.family, fam.name);
            assert!(
                v.cuda.contains("__global__"),
                "{}: CUDA source must contain a kernel",
                fam.name
            );
            assert!(
                v.cuda.contains(&v.kernel_name),
                "{}: kernel name {} missing from source",
                fam.name,
                v.kernel_name
            );
            assert_eq!(
                v.omp.is_some(),
                fam.has_omp,
                "{}: OMP port mismatch",
                fam.name
            );
            if let Some(omp) = &v.omp {
                assert!(
                    omp.contains("#pragma omp target"),
                    "{}: OMP source must contain a target region",
                    fam.name
                );
            }
            assert!(v.ir.validate().is_empty(), "{}: invalid IR", fam.name);
            assert!(!v.args.is_empty(), "{}: programs take CLI args", fam.name);
        }
    }

    #[test]
    fn precision_switches_types_in_source_and_ir() {
        let sp = demo_input();
        let dp = FamilyInput {
            precision: Precision::F64,
            ..sp
        };
        let fam = family("saxpy").unwrap();
        let vs = (fam.build)(&sp);
        let vd = (fam.build)(&dp);
        assert!(vs.cuda.contains("float"));
        assert!(vd.cuda.contains("double"));
        assert_ne!(vs.cuda, vd.cuda);
    }

    #[test]
    fn family_lookup_works() {
        assert!(family("saxpy").is_some());
        assert!(family("definitely-not-a-family").is_none());
    }

    #[test]
    fn helpers_format_precision_correctly() {
        let sp = demo_input();
        assert_eq!(sp.lit("2.0"), "2.0f");
        assert_eq!(sp.fun("exp"), "expf");
        let dp = FamilyInput {
            precision: Precision::F64,
            ..sp
        };
        assert_eq!(dp.lit("2.0"), "2.0");
        assert_eq!(dp.fun("sqrt"), "sqrt");
    }
}
