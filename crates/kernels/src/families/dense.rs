//! Dense linear-algebra and structured-grid families: the mid-intensity
//! band of the corpus where cache reuse decides the roofline class — the
//! cases that make source-level prediction genuinely hard.

use pce_gpu_sim::{AccessPattern, Extent, KernelIr, LaunchConfig, Op};

use crate::source::{assemble_cuda, assemble_omp, ProgramParts};

use super::{Family, FamilyInput, Variant};

/// The dense/structured family set.
pub fn families() -> Vec<Family> {
    vec![
        Family {
            name: "gemm",
            has_omp: true,
            build: gemm,
        },
        Family {
            name: "gemm_tiled",
            has_omp: false,
            build: gemm_tiled,
        },
        Family {
            name: "gemv",
            has_omp: true,
            build: gemv,
        },
        Family {
            name: "stencil2d",
            has_omp: true,
            build: stencil2d,
        },
        Family {
            name: "stencil3d",
            has_omp: false,
            build: stencil3d,
        },
        Family {
            name: "jacobi2d",
            has_omp: true,
            build: jacobi2d,
        },
        Family {
            name: "conv2d",
            has_omp: true,
            build: conv2d,
        },
        Family {
            name: "softmax",
            has_omp: true,
            build: softmax,
        },
        Family {
            name: "layernorm",
            has_omp: true,
            build: layernorm,
        },
    ]
}

/// Matrix order for an `n`-element budget (≈ n elements total).
fn matrix_dim(n: u64) -> u64 {
    ((n as f64).sqrt() as u64).clamp(64, 4096)
}

fn plane_launch(dim: u64, input: &FamilyInput) -> LaunchConfig {
    LaunchConfig::plane(dim, dim, 16, 16)
        .expect("corpus launch shapes are statically valid")
        .with_param("n", dim * dim)
        .with_param("dim", dim)
        .with_param("iters", input.iters)
}

fn gemm(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = matrix_dim(input.n);
    let launch = plane_launch(dim, input);
    let ir = KernelIr::builder("gemm_naive")
        .buffer("A", input.elem(), Extent::Param("n".into()))
        .buffer("B", input.elem(), Extent::Param("n".into()))
        .buffer("C", input.elem(), Extent::Param("n".into()))
        .op(Op::loop_n(
            Extent::Param("dim".into()),
            vec![
                Op::load("A", AccessPattern::Strided(8)),
                Op::load("B", AccessPattern::Coalesced),
                Op::Fma(input.precision),
            ],
        ))
        .op(Op::store("C", AccessPattern::Coalesced))
        .guard_fraction((dim * dim) as f64 / launch.total_threads() as f64)
        .build();
    let parts = ProgramParts {
        name: "gemm".into(),
        kernel_code: format!(
            "__global__ void gemm_naive(long dim, const {t}* A, const {t}* B, {t}* C) {{\n\
             \x20 long col = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 long row = blockIdx.y * (long)blockDim.y + threadIdx.y;\n\
             \x20 if (row < dim && col < dim) {{\n\
             \x20   {t} acc = 0;\n\
             \x20   for (long k = 0; k < dim; k++) {{\n\
             \x20     acc += A[row * dim + k] * B[k * dim + col];\n\
             \x20   }}\n\
             \x20   C[row * dim + col] = acc;\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  dim3 block(16, 16);\n  dim3 grid((dim + 15) / 16, (dim + 15) / 16);\n\
             \x20 gemm_naive<<<grid, block>>>(dim, d_A, d_B, d_C);\n"
            .to_string(),
        buffers: vec![
            ("A".into(), t.into(), "dim * dim".into()),
            ("B".into(), t.into(), "dim * dim".into()),
            ("C".into(), t.into(), "dim * dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    let omp = format!
        ("#pragma omp target teams distribute parallel for collapse(2) map(to: A[0:dim*dim], B[0:dim*dim]) map(from: C[0:dim*dim])\n\
          \x20 for (long row = 0; row < dim; row++) {{\n\
          \x20   for (long col = 0; col < dim; col++) {{\n\
          \x20     {t} acc = 0;\n\
          \x20     for (long k = 0; k < dim; k++) acc += A[row * dim + k] * B[k * dim + col];\n\
          \x20     C[row * dim + col] = acc;\n\
          \x20   }}\n\
          \x20 }}\n");
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "gemm",
        kernel_name: "gemm_naive".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![dim.to_string()],
    }
}

fn gemm_tiled(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = matrix_dim(input.n);
    let launch = plane_launch(dim, input).with_shared_bytes(2 * 16 * 16 * input.elem() as u32);
    let tiles = Extent::ParamScaled("dim".into(), 1.0 / 16.0);
    let ir = KernelIr::builder("gemm_tiled")
        .buffer("A", input.elem(), Extent::Param("n".into()))
        .buffer("B", input.elem(), Extent::Param("n".into()))
        .buffer("C", input.elem(), Extent::Param("n".into()))
        .op(Op::loop_n(
            tiles,
            vec![
                Op::load("A", AccessPattern::Coalesced),
                Op::load("B", AccessPattern::Coalesced),
                Op::Shared(pce_gpu_sim::ir::Dir::Write),
                Op::Shared(pce_gpu_sim::ir::Dir::Write),
                Op::Sync,
                Op::loop_n(
                    Extent::Const(16),
                    vec![
                        Op::Shared(pce_gpu_sim::ir::Dir::Read),
                        Op::Shared(pce_gpu_sim::ir::Dir::Read),
                        Op::Fma(input.precision),
                    ],
                ),
                Op::Sync,
            ],
        ))
        .op(Op::store("C", AccessPattern::Coalesced))
        .guard_fraction((dim * dim) as f64 / launch.total_threads() as f64)
        .build();
    let parts = ProgramParts {
        name: "gemm_tiled".into(),
        kernel_code: format!(
            "#define TILE 16\n\
             __global__ void gemm_tiled(long dim, const {t}* A, const {t}* B, {t}* C) {{\n\
             \x20 __shared__ {t} As[TILE][TILE];\n\
             \x20 __shared__ {t} Bs[TILE][TILE];\n\
             \x20 long col = blockIdx.x * TILE + threadIdx.x;\n\
             \x20 long row = blockIdx.y * TILE + threadIdx.y;\n\
             \x20 {t} acc = 0;\n\
             \x20 for (long tk = 0; tk < dim / TILE; tk++) {{\n\
             \x20   As[threadIdx.y][threadIdx.x] = A[row * dim + tk * TILE + threadIdx.x];\n\
             \x20   Bs[threadIdx.y][threadIdx.x] = B[(tk * TILE + threadIdx.y) * dim + col];\n\
             \x20   __syncthreads();\n\
             \x20   for (int k = 0; k < TILE; k++) {{\n\
             \x20     acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];\n\
             \x20   }}\n\
             \x20   __syncthreads();\n\
             \x20 }}\n\
             \x20 if (row < dim && col < dim) C[row * dim + col] = acc;\n}}\n"
        ),
        launch_code: "  dim3 block(16, 16);\n  dim3 grid((dim + 15) / 16, (dim + 15) / 16);\n\
             \x20 gemm_tiled<<<grid, block>>>(dim, d_A, d_B, d_C);\n"
            .to_string(),
        buffers: vec![
            ("A".into(), t.into(), "dim * dim".into()),
            ("B".into(), t.into(), "dim * dim".into()),
            ("C".into(), t.into(), "dim * dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    Variant {
        family: "gemm_tiled",
        kernel_name: "gemm_tiled".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: None,
        args: vec![dim.to_string()],
    }
}

fn gemv(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = matrix_dim(input.n).min(16384);
    let launch = LaunchConfig::linear(dim, 256)
        .expect("corpus launch shapes are statically valid")
        .with_param("dim", dim)
        .with_param("n", dim * dim);
    let ir = KernelIr::builder("gemv")
        .buffer("M", input.elem(), Extent::Param("n".into()))
        .buffer("x", input.elem(), Extent::Param("dim".into()))
        .buffer("y", input.elem(), Extent::Param("dim".into()))
        .op(Op::loop_n(
            Extent::Param("dim".into()),
            vec![
                Op::load("M", AccessPattern::Strided(32)),
                Op::load("x", AccessPattern::Broadcast),
                Op::Fma(input.precision),
            ],
        ))
        .op(Op::store("y", AccessPattern::Coalesced))
        .guard_fraction(dim as f64 / launch.total_threads() as f64)
        .build();
    let parts = ProgramParts {
        name: "gemv".into(),
        kernel_code: format!(
            "__global__ void gemv(long dim, const {t}* M, const {t}* x, {t}* y) {{\n\
             \x20 long row = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (row < dim) {{\n\
             \x20   {t} acc = 0;\n\
             \x20   for (long j = 0; j < dim; j++) acc += M[row * dim + j] * x[j];\n\
             \x20   y[row] = acc;\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  gemv<<<(dim + 255) / 256, 256>>>(dim, d_M, d_x, d_y);\n".to_string(),
        buffers: vec![
            ("M".into(), t.into(), "dim * dim".into()),
            ("x".into(), t.into(), "dim".into()),
            ("y".into(), t.into(), "dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    let omp = format!(
        "#pragma omp target teams distribute parallel for map(to: M[0:dim*dim], x[0:dim]) map(from: y[0:dim])\n\
         \x20 for (long row = 0; row < dim; row++) {{\n\
         \x20   {t} acc = 0;\n\
         \x20   for (long j = 0; j < dim; j++) acc += M[row * dim + j] * x[j];\n\
         \x20   y[row] = acc;\n\
         \x20 }}\n"
    );
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "gemv",
        kernel_name: "gemv".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![dim.to_string()],
    }
}

fn stencil2d(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = matrix_dim(input.n);
    let launch = plane_launch(dim, input);
    let ir = KernelIr::builder("stencil2d")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .ops((0..5).map(|_| Op::load("in", AccessPattern::Coalesced)))
        .ops((0..6).map(|_| Op::Flop(input.precision)))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(0.98 * (dim * dim) as f64 / launch.total_threads() as f64)
        .build();
    let c = input.lit("0.2");
    let parts = ProgramParts {
        name: "stencil2d".into(),
        kernel_code: format!(
            "__global__ void stencil2d(long dim, const {t}* in, {t}* out) {{\n\
             \x20 long x = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 long y = blockIdx.y * (long)blockDim.y + threadIdx.y;\n\
             \x20 if (x > 0 && x < dim - 1 && y > 0 && y < dim - 1) {{\n\
             \x20   out[y * dim + x] = {c} * (in[y * dim + x] + in[y * dim + x - 1] +\n\
             \x20       in[y * dim + x + 1] + in[(y - 1) * dim + x] + in[(y + 1) * dim + x]);\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  dim3 block(16, 16);\n  dim3 grid((dim + 15) / 16, (dim + 15) / 16);\n\
             \x20 stencil2d<<<grid, block>>>(dim, d_in, d_out);\n"
            .to_string(),
        buffers: vec![
            ("in".into(), t.into(), "dim * dim".into()),
            ("out".into(), t.into(), "dim * dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    let omp = format!(
        "#pragma omp target teams distribute parallel for collapse(2) map(to: in[0:dim*dim]) map(from: out[0:dim*dim])\n\
         \x20 for (long y = 1; y < dim - 1; y++)\n\
         \x20   for (long x = 1; x < dim - 1; x++)\n\
         \x20     out[y * dim + x] = {c} * (in[y * dim + x] + in[y * dim + x - 1] +\n\
         \x20         in[y * dim + x + 1] + in[(y - 1) * dim + x] + in[(y + 1) * dim + x]);\n"
    );
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "stencil2d",
        kernel_name: "stencil2d".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![dim.to_string()],
    }
}

fn stencil3d(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = ((input.n as f64).cbrt() as u64).clamp(32, 512);
    let n3 = dim * dim * dim;
    let launch = LaunchConfig::plane(dim * dim, dim, 16, 16)
        .expect("corpus launch shapes are statically valid")
        .with_param("n", n3)
        .with_param("dim", dim);
    let ir = KernelIr::builder("stencil3d")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .ops((0..7).map(|_| Op::load("in", AccessPattern::Coalesced)))
        .ops((0..8).map(|_| Op::Flop(input.precision)))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(0.95 * n3 as f64 / launch.total_threads() as f64)
        .build();
    let c = input.lit("0.1428");
    let parts = ProgramParts {
        name: "stencil3d".into(),
        kernel_code: format!(
            "__global__ void stencil3d(long dim, const {t}* in, {t}* out) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 long z = i / (dim * dim);\n\
             \x20 long y = (i / dim) % dim;\n\
             \x20 long x = i % dim;\n\
             \x20 if (x > 0 && x < dim-1 && y > 0 && y < dim-1 && z > 0 && z < dim-1) {{\n\
             \x20   long c0 = (z * dim + y) * dim + x;\n\
             \x20   out[c0] = {c} * (in[c0] + in[c0-1] + in[c0+1] + in[c0-dim] +\n\
             \x20       in[c0+dim] + in[c0-dim*dim] + in[c0+dim*dim]);\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  stencil3d<<<(dim * dim * dim + 255) / 256, 256>>>(dim, d_in, d_out);\n"
            .to_string(),
        buffers: vec![
            ("in".into(), t.into(), "dim * dim * dim".into()),
            ("out".into(), t.into(), "dim * dim * dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    Variant {
        family: "stencil3d",
        kernel_name: "stencil3d".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: None,
        args: vec![dim.to_string()],
    }
}

fn jacobi2d(input: &FamilyInput) -> Variant {
    // Same per-sweep shape as stencil2d, but the host loops `iters` sweeps;
    // profiling captures only the first invocation (§2.1), while the source
    // prominently shows the iteration count — a realistic static-analysis trap.
    let mut v = stencil2d(input);
    v.family = "jacobi2d";
    v.ir.name = "jacobi_sweep".into();
    v.cuda = v.cuda.replace("stencil2d", "jacobi_sweep").replace(
        "  jacobi_sweep<<<grid, block>>>(dim, d_in, d_out);\n",
        &format!(
            "  for (int sweep = 0; sweep < iters; sweep++) {{\n\
             \x20   jacobi_sweep<<<grid, block>>>(dim, d_in, d_out);\n\
             \x20   {0}* tmp = d_in; d_in = d_out; d_out = tmp;\n\
             \x20 }}\n",
            input.c_type()
        ),
    );
    // The scalar list gains the sweep count as a second CLI arg.
    v.cuda = v.cuda.replace(
        "int main(int argc, char* argv[]) {\n",
        "int main(int argc, char* argv[]) {\n  int iters = (argc > 2) ? atoi(argv[2]) : 100;\n",
    );
    if let Some(omp) = v.omp.take() {
        v.omp = Some(
            omp.replace("stencil2d", "jacobi_sweep").replace(
                "#pragma omp target teams",
                "  for (int sweep = 0; sweep < iters; sweep++) {\n#pragma omp target teams",
            ) + "  }\n",
        );
        // Crude but effective: give the OMP main the same iters arg.
        v.omp = v.omp.map(|s| {
            s.replace(
                "int main(int argc, char* argv[]) {\n",
                "int main(int argc, char* argv[]) {\n  int iters = (argc > 2) ? atoi(argv[2]) : 100;\n",
            )
        });
    }
    v.kernel_name = "jacobi_sweep".into();
    v.args.push(input.iters.to_string());
    v
}

fn conv2d(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = matrix_dim(input.n);
    let ksize = 2 * (1 + input.iters % 3) + 1; // 3, 5, or 7
    let launch = plane_launch(dim, input).with_param("ksize", ksize);
    let ir = KernelIr::builder("conv2d")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("filt", input.elem(), Extent::Const(49))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .op(Op::loop_n(
            Extent::Param("ksize".into()),
            vec![Op::loop_n(
                Extent::Param("ksize".into()),
                vec![
                    Op::load("in", AccessPattern::Coalesced),
                    Op::load("filt", AccessPattern::Broadcast),
                    Op::Fma(input.precision),
                ],
            )],
        ))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(0.95 * (dim * dim) as f64 / launch.total_threads() as f64)
        .build();
    let parts = ProgramParts {
        name: "conv2d".into(),
        kernel_code: format!(
            "__global__ void conv2d(long dim, int ksize, const {t}* in, const {t}* filt, {t}* out) {{\n\
             \x20 long x = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 long y = blockIdx.y * (long)blockDim.y + threadIdx.y;\n\
             \x20 int r = ksize / 2;\n\
             \x20 if (x >= r && x < dim - r && y >= r && y < dim - r) {{\n\
             \x20   {t} acc = 0;\n\
             \x20   for (int fy = 0; fy < ksize; fy++) {{\n\
             \x20     for (int fx = 0; fx < ksize; fx++) {{\n\
             \x20       acc += in[(y + fy - r) * dim + (x + fx - r)] * filt[fy * ksize + fx];\n\
             \x20     }}\n\
             \x20   }}\n\
             \x20   out[y * dim + x] = acc;\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  dim3 block(16, 16);\n  dim3 grid((dim + 15) / 16, (dim + 15) / 16);\n\
             \x20 conv2d<<<grid, block>>>(dim, ksize, d_in, d_filt, d_out);\n"
            .to_string(),
        buffers: vec![
            ("in".into(), t.into(), "dim * dim".into()),
            ("filt".into(), t.into(), "49".into()),
            ("out".into(), t.into(), "dim * dim".into()),
        ],
        scalars: vec![
            ("dim".into(), "long".into(), format!("{dim}")),
            ("ksize".into(), "int".into(), format!("{ksize}")),
        ],
        extra_helpers: String::new(),
    };
    let omp = format!(
        "#pragma omp target teams distribute parallel for collapse(2) map(to: in[0:dim*dim], filt[0:49]) map(from: out[0:dim*dim])\n\
         \x20 for (long y = ksize/2; y < dim - ksize/2; y++) {{\n\
         \x20   for (long x = ksize/2; x < dim - ksize/2; x++) {{\n\
         \x20     {t} acc = 0;\n\
         \x20     for (int fy = 0; fy < ksize; fy++)\n\
         \x20       for (int fx = 0; fx < ksize; fx++)\n\
         \x20         acc += in[(y + fy - ksize/2) * dim + (x + fx - ksize/2)] * filt[fy * ksize + fx];\n\
         \x20     out[y * dim + x] = acc;\n\
         \x20   }}\n\
         \x20 }}\n"
    );
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "conv2d",
        kernel_name: "conv2d".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![dim.to_string(), ksize.to_string()],
    }
}

fn softmax(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = super::linear_launch(input);
    let ir = KernelIr::builder("softmax_exp")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::Flop(input.precision))
        .op(Op::Special(input.precision, pce_gpu_sim::SpecialFn::ExpLog))
        .op(Op::Flop(input.precision))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(super::guard_fraction(input, &launch))
        .build();
    let expfn = input.fun("exp");
    let mx = input.lit("4.0");
    let inv = input.lit("0.0039");
    let parts = ProgramParts {
        name: "softmax".into(),
        kernel_code: format!(
            "__global__ void softmax_exp(long n, const {t}* in, {t}* out) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) {{\n\
             \x20   out[i] = {expfn}(in[i] - {mx}) * {inv};\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  softmax_exp<<<(n + 255) / 256, 256>>>(n, d_in, d_out);\n".to_string(),
        buffers: vec![
            ("in".into(), t.into(), "n".into()),
            ("out".into(), t.into(), "n".into()),
        ],
        scalars: vec![("n".into(), "long".into(), format!("{}", input.n))],
        extra_helpers: String::new(),
    };
    let omp = format!(
        "#pragma omp target teams distribute parallel for map(to: in[0:n]) map(from: out[0:n])\n\
         \x20 for (long i = 0; i < n; i++) out[i] = {expfn}(in[i] - {mx}) * {inv};\n"
    );
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "softmax",
        kernel_name: "softmax_exp".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![input.n.to_string()],
    }
}

fn layernorm(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = super::linear_launch(input);
    let ir = KernelIr::builder("layernorm_apply")
        .buffer("x", input.elem(), Extent::Param("n".into()))
        .buffer("gamma", input.elem(), Extent::Const(4096))
        .buffer("beta", input.elem(), Extent::Const(4096))
        .buffer("y", input.elem(), Extent::Param("n".into()))
        .op(Op::load("x", AccessPattern::Coalesced))
        .op(Op::load("gamma", AccessPattern::Coalesced))
        .op(Op::load("beta", AccessPattern::Coalesced))
        .ops((0..4).map(|_| Op::Flop(input.precision)))
        .op(Op::store("y", AccessPattern::Coalesced))
        .guard_fraction(super::guard_fraction(input, &launch))
        .build();
    let mean = input.lit("0.5");
    let rstd = input.lit("1.25");
    let parts = ProgramParts {
        name: "layernorm".into(),
        kernel_code: format!(
            "__global__ void layernorm_apply(long n, const {t}* x, const {t}* gamma, const {t}* beta, {t}* y) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) {{\n\
             \x20   long c = i & 4095;\n\
             \x20   y[i] = (x[i] - {mean}) * {rstd} * gamma[c] + beta[c];\n\
             \x20 }}\n}}\n"
        ),
        launch_code:
            "  layernorm_apply<<<(n + 255) / 256, 256>>>(n, d_x, d_gamma, d_beta, d_y);\n"
                .to_string(),
        buffers: vec![
            ("x".into(), t.into(), "n".into()),
            ("gamma".into(), t.into(), "4096".into()),
            ("beta".into(), t.into(), "4096".into()),
            ("y".into(), t.into(), "n".into()),
        ],
        scalars: vec![("n".into(), "long".into(), format!("{}", input.n))],
        extra_helpers: String::new(),
    };
    let omp = format!(
        "#pragma omp target teams distribute parallel for map(to: x[0:n], gamma[0:4096], beta[0:4096]) map(from: y[0:n])\n\
         \x20 for (long i = 0; i < n; i++) {{\n\
         \x20   long c = i & 4095;\n\
         \x20   y[i] = (x[i] - {mean}) * {rstd} * gamma[c] + beta[c];\n\
         \x20 }}\n"
    );
    let omp_parts = ProgramParts {
        kernel_code: String::new(),
        launch_code: omp,
        ..parts.clone()
    };
    Variant {
        family: "layernorm",
        kernel_name: "layernorm_apply".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: Some(assemble_omp(&omp_parts, input.verb())),
        args: vec![input.n.to_string()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_gpu_sim::{Precision, Profiler};
    use pce_roofline::{classify_joint, Boundedness, HardwareSpec, OpClass};

    fn input(n: u64, precision: Precision) -> FamilyInput {
        FamilyInput {
            n,
            iters: 100,
            precision,
            verbosity: 1,
        }
    }

    #[test]
    fn dp_gemm_is_compute_bound_despite_low_static_ai() {
        let hw = HardwareSpec::rtx_3080();
        let v = gemm(&input(1 << 22, Precision::F64)); // 2048x2048
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        let joint = classify_joint(&hw, &p.counts);
        assert_eq!(joint.label, Boundedness::Compute, "DP gemm 2048 must be CB");
        assert!(joint.compute_bound_classes().contains(&OpClass::Dp));
        // The static (requested-bytes) AI sits below the DP balance point —
        // only the cache-aware empirical AI crosses it. This is the class of
        // kernel where source-only prediction structurally fails.
        let requested = 2.0 * 2048.0 * 8.0; // per-thread requested bytes (K*2 loads * 8B)
        let static_ai = (2.0 * 2048.0) / requested;
        assert!(static_ai < hw.roofline(OpClass::Dp).balance_point());
        let empirical_ai = p.counts.flops_dp as f64 / p.counts.total_bytes() as f64;
        assert!(empirical_ai > 10.0 * static_ai);
    }

    #[test]
    fn dp_conv2d_crosses_the_dp_balance_point() {
        let hw = HardwareSpec::rtx_3080();
        // iters picks the filter size; 2 -> ksize 7 (49-tap window).
        let v = conv2d(&FamilyInput {
            iters: 2,
            ..input(1 << 22, Precision::F64)
        });
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        let joint = classify_joint(&hw, &p.counts);
        assert_eq!(joint.label, Boundedness::Compute);
        assert!(joint.compute_bound_classes().contains(&OpClass::Dp));
    }

    #[test]
    fn sp_softmax_is_bandwidth_bound_but_dp_softmax_is_not() {
        let hw = HardwareSpec::rtx_3080();
        let prof = Profiler::new(hw.clone());
        let sp = softmax(&input(1 << 24, Precision::F32));
        let dp = softmax(&input(1 << 24, Precision::F64));
        let p_sp = prof.profile(&sp.ir, &sp.launch);
        let p_dp = prof.profile(&dp.ir, &dp.launch);
        assert_eq!(
            classify_joint(&hw, &p_sp.counts).label,
            Boundedness::Bandwidth
        );
        assert_eq!(
            classify_joint(&hw, &p_dp.counts).label,
            Boundedness::Compute
        );
    }

    #[test]
    fn layernorm_streams_bandwidth_bound() {
        let hw = HardwareSpec::rtx_3080();
        let v = layernorm(&input(1 << 24, Precision::F32));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Bandwidth);
    }

    #[test]
    fn jacobi_source_shows_host_iteration_loop() {
        let v = jacobi2d(&input(1 << 20, Precision::F32));
        assert!(v.cuda.contains("for (int sweep = 0; sweep < iters"));
        assert_eq!(v.kernel_name, "jacobi_sweep");
        assert_eq!(v.args.len(), 2);
    }

    #[test]
    fn tiled_gemm_uses_shared_memory_in_source_and_ir() {
        let v = gemm_tiled(&input(1 << 20, Precision::F32));
        assert!(v.cuda.contains("__shared__"));
        let s = v.ir.summarize(&v.launch.params);
        assert!(s.costs.shared_accesses > 0.0);
        assert!(s.costs.syncs > 0.0);
    }

    #[test]
    fn gemv_streams_the_matrix() {
        let hw = HardwareSpec::rtx_3080();
        let v = gemv(&input(1 << 22, Precision::F32));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Bandwidth);
    }
}
