//! Streaming / memory-movement families: the bandwidth-bound backbone of
//! the corpus (vector ops, reductions, transposes, gathers, histograms).

use pce_gpu_sim::{AccessPattern, Extent, IntKind, KernelIr, Op};

use crate::source::{assemble_cuda, assemble_omp, ProgramParts};

use super::{guard_fraction, linear_launch, Family, FamilyInput, Variant};

/// The streaming family set.
pub fn families() -> Vec<Family> {
    vec![
        Family {
            name: "vecadd",
            has_omp: true,
            build: vecadd,
        },
        Family {
            name: "saxpy",
            has_omp: true,
            build: saxpy,
        },
        Family {
            name: "triad",
            has_omp: true,
            build: triad,
        },
        Family {
            name: "devicecopy",
            has_omp: true,
            build: devicecopy,
        },
        Family {
            name: "vecscale",
            has_omp: true,
            build: vecscale,
        },
        Family {
            name: "dotprod",
            has_omp: true,
            build: dotprod,
        },
        Family {
            name: "reduction",
            has_omp: true,
            build: reduction,
        },
        Family {
            name: "stencil1d",
            has_omp: true,
            build: stencil1d,
        },
        Family {
            name: "transpose",
            has_omp: false,
            build: transpose,
        },
        Family {
            name: "gather",
            has_omp: true,
            build: gather,
        },
        Family {
            name: "scatter",
            has_omp: false,
            build: scatter,
        },
        Family {
            name: "histogram",
            has_omp: true,
            build: histogram,
        },
    ]
}

/// Shared elementwise assembly: build a full Variant from kernel/source
/// fragments for 1-D map-style kernels.
#[allow(clippy::too_many_arguments)]
fn elementwise(
    input: &FamilyInput,
    family: &'static str,
    kernel_name: &str,
    cuda_kernel: String,
    cuda_launch: String,
    omp_region: Option<String>,
    buffers: Vec<(String, String, String)>,
    ir: KernelIr,
) -> Variant {
    let parts = ProgramParts {
        name: family.to_string(),
        kernel_code: cuda_kernel,
        launch_code: cuda_launch,
        buffers: buffers.clone(),
        scalars: vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        extra_helpers: String::new(),
    };
    let cuda = assemble_cuda(&parts, input.verb());
    let omp = omp_region.map(|region| {
        let omp_parts = ProgramParts {
            kernel_code: String::new(),
            launch_code: region,
            ..parts.clone()
        };
        assemble_omp(&omp_parts, input.verb())
    });
    let launch = linear_launch(input);
    Variant {
        family,
        kernel_name: kernel_name.to_string(),
        ir,
        launch,
        cuda,
        omp,
        args: vec![input.n.to_string(), input.iters.to_string()],
    }
}

fn vecadd(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("vecadd")
        .buffer("a", input.elem(), Extent::Param("n".into()))
        .buffer("b", input.elem(), Extent::Param("n".into()))
        .buffer("c", input.elem(), Extent::Param("n".into()))
        .op(Op::load("a", AccessPattern::Coalesced))
        .op(Op::load("b", AccessPattern::Coalesced))
        .op(Op::Flop(input.precision))
        .op(Op::store("c", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    elementwise(
        input,
        "vecadd",
        "vecadd",
        format!(
            "__global__ void vecadd(long n, const {t}* a, const {t}* b, {t}* c) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) c[i] = a[i] + b[i];\n}}\n"
        ),
        "  vecadd<<<(n + 255) / 256, 256>>>(n, d_a, d_b, d_c);\n".to_string(),
        Some("#pragma omp target teams distribute parallel for map(to: a[0:n], b[0:n]) map(from: c[0:n])\n\
             \x20 for (long i = 0; i < n; i++) c[i] = a[i] + b[i];\n".to_string()),
        vec![
            ("a".into(), t.into(), "n".into()),
            ("b".into(), t.into(), "n".into()),
            ("c".into(), t.into(), "n".into()),
        ],
        ir,
    )
}

fn saxpy(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let name = if input.elem() == 8 { "daxpy" } else { "saxpy" };
    let launch = linear_launch(input);
    let ir = KernelIr::builder(name)
        .buffer("x", input.elem(), Extent::Param("n".into()))
        .buffer("y", input.elem(), Extent::Param("n".into()))
        .op(Op::load("x", AccessPattern::Coalesced))
        .op(Op::load("y", AccessPattern::Coalesced))
        .op(Op::Fma(input.precision))
        .op(Op::store("y", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let a = input.lit("2.5");
    elementwise(
        input,
        "saxpy",
        name,
        format!(
            "__global__ void {name}(long n, {t} a, const {t}* x, {t}* y) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) y[i] = a * x[i] + y[i];\n}}\n"
        ),
        format!("  {name}<<<(n + 255) / 256, 256>>>(n, {a}, d_x, d_y);\n"),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: x[0:n]) map(tofrom: y[0:n])\n\
             \x20 for (long i = 0; i < n; i++) y[i] = {a} * x[i] + y[i];\n"
        )),
        vec![
            ("x".into(), t.into(), "n".into()),
            ("y".into(), t.into(), "n".into()),
        ],
        ir,
    )
}

fn triad(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("triad")
        .buffer("b", input.elem(), Extent::Param("n".into()))
        .buffer("c", input.elem(), Extent::Param("n".into()))
        .buffer("a", input.elem(), Extent::Param("n".into()))
        .op(Op::load("b", AccessPattern::Coalesced))
        .op(Op::load("c", AccessPattern::Coalesced))
        .op(Op::Fma(input.precision))
        .op(Op::store("a", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let s = input.lit("3.0");
    elementwise(
        input,
        "triad",
        "triad",
        format!(
            "__global__ void triad(long n, {t} s, const {t}* b, const {t}* c, {t}* a) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) a[i] = b[i] + s * c[i];\n}}\n"
        ),
        format!("  triad<<<(n + 255) / 256, 256>>>(n, {s}, d_b, d_c, d_a);\n"),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: b[0:n], c[0:n]) map(from: a[0:n])\n\
             \x20 for (long i = 0; i < n; i++) a[i] = b[i] + {s} * c[i];\n"
        )),
        vec![
            ("b".into(), t.into(), "n".into()),
            ("c".into(), t.into(), "n".into()),
            ("a".into(), t.into(), "n".into()),
        ],
        ir,
    )
}

fn devicecopy(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("devicecopy")
        .buffer("src", input.elem(), Extent::Param("n".into()))
        .buffer("dst", input.elem(), Extent::Param("n".into()))
        .op(Op::load("src", AccessPattern::Coalesced))
        .op(Op::store("dst", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    elementwise(
        input,
        "devicecopy",
        "devicecopy",
        format!(
            "__global__ void devicecopy(long n, const {t}* src, {t}* dst) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) dst[i] = src[i];\n}}\n"
        ),
        "  devicecopy<<<(n + 255) / 256, 256>>>(n, d_src, d_dst);\n".to_string(),
        Some(
            "#pragma omp target teams distribute parallel for map(to: src[0:n]) map(from: dst[0:n])\n\
             \x20 for (long i = 0; i < n; i++) dst[i] = src[i];\n"
                .to_string(),
        ),
        vec![("src".into(), t.into(), "n".into()), ("dst".into(), t.into(), "n".into())],
        ir,
    )
}

fn vecscale(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("vecscale")
        .buffer("v", input.elem(), Extent::Param("n".into()))
        .op(Op::load("v", AccessPattern::Coalesced))
        .op(Op::Flop(input.precision))
        .op(Op::store("v", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let k = input.lit("0.5");
    elementwise(
        input,
        "vecscale",
        "vecscale",
        format!(
            "__global__ void vecscale(long n, {t} k, {t}* v) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) v[i] = v[i] * k;\n}}\n"
        ),
        format!("  vecscale<<<(n + 255) / 256, 256>>>(n, {k}, d_v);\n"),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(tofrom: v[0:n])\n\
             \x20 for (long i = 0; i < n; i++) v[i] = v[i] * {k};\n"
        )),
        vec![("v".into(), t.into(), "n".into())],
        ir,
    )
}

fn dotprod(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("dotprod")
        .buffer("x", input.elem(), Extent::Param("n".into()))
        .buffer("y", input.elem(), Extent::Param("n".into()))
        .buffer("partial", input.elem(), Extent::Const(4096))
        .op(Op::load("x", AccessPattern::Coalesced))
        .op(Op::load("y", AccessPattern::Coalesced))
        .op(Op::Fma(input.precision))
        // Block-level tree reduction in shared memory.
        .op(Op::loop_n(
            Extent::Const(8),
            vec![
                Op::Shared(pce_gpu_sim::ir::Dir::Read),
                Op::Flop(input.precision),
                Op::Sync,
            ],
        ))
        .op(Op::Guard {
            fraction: 1.0 / 256.0,
            body: vec![Op::store("partial", AccessPattern::Coalesced)],
        })
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let kernel = format!(
        "__global__ void dotprod(long n, const {t}* x, const {t}* y, {t}* partial) {{\n\
         \x20 __shared__ {t} cache[256];\n\
         \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
         \x20 {t} acc = 0;\n\
         \x20 if (i < n) acc = x[i] * y[i];\n\
         \x20 cache[threadIdx.x] = acc;\n\
         \x20 __syncthreads();\n\
         \x20 for (int s = 128; s > 0; s >>= 1) {{\n\
         \x20   if (threadIdx.x < s) cache[threadIdx.x] += cache[threadIdx.x + s];\n\
         \x20   __syncthreads();\n\
         \x20 }}\n\
         \x20 if (threadIdx.x == 0) partial[blockIdx.x] = cache[0];\n}}\n"
    );
    elementwise(
        input,
        "dotprod",
        "dotprod",
        kernel,
        "  dotprod<<<(n + 255) / 256, 256>>>(n, d_x, d_y, d_partial);\n".to_string(),
        Some(format!(
            "  {t} sum = 0;\n\
             #pragma omp target teams distribute parallel for reduction(+:sum) map(to: x[0:n], y[0:n])\n\
             \x20 for (long i = 0; i < n; i++) sum += x[i] * y[i];\n\
             \x20 printf(\"dot = %f\\n\", (double)sum);\n"
        )),
        vec![
            ("x".into(), t.into(), "n".into()),
            ("y".into(), t.into(), "n".into()),
            ("partial".into(), t.into(), "4096".into()),
        ],
        ir,
    )
}

fn reduction(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("reduce_sum")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Const(4096))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::loop_n(
            Extent::Const(8),
            vec![
                Op::Shared(pce_gpu_sim::ir::Dir::Read),
                Op::Flop(input.precision),
                Op::Sync,
            ],
        ))
        .op(Op::Guard {
            fraction: 1.0 / 256.0,
            body: vec![Op::store("out", AccessPattern::Coalesced)],
        })
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let kernel = format!(
        "__global__ void reduce_sum(long n, const {t}* in, {t}* out) {{\n\
         \x20 __shared__ {t} buf[256];\n\
         \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
         \x20 buf[threadIdx.x] = (i < n) ? in[i] : 0;\n\
         \x20 __syncthreads();\n\
         \x20 for (int s = 128; s > 0; s >>= 1) {{\n\
         \x20   if (threadIdx.x < s) buf[threadIdx.x] += buf[threadIdx.x + s];\n\
         \x20   __syncthreads();\n\
         \x20 }}\n\
         \x20 if (threadIdx.x == 0) out[blockIdx.x] = buf[0];\n}}\n"
    );
    elementwise(
        input,
        "reduction",
        "reduce_sum",
        kernel,
        "  reduce_sum<<<(n + 255) / 256, 256>>>(n, d_in, d_out);\n".to_string(),
        Some(format!(
            "  {t} total = 0;\n\
             #pragma omp target teams distribute parallel for reduction(+:total) map(to: in[0:n])\n\
             \x20 for (long i = 0; i < n; i++) total += in[i];\n\
             \x20 printf(\"sum = %f\\n\", (double)total);\n"
        )),
        vec![
            ("in".into(), t.into(), "n".into()),
            ("out".into(), t.into(), "4096".into()),
        ],
        ir,
    )
}

fn stencil1d(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("stencil1d")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::Flop(input.precision))
        .op(Op::Flop(input.precision))
        .op(Op::Flop(input.precision))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch) * 0.999)
        .build();
    let third = input.lit("0.333333");
    elementwise(
        input,
        "stencil1d",
        "stencil1d",
        format!(
            "__global__ void stencil1d(long n, const {t}* in, {t}* out) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i > 0 && i < n - 1) {{\n\
             \x20   out[i] = (in[i - 1] + in[i] + in[i + 1]) * {third};\n\
             \x20 }}\n}}\n"
        ),
        "  stencil1d<<<(n + 255) / 256, 256>>>(n, d_in, d_out);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: in[0:n]) map(from: out[0:n])\n\
             \x20 for (long i = 1; i < n - 1; i++) out[i] = (in[i - 1] + in[i] + in[i + 1]) * {third};\n"
        )),
        vec![("in".into(), t.into(), "n".into()), ("out".into(), t.into(), "n".into())],
        ir,
    )
}

fn transpose(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let dim = (input.n as f64).sqrt() as u64;
    let dim = dim.max(32);
    let n2 = dim * dim;
    let launch = pce_gpu_sim::LaunchConfig::plane(dim, dim, 16, 16)
        .expect("corpus launch shapes are statically valid")
        .with_param("n", n2)
        .with_param("dim", dim);
    let ir = KernelIr::builder("transpose")
        .buffer("in", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .op(Op::load("in", AccessPattern::Coalesced))
        .op(Op::store("out", AccessPattern::Strided(32)))
        .guard_fraction((n2 as f64 / launch.total_threads() as f64).min(1.0))
        .build();
    let parts = ProgramParts {
        name: "transpose".into(),
        kernel_code: format!(
            "__global__ void transpose(long dim, const {t}* in, {t}* out) {{\n\
             \x20 long x = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 long y = blockIdx.y * (long)blockDim.y + threadIdx.y;\n\
             \x20 if (x < dim && y < dim) {{\n\
             \x20   out[x * dim + y] = in[y * dim + x];\n\
             \x20 }}\n}}\n"
        ),
        launch_code: "  dim3 block(16, 16);\n  dim3 grid((dim + 15) / 16, (dim + 15) / 16);\n\
             \x20 transpose<<<grid, block>>>(dim, d_in, d_out);\n"
            .to_string(),
        buffers: vec![
            ("in".into(), t.into(), "dim * dim".into()),
            ("out".into(), t.into(), "dim * dim".into()),
        ],
        scalars: vec![("dim".into(), "long".into(), format!("{dim}"))],
        extra_helpers: String::new(),
    };
    Variant {
        family: "transpose",
        kernel_name: "transpose".into(),
        ir,
        launch,
        cuda: assemble_cuda(&parts, input.verb()),
        omp: None,
        args: vec![dim.to_string()],
    }
}

fn gather(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("gather")
        .buffer("idx", 4, Extent::Param("n".into()))
        .buffer("src", input.elem(), Extent::Param("n".into()))
        .buffer("dst", input.elem(), Extent::Param("n".into()))
        .op(Op::load("idx", AccessPattern::Coalesced))
        .op(Op::load("src", AccessPattern::Random))
        .op(Op::store("dst", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    elementwise(
        input,
        "gather",
        "gather",
        format!(
            "__global__ void gather(long n, const int* idx, const {t}* src, {t}* dst) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) dst[i] = src[idx[i]];\n}}\n"
        ),
        "  gather<<<(n + 255) / 256, 256>>>(n, d_idx, d_src, d_dst);\n".to_string(),
        Some(
            "#pragma omp target teams distribute parallel for map(to: idx[0:n], src[0:n]) map(from: dst[0:n])\n\
             \x20 for (long i = 0; i < n; i++) dst[i] = src[idx[i]];\n"
                .to_string(),
        ),
        vec![
            ("idx".into(), "int".into(), "n".into()),
            ("src".into(), t.into(), "n".into()),
            ("dst".into(), t.into(), "n".into()),
        ],
        ir,
    )
}

fn scatter(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("scatter")
        .buffer("idx", 4, Extent::Param("n".into()))
        .buffer("src", input.elem(), Extent::Param("n".into()))
        .buffer("dst", input.elem(), Extent::Param("n".into()))
        .op(Op::load("idx", AccessPattern::Coalesced))
        .op(Op::load("src", AccessPattern::Coalesced))
        .op(Op::store("dst", AccessPattern::Random))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    elementwise(
        input,
        "scatter",
        "scatter",
        format!(
            "__global__ void scatter(long n, const int* idx, const {t}* src, {t}* dst) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i < n) dst[idx[i]] = src[i];\n}}\n"
        ),
        "  scatter<<<(n + 255) / 256, 256>>>(n, d_idx, d_src, d_dst);\n".to_string(),
        None,
        vec![
            ("idx".into(), "int".into(), "n".into()),
            ("src".into(), t.into(), "n".into()),
            ("dst".into(), t.into(), "n".into()),
        ],
        ir,
    )
}

fn histogram(input: &FamilyInput) -> Variant {
    let launch = linear_launch(input);
    let ir = KernelIr::builder("histogram")
        .buffer("data", 4, Extent::Param("n".into()))
        .buffer("bins", 4, Extent::Const(256))
        .op(Op::load("data", AccessPattern::Coalesced))
        .op(Op::int(IntKind::Simple))
        .op(Op::int(IntKind::Simple))
        // Atomic add into a small bin array: random within 1 KB.
        .op(Op::store("bins", AccessPattern::Random))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    elementwise(
        input,
        "histogram",
        "histogram",
        "__global__ void histogram(long n, const int* data, int* bins) {\n\
         \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
         \x20 if (i < n) {\n\
         \x20   int bin = (data[i] >> 4) & 255;\n\
         \x20   atomicAdd(&bins[bin], 1);\n\
         \x20 }\n}\n"
            .to_string(),
        "  histogram<<<(n + 255) / 256, 256>>>(n, d_data, d_bins);\n".to_string(),
        Some(
            "#pragma omp target teams distribute parallel for map(to: data[0:n]) map(tofrom: bins[0:256])\n\
             \x20 for (long i = 0; i < n; i++) {\n\
             \x20   int bin = (data[i] >> 4) & 255;\n\
             #pragma omp atomic\n\
             \x20   bins[bin]++;\n\
             \x20 }\n"
                .to_string(),
        ),
        vec![
            ("data".into(), "int".into(), "n".into()),
            ("bins".into(), "int".into(), "256".into()),
        ],
        ir,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_gpu_sim::{Precision, Profiler};
    use pce_roofline::{classify_joint, Boundedness, HardwareSpec};

    fn input(n: u64) -> FamilyInput {
        FamilyInput {
            n,
            iters: 1,
            precision: Precision::F32,
            verbosity: 1,
        }
    }

    #[test]
    fn streaming_families_profile_bandwidth_bound_at_scale() {
        let hw = HardwareSpec::rtx_3080();
        let prof = Profiler::new(hw.clone());
        for fam in families() {
            // Large sizes: footprints far beyond L2.
            let v = (fam.build)(&input(1 << 24));
            let p = prof.profile(&v.ir, &v.launch);
            let label = classify_joint(&hw, &p.counts).label;
            assert_eq!(
                label,
                Boundedness::Bandwidth,
                "{} should be BB at 16M elements",
                fam.name
            );
        }
    }

    #[test]
    fn saxpy_source_and_ir_agree_on_flops() {
        let v = saxpy(&input(1 << 20));
        // IR: one FMA = 2 flops per element.
        let summary = v.ir.summarize(&v.launch.params);
        assert_eq!(summary.costs.flops_sp, 2.0 * v.ir.active_fraction);
        // Source mentions the same computation.
        assert!(v.cuda.contains("a * x[i] + y[i]"));
    }

    #[test]
    fn transpose_has_strided_store_and_2d_launch() {
        let v = transpose(&input(1 << 20));
        assert!(v.cuda.contains("dim3 block(16, 16)"));
        assert_eq!(v.launch.block.count(), 256);
        assert!(v.omp.is_none());
    }

    #[test]
    fn dot_and_reduce_carry_shared_memory_reductions() {
        for build in [dotprod as fn(&FamilyInput) -> Variant, reduction] {
            let v = build(&input(1 << 20));
            assert!(v.cuda.contains("__shared__"));
            assert!(v.cuda.contains("__syncthreads"));
            let omp = v.omp.expect("has OMP port");
            assert!(omp.contains("reduction(+:"));
        }
    }

    #[test]
    fn histogram_is_integer_dominated() {
        let v = histogram(&input(1 << 22));
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&v.ir, &v.launch);
        assert!(p.counts.intops > 0);
        assert_eq!(p.counts.flops_sp, 0);
        assert_eq!(p.counts.flops_dp, 0);
    }

    #[test]
    fn args_encode_problem_size_first() {
        let v = vecadd(&input(12345));
        assert_eq!(v.args[0], "12345");
    }
}
