//! Compute-heavy families: iteration-dominated kernels with tiny memory
//! footprints relative to their arithmetic — the corpus's compute-bound
//! anchor (Monte-Carlo, fractals, n-body, crypto, polynomial evaluation).

use pce_gpu_sim::{AccessPattern, Extent, IntKind, KernelIr, Op, SpecialFn};

use crate::source::{assemble_cuda, assemble_omp, ProgramParts};

use super::{guard_fraction, linear_launch, Family, FamilyInput, Variant};

/// The compute-heavy family set.
pub fn families() -> Vec<Family> {
    vec![
        Family {
            name: "mandelbrot",
            has_omp: true,
            build: mandelbrot,
        },
        Family {
            name: "nbody",
            has_omp: true,
            build: nbody,
        },
        Family {
            name: "blackscholes",
            has_omp: true,
            build: blackscholes,
        },
        Family {
            name: "montecarlo",
            has_omp: true,
            build: montecarlo,
        },
        Family {
            name: "hashcrypt",
            has_omp: false,
            build: hashcrypt,
        },
        Family {
            name: "polyeval",
            has_omp: true,
            build: polyeval,
        },
        Family {
            name: "gelu",
            has_omp: true,
            build: gelu,
        },
        Family {
            name: "rngstream",
            has_omp: true,
            build: rngstream,
        },
        Family {
            name: "matexp",
            has_omp: false,
            build: matexp,
        },
    ]
}

#[allow(clippy::too_many_arguments)]
fn package(
    input: &FamilyInput,
    family: &'static str,
    kernel_name: &str,
    cuda_kernel: String,
    cuda_launch: String,
    omp_region: Option<String>,
    buffers: Vec<(String, String, String)>,
    scalars: Vec<(String, String, String)>,
    args: Vec<String>,
    ir: KernelIr,
    launch: pce_gpu_sim::LaunchConfig,
) -> Variant {
    let parts = ProgramParts {
        name: family.to_string(),
        kernel_code: cuda_kernel,
        launch_code: cuda_launch,
        buffers,
        scalars,
        extra_helpers: String::new(),
    };
    let cuda = assemble_cuda(&parts, input.verb());
    let omp = omp_region.map(|region| {
        let omp_parts = ProgramParts {
            kernel_code: String::new(),
            launch_code: region,
            ..parts.clone()
        };
        assemble_omp(&omp_parts, input.verb())
    });
    Variant {
        family,
        kernel_name: kernel_name.to_string(),
        ir,
        launch,
        cuda,
        omp,
        args,
    }
}

fn mandelbrot(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("mandelbrot")
        .buffer("out", 4, Extent::Param("n".into()))
        .op(Op::loop_n(
            Extent::Param("iters".into()),
            vec![
                Op::Fma(input.precision),
                Op::Fma(input.precision),
                Op::Flop(input.precision),
                Op::Flop(input.precision),
                Op::Flop(input.precision),
            ],
        ))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let two = input.lit("2.0");
    let four = input.lit("4.0");
    package(
        input,
        "mandelbrot",
        "mandelbrot",
        format!(
            "__global__ void mandelbrot(long n, int iters, int* out) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 {t} cx = ({t})(i % 1024) / 512 - 1.5;\n\
             \x20 {t} cy = ({t})(i / 1024) / 512 - 1.0;\n\
             \x20 {t} zx = 0, zy = 0;\n\
             \x20 int it = 0;\n\
             \x20 for (it = 0; it < iters; it++) {{\n\
             \x20   {t} nzx = zx * zx - zy * zy + cx;\n\
             \x20   zy = {two} * zx * zy + cy;\n\
             \x20   zx = nzx;\n\
             \x20   if (zx * zx + zy * zy > {four}) break;\n\
             \x20 }}\n\
             \x20 out[i] = it;\n}}\n"
        ),
        "  mandelbrot<<<(n + 255) / 256, 256>>>(n, iters, d_out);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(from: out[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   {t} cx = ({t})(i % 1024) / 512 - 1.5;\n\
             \x20   {t} cy = ({t})(i / 1024) / 512 - 1.0;\n\
             \x20   {t} zx = 0, zy = 0;\n\
             \x20   int it = 0;\n\
             \x20   for (it = 0; it < iters; it++) {{\n\
             \x20     {t} nzx = zx * zx - zy * zy + cx;\n\
             \x20     zy = {two} * zx * zy + cy;\n\
             \x20     zx = nzx;\n\
             \x20     if (zx * zx + zy * zy > {four}) break;\n\
             \x20   }}\n\
             \x20   out[i] = it;\n\
             \x20 }}\n"
        )),
        vec![("out".into(), "int".into(), "n".into())],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        vec![input.n.to_string(), input.iters.to_string()],
        ir,
        launch,
    )
}

fn nbody(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let bodies = input.n.clamp(1024, 65536);
    let launch = pce_gpu_sim::LaunchConfig::linear(bodies, 256)
        .expect("corpus launch shapes are statically valid")
        .with_param("n", bodies)
        .with_param("iters", input.iters);
    let ir = KernelIr::builder("nbody_force")
        .buffer("pos", input.elem() * 4, Extent::Param("n".into()))
        .buffer("acc", input.elem() * 4, Extent::Param("n".into()))
        .op(Op::load("pos", AccessPattern::Coalesced))
        .op(Op::loop_n(
            Extent::Param("n".into()),
            vec![
                Op::load("pos", AccessPattern::Broadcast),
                Op::Flop(input.precision),
                Op::Flop(input.precision),
                Op::Flop(input.precision),
                Op::Fma(input.precision),
                Op::Fma(input.precision),
                Op::Fma(input.precision),
                Op::Special(input.precision, SpecialFn::Rcp),
                Op::Special(input.precision, SpecialFn::Sqrt),
                Op::Fma(input.precision),
                Op::Fma(input.precision),
                Op::Fma(input.precision),
            ],
        ))
        .op(Op::store("acc", AccessPattern::Coalesced))
        .guard_fraction(bodies as f64 / launch.total_threads() as f64)
        .build();
    let soft = input.lit("1e-9");
    let rsq = input.fun("rsqrt");
    package(
        input,
        "nbody",
        "nbody_force",
        format!(
            "struct Body {{ {t} x, y, z, m; }};\n\
             __global__ void nbody_force(long n, const Body* pos, Body* acc) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 {t} ax = 0, ay = 0, az = 0;\n\
             \x20 Body pi = pos[i];\n\
             \x20 for (long j = 0; j < n; j++) {{\n\
             \x20   {t} dx = pos[j].x - pi.x;\n\
             \x20   {t} dy = pos[j].y - pi.y;\n\
             \x20   {t} dz = pos[j].z - pi.z;\n\
             \x20   {t} d2 = dx * dx + dy * dy + dz * dz + {soft};\n\
             \x20   {t} inv = {rsq}(d2);\n\
             \x20   {t} f = pos[j].m * inv * inv * inv;\n\
             \x20   ax += f * dx; ay += f * dy; az += f * dz;\n\
             \x20 }}\n\
             \x20 acc[i].x = ax; acc[i].y = ay; acc[i].z = az;\n}}\n"
        ),
        "  nbody_force<<<(n + 255) / 256, 256>>>(n, d_pos, d_acc);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: pos[0:n]) map(from: acc[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   {t} ax = 0, ay = 0, az = 0;\n\
             \x20   for (long j = 0; j < n; j++) {{\n\
             \x20     {t} dx = pos[j].x - pos[i].x;\n\
             \x20     {t} dy = pos[j].y - pos[i].y;\n\
             \x20     {t} dz = pos[j].z - pos[i].z;\n\
             \x20     {t} d2 = dx * dx + dy * dy + dz * dz + {soft};\n\
             \x20     {t} inv = 1 / sqrt(d2);\n\
             \x20     {t} f = pos[j].m * inv * inv * inv;\n\
             \x20     ax += f * dx; ay += f * dy; az += f * dz;\n\
             \x20   }}\n\
             \x20   acc[i].x = ax; acc[i].y = ay; acc[i].z = az;\n\
             \x20 }}\n"
        )),
        vec![
            ("pos".into(), "Body".into(), "n".into()),
            ("acc".into(), "Body".into(), "n".into()),
        ],
        vec![("n".into(), "long".into(), format!("{bodies}"))],
        vec![bodies.to_string()],
        ir,
        launch,
    )
}

fn blackscholes(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("blackscholes")
        .buffer("price", input.elem(), Extent::Param("n".into()))
        .buffer("strike", input.elem(), Extent::Param("n".into()))
        .buffer("call", input.elem(), Extent::Param("n".into()))
        .buffer("put", input.elem(), Extent::Param("n".into()))
        .op(Op::load("price", AccessPattern::Coalesced))
        .op(Op::load("strike", AccessPattern::Coalesced))
        .ops((0..8).map(|_| Op::Flop(input.precision)))
        .op(Op::Special(input.precision, SpecialFn::ExpLog))
        .op(Op::Special(input.precision, SpecialFn::ExpLog))
        .op(Op::Special(input.precision, SpecialFn::Sqrt))
        .ops((0..6).map(|_| Op::Fma(input.precision)))
        .op(Op::store("call", AccessPattern::Coalesced))
        .op(Op::store("put", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let logf = input.fun("log");
    let expf = input.fun("exp");
    let sqrtf = input.fun("sqrt");
    let r = input.lit("0.02");
    let v = input.lit("0.30");
    let tm = input.lit("1.0");
    package(
        input,
        "blackscholes",
        "blackscholes",
        format!(
            "__global__ void blackscholes(long n, const {t}* price, const {t}* strike, {t}* call, {t}* put) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 {t} s = price[i], k = strike[i];\n\
             \x20 {t} d1 = ({logf}(s / k) + ({r} + {v} * {v} / 2) * {tm}) / ({v} * {sqrtf}({tm}));\n\
             \x20 {t} d2 = d1 - {v} * {sqrtf}({tm});\n\
             \x20 {t} nd1 = 1 / (1 + {expf}(-d1 * 1.702));\n\
             \x20 {t} nd2 = 1 / (1 + {expf}(-d2 * 1.702));\n\
             \x20 call[i] = s * nd1 - k * {expf}(-{r} * {tm}) * nd2;\n\
             \x20 put[i] = call[i] - s + k * {expf}(-{r} * {tm});\n}}\n"
        ),
        "  blackscholes<<<(n + 255) / 256, 256>>>(n, d_price, d_strike, d_call, d_put);\n"
            .to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: price[0:n], strike[0:n]) map(from: call[0:n], put[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   {t} s = price[i], k = strike[i];\n\
             \x20   {t} d1 = ({logf}(s / k) + ({r} + {v} * {v} / 2) * {tm}) / ({v} * {sqrtf}({tm}));\n\
             \x20   {t} d2 = d1 - {v} * {sqrtf}({tm});\n\
             \x20   {t} nd1 = 1 / (1 + {expf}(-d1 * 1.702));\n\
             \x20   {t} nd2 = 1 / (1 + {expf}(-d2 * 1.702));\n\
             \x20   call[i] = s * nd1 - k * {expf}(-{r} * {tm}) * nd2;\n\
             \x20   put[i] = call[i] - s + k * {expf}(-{r} * {tm});\n\
             \x20 }}\n"
        )),
        vec![
            ("price".into(), t.into(), "n".into()),
            ("strike".into(), t.into(), "n".into()),
            ("call".into(), t.into(), "n".into()),
            ("put".into(), t.into(), "n".into()),
        ],
        vec![("n".into(), "long".into(), format!("{}", input.n))],
        vec![input.n.to_string()],
        ir,
        launch,
    )
}

fn montecarlo(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("mc_pi")
        .buffer("counts", 4, Extent::Param("n".into()))
        .op(Op::loop_n(
            Extent::Param("iters".into()),
            vec![
                Op::int(IntKind::Mul),
                Op::int(IntKind::Simple),
                Op::int(IntKind::Mul),
                Op::int(IntKind::Simple),
                Op::Flop(input.precision),
                Op::Flop(input.precision),
                Op::Fma(input.precision),
                Op::int(IntKind::Simple),
            ],
        ))
        .op(Op::store("counts", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let one = input.lit("1.0");
    let scale = input.lit("4.6566e-10");
    package(
        input,
        "montecarlo",
        "mc_pi",
        format!(
            "__global__ void mc_pi(long n, int iters, int* counts) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 unsigned state = (unsigned)(i * 2654435761u + 12345u);\n\
             \x20 int inside = 0;\n\
             \x20 for (int s = 0; s < iters; s++) {{\n\
             \x20   state = state * 1664525u + 1013904223u;\n\
             \x20   {t} x = ({t})state * {scale};\n\
             \x20   state = state * 1664525u + 1013904223u;\n\
             \x20   {t} y = ({t})state * {scale};\n\
             \x20   if (x * x + y * y < {one}) inside++;\n\
             \x20 }}\n\
             \x20 counts[i] = inside;\n}}\n"
        ),
        "  mc_pi<<<(n + 255) / 256, 256>>>(n, iters, d_counts);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(from: counts[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   unsigned state = (unsigned)(i * 2654435761u + 12345u);\n\
             \x20   int inside = 0;\n\
             \x20   for (int s = 0; s < iters; s++) {{\n\
             \x20     state = state * 1664525u + 1013904223u;\n\
             \x20     {t} x = ({t})state * {scale};\n\
             \x20     state = state * 1664525u + 1013904223u;\n\
             \x20     {t} y = ({t})state * {scale};\n\
             \x20     if (x * x + y * y < {one}) inside++;\n\
             \x20   }}\n\
             \x20   counts[i] = inside;\n\
             \x20 }}\n"
        )),
        vec![("counts".into(), "int".into(), "n".into())],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        vec![input.n.to_string(), input.iters.to_string()],
        ir,
        launch,
    )
}

fn hashcrypt(input: &FamilyInput) -> Variant {
    let launch = linear_launch(input);
    let ir = KernelIr::builder("hash_rounds")
        .buffer("msg", 4, Extent::Param("n".into()))
        .buffer("digest", 4, Extent::Param("n".into()))
        .op(Op::load("msg", AccessPattern::Coalesced))
        .op(Op::loop_n(
            Extent::Param("iters".into()),
            vec![
                Op::int(IntKind::Mul),
                Op::int(IntKind::Simple),
                Op::int(IntKind::Simple),
                Op::int(IntKind::Simple),
                Op::int(IntKind::Mul),
                Op::int(IntKind::Simple),
            ],
        ))
        .op(Op::store("digest", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    package(
        input,
        "hashcrypt",
        "hash_rounds",
        "__global__ void hash_rounds(long n, int iters, const unsigned* msg, unsigned* digest) {\n\
         \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
         \x20 if (i >= n) return;\n\
         \x20 unsigned h = msg[i];\n\
         \x20 for (int r = 0; r < iters; r++) {\n\
         \x20   h = h * 0x9e3779b1u;\n\
         \x20   h ^= h >> 15;\n\
         \x20   h += 0x85ebca6bu;\n\
         \x20   h = (h << 13) | (h >> 19);\n\
         \x20   h = h * 5u + 0xe6546b64u;\n\
         \x20 }\n\
         \x20 digest[i] = h;\n}\n"
            .to_string(),
        "  hash_rounds<<<(n + 255) / 256, 256>>>(n, iters, d_msg, d_digest);\n".to_string(),
        None,
        vec![
            ("msg".into(), "unsigned".into(), "n".into()),
            ("digest".into(), "unsigned".into(), "n".into()),
        ],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        vec![input.n.to_string(), input.iters.to_string()],
        ir,
        launch,
    )
}

fn polyeval(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let degree = (input.iters).clamp(8, 512);
    let launch = linear_launch(input).with_param("degree", degree);
    let ir = KernelIr::builder("polyeval")
        .buffer("x", input.elem(), Extent::Param("n".into()))
        .buffer("coef", input.elem(), Extent::Const(512))
        .buffer("y", input.elem(), Extent::Param("n".into()))
        .op(Op::load("x", AccessPattern::Coalesced))
        .op(Op::loop_n(
            Extent::Param("degree".into()),
            vec![
                Op::load("coef", AccessPattern::Broadcast),
                Op::Fma(input.precision),
            ],
        ))
        .op(Op::store("y", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    package(
        input,
        "polyeval",
        "polyeval",
        format!(
            "__global__ void polyeval(long n, int degree, const {t}* x, const {t}* coef, {t}* y) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 {t} v = x[i];\n\
             \x20 {t} acc = coef[0];\n\
             \x20 for (int d = 1; d < degree; d++) {{\n\
             \x20   acc = acc * v + coef[d];\n\
             \x20 }}\n\
             \x20 y[i] = acc;\n}}\n"
        ),
        "  polyeval<<<(n + 255) / 256, 256>>>(n, degree, d_x, d_coef, d_y);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: x[0:n], coef[0:512]) map(from: y[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   {t} v = x[i];\n\
             \x20   {t} acc = coef[0];\n\
             \x20   for (int d = 1; d < degree; d++) acc = acc * v + coef[d];\n\
             \x20   y[i] = acc;\n\
             \x20 }}\n"
        )),
        vec![
            ("x".into(), t.into(), "n".into()),
            ("coef".into(), t.into(), "512".into()),
            ("y".into(), t.into(), "n".into()),
        ],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("degree".into(), "int".into(), format!("{degree}")),
        ],
        vec![input.n.to_string(), degree.to_string()],
        ir,
        launch,
    )
}

fn gelu(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    let ir = KernelIr::builder("gelu_fwd")
        .buffer("x", input.elem(), Extent::Param("n".into()))
        .buffer("y", input.elem(), Extent::Param("n".into()))
        .op(Op::load("x", AccessPattern::Coalesced))
        .ops((0..5).map(|_| Op::Flop(input.precision)))
        .op(Op::Special(input.precision, SpecialFn::Trig))
        .ops((0..2).map(|_| Op::Fma(input.precision)))
        .op(Op::store("y", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    let tanhf = input.fun("tanh");
    let c0 = input.lit("0.79788456");
    let c1 = input.lit("0.044715");
    let half = input.lit("0.5");
    let one = input.lit("1.0");
    package(
        input,
        "gelu",
        "gelu_fwd",
        format!(
            "__global__ void gelu_fwd(long n, const {t}* x, {t}* y) {{\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (i >= n) return;\n\
             \x20 {t} v = x[i];\n\
             \x20 {t} inner = {c0} * (v + {c1} * v * v * v);\n\
             \x20 y[i] = {half} * v * ({one} + {tanhf}(inner));\n}}\n"
        ),
        "  gelu_fwd<<<(n + 255) / 256, 256>>>(n, d_x, d_y);\n".to_string(),
        Some(format!(
            "#pragma omp target teams distribute parallel for map(to: x[0:n]) map(from: y[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {{\n\
             \x20   {t} v = x[i];\n\
             \x20   {t} inner = {c0} * (v + {c1} * v * v * v);\n\
             \x20   y[i] = {half} * v * ({one} + {tanhf}(inner));\n\
             \x20 }}\n"
        )),
        vec![
            ("x".into(), t.into(), "n".into()),
            ("y".into(), t.into(), "n".into()),
        ],
        vec![("n".into(), "long".into(), format!("{}", input.n))],
        vec![input.n.to_string()],
        ir,
        launch,
    )
}

fn rngstream(input: &FamilyInput) -> Variant {
    let launch = linear_launch(input);
    let ir = KernelIr::builder("rng_fill")
        .buffer("out", 4, Extent::Param("n".into()))
        .op(Op::loop_n(
            Extent::Param("iters".into()),
            vec![
                Op::int(IntKind::Mul),
                Op::int(IntKind::Simple),
                Op::int(IntKind::Simple),
            ],
        ))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    package(
        input,
        "rngstream",
        "rng_fill",
        "__global__ void rng_fill(long n, int iters, unsigned* out) {\n\
         \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
         \x20 if (i >= n) return;\n\
         \x20 unsigned state = (unsigned)i + 88172645u;\n\
         \x20 for (int r = 0; r < iters; r++) {\n\
         \x20   state ^= state << 13;\n\
         \x20   state ^= state >> 17;\n\
         \x20   state ^= state << 5;\n\
         \x20 }\n\
         \x20 out[i] = state;\n}\n"
            .to_string(),
        "  rng_fill<<<(n + 255) / 256, 256>>>(n, iters, d_out);\n".to_string(),
        Some(
            "#pragma omp target teams distribute parallel for map(from: out[0:n])\n\
             \x20 for (long i = 0; i < n; i++) {\n\
             \x20   unsigned state = (unsigned)i + 88172645u;\n\
             \x20   for (int r = 0; r < iters; r++) {\n\
             \x20     state ^= state << 13;\n\
             \x20     state ^= state >> 17;\n\
             \x20     state ^= state << 5;\n\
             \x20   }\n\
             \x20   out[i] = state;\n\
             \x20 }\n"
                .to_string(),
        ),
        vec![("out".into(), "unsigned".into(), "n".into())],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        vec![input.n.to_string(), input.iters.to_string()],
        ir,
        launch,
    )
}

fn matexp(input: &FamilyInput) -> Variant {
    let t = input.c_type();
    let launch = linear_launch(input);
    // Each thread raises its own 4x4 matrix to the `iters` power:
    // 4x4 matmul = 64 FMA + bookkeeping, repeated `iters` times.
    let ir = KernelIr::builder("matexp4")
        .buffer("mats", input.elem(), Extent::Param("n".into()))
        .buffer("out", input.elem(), Extent::Param("n".into()))
        .op(Op::load("mats", AccessPattern::Coalesced))
        .op(Op::loop_n(
            Extent::Param("iters".into()),
            vec![Op::loop_n(
                Extent::Const(64),
                vec![Op::Fma(input.precision)],
            )],
        ))
        .op(Op::store("out", AccessPattern::Coalesced))
        .guard_fraction(guard_fraction(input, &launch))
        .build();
    package(
        input,
        "matexp",
        "matexp4",
        format!(
            "__global__ void matexp4(long n, int iters, const {t}* mats, {t}* out) {{\n\
             \x20 long idx = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 if (idx >= n) return;\n\
             \x20 {t} m[16], r[16], tmp[16];\n\
             \x20 for (int e = 0; e < 16; e++) {{ m[e] = mats[(idx * 16 + e) % n]; r[e] = (e % 5 == 0) ? 1 : 0; }}\n\
             \x20 for (int p = 0; p < iters; p++) {{\n\
             \x20   for (int row = 0; row < 4; row++) {{\n\
             \x20     for (int col = 0; col < 4; col++) {{\n\
             \x20       {t} acc = 0;\n\
             \x20       for (int k = 0; k < 4; k++) acc += r[row * 4 + k] * m[k * 4 + col];\n\
             \x20       tmp[row * 4 + col] = acc;\n\
             \x20     }}\n\
             \x20   }}\n\
             \x20   for (int e = 0; e < 16; e++) r[e] = tmp[e];\n\
             \x20 }}\n\
             \x20 out[idx] = r[0];\n}}\n"
        ),
        "  matexp4<<<(n + 255) / 256, 256>>>(n, iters, d_mats, d_out);\n".to_string(),
        None,
        vec![
            ("mats".into(), t.into(), "n".into()),
            ("out".into(), t.into(), "n".into()),
        ],
        vec![
            ("n".into(), "long".into(), format!("{}", input.n)),
            ("iters".into(), "int".into(), format!("{}", input.iters)),
        ],
        vec![input.n.to_string(), input.iters.to_string()],
        ir,
        launch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_gpu_sim::{Precision, Profiler};
    use pce_roofline::{classify_joint, Boundedness, HardwareSpec, OpClass};

    fn input(n: u64, iters: u64) -> FamilyInput {
        FamilyInput {
            n,
            iters,
            precision: Precision::F32,
            verbosity: 1,
        }
    }

    #[test]
    fn iteration_heavy_kernels_profile_compute_bound() {
        let hw = HardwareSpec::rtx_3080();
        let prof = Profiler::new(hw.clone());
        for build in [
            mandelbrot as fn(&FamilyInput) -> Variant,
            montecarlo,
            hashcrypt,
            matexp,
        ] {
            let v = build(&input(1 << 20, 500));
            let p = prof.profile(&v.ir, &v.launch);
            assert_eq!(
                classify_joint(&hw, &p.counts).label,
                Boundedness::Compute,
                "{} with 500 iters must be CB",
                v.family
            );
        }
    }

    #[test]
    fn rngstream_with_few_iters_is_bandwidth_bound() {
        let hw = HardwareSpec::rtx_3080();
        let v = rngstream(&input(1 << 24, 2));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Bandwidth);
    }

    #[test]
    fn rngstream_with_many_iters_flips_to_compute_bound() {
        let hw = HardwareSpec::rtx_3080();
        let v = rngstream(&input(1 << 24, 2000));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        let joint = classify_joint(&hw, &p.counts);
        assert_eq!(joint.label, Boundedness::Compute);
        assert!(joint.compute_bound_classes().contains(&OpClass::Int));
    }

    #[test]
    fn nbody_is_compute_bound_via_inner_loop_reuse() {
        let hw = HardwareSpec::rtx_3080();
        let v = nbody(&input(16384, 1));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Compute);
    }

    #[test]
    fn hashcrypt_is_integer_only() {
        let v = hashcrypt(&input(1 << 20, 100));
        let p = Profiler::new(HardwareSpec::rtx_3080()).profile(&v.ir, &v.launch);
        assert_eq!(p.counts.flops_sp, 0);
        assert_eq!(p.counts.flops_dp, 0);
        assert!(p.counts.intops > 0);
    }

    #[test]
    fn blackscholes_sp_is_bandwidth_bound_on_3080() {
        let hw = HardwareSpec::rtx_3080();
        let v = blackscholes(&input(1 << 24, 1));
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Bandwidth);
    }

    #[test]
    fn blackscholes_dp_is_compute_bound_on_3080() {
        let hw = HardwareSpec::rtx_3080();
        let dp = FamilyInput {
            precision: Precision::F64,
            ..input(1 << 24, 1)
        };
        let v = blackscholes(&dp);
        let p = Profiler::new(hw.clone()).profile(&v.ir, &v.launch);
        assert_eq!(classify_joint(&hw, &p.counts).label, Boundedness::Compute);
    }

    #[test]
    fn polyeval_degree_controls_the_class() {
        let hw = HardwareSpec::rtx_3080();
        let prof = Profiler::new(hw.clone());
        let low = polyeval(&input(1 << 24, 8));
        let high = polyeval(&input(1 << 24, 512));
        let p_low = prof.profile(&low.ir, &low.launch);
        let p_high = prof.profile(&high.ir, &high.launch);
        assert_eq!(
            classify_joint(&hw, &p_low.counts).label,
            Boundedness::Bandwidth
        );
        assert_eq!(
            classify_joint(&hw, &p_high.counts).label,
            Boundedness::Compute
        );
    }

    #[test]
    fn sources_mention_their_iteration_args() {
        let v = montecarlo(&input(1000, 77));
        assert!(v.cuda.contains("iters"));
        assert_eq!(v.args, vec!["1000".to_string(), "77".to_string()]);
    }
}
