//! Streaming corpus generation with parametric variant expansion.
//!
//! The paper's corpus is ~750 programs — far too few for the suite's
//! flip/transfer statistics. This module scales generation two ways:
//!
//! * **Variant axes** ([`VariantAxes`]): every base program expands into a
//!   cross product of problem-size shifts, datatype flips, unroll-pragma
//!   factors, and fused-op chain lengths. A 210-program smoke corpus with
//!   modest axes becomes a 10k+-variant corpus without new family code.
//! * **Lazy streaming** ([`CorpusStream`]): programs are generated on
//!   demand, in a deterministic order, from nothing but the spec and an
//!   index. Nothing is materialized until a consumer asks, and any
//!   sub-range can be regenerated independently — which is what lets the
//!   dataset pipeline run in bounded-memory shards.
//!
//! [`build_corpus`](crate::build_corpus) is now just the eager consumer:
//! `CorpusSpec::materialized(cfg).stream().collect()`. With all axes empty
//! the stream yields byte-identical programs (same ids, same order) to the
//! historical materialized builder — the invariant the whole refactor
//! hangs on.
//!
//! Many variants are *near-duplicates by construction*: an unroll pragma
//! changes the source text but not the kernel IR or launch, and a
//! precision flip on an integer-only family changes nothing at all. The
//! profile memos downstream absorb these — the pipeline reports the
//! resulting dedup hit rate.

use serde::{Deserialize, Serialize};

use pce_fault::PceError;
use pce_gpu_sim::{Op, Precision};

use crate::corpus::{sample_input, weighted_families, CorpusConfig, Program};
use crate::families::Family;
use crate::source::Language;

/// Parametric variant axes: every base program expands into the cross
/// product of these lists (each axis contributes its identity variant, so
/// empty axes mean no expansion).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariantAxes {
    /// Problem-size shifts in log2 steps: a shift of `2` rebuilds the
    /// program with `4×` the sampled element count (clamped to
    /// `2^10..=2^28`), moving it along the arithmetic-intensity axis.
    #[serde(default)]
    pub size_shifts: Vec<i8>,
    /// Rebuild each program with the opposite floating-point precision
    /// (datatype mix). Integer-only families render identically under the
    /// flip — those variants are pure duplicates the profile memo absorbs.
    #[serde(default)]
    pub flip_precision: bool,
    /// Unroll factors: each injects `#pragma unroll N` ahead of the
    /// kernel's first loop. Source-only — the IR and launch are untouched,
    /// so these variants dedup to their base at profiling time.
    #[serde(default)]
    pub unroll: Vec<u32>,
    /// Fused-op chain lengths: each appends N fused multiply-add stages
    /// to the kernel IR (and a matching epilogue helper to the source),
    /// raising arithmetic intensity — genuinely new work, not a duplicate.
    #[serde(default)]
    pub fused: Vec<u32>,
}

impl VariantAxes {
    /// Axes that expand nothing: every base program yields exactly its
    /// identity variant.
    pub fn none() -> VariantAxes {
        VariantAxes::default()
    }

    /// Variants generated per base program (≥ 1).
    pub fn expansion_factor(&self) -> usize {
        (1 + self.size_shifts.len())
            * (1 + usize::from(self.flip_precision))
            * (1 + self.unroll.len())
            * (1 + self.fused.len())
    }

    /// Whether these axes expand nothing.
    pub fn is_identity(&self) -> bool {
        self.expansion_factor() == 1
    }

    /// A modest default expansion for scale runs: 2 size shifts ×
    /// precision flip × 3 unroll factors × 2 fused chains = 48 variants
    /// per base program.
    pub fn scale() -> VariantAxes {
        VariantAxes {
            size_shifts: vec![-2, 2],
            flip_precision: true,
            unroll: vec![2, 4, 8],
            fused: vec![8, 32],
        }
    }
}

/// A corpus specification: the base generation config plus variant axes.
/// The total stream length is `(cuda + omp) × expansion_factor`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Base corpus parameters (seed, per-language program counts).
    pub base: CorpusConfig,
    /// Variant expansion axes.
    #[serde(default)]
    pub axes: VariantAxes,
}

impl CorpusSpec {
    /// The spec equivalent to the historical materialized builder: no
    /// variant expansion. `spec.stream()` then yields byte-identical
    /// programs to `build_corpus(&cfg)`.
    pub fn materialized(base: CorpusConfig) -> CorpusSpec {
        CorpusSpec {
            base,
            axes: VariantAxes::none(),
        }
    }

    /// Total number of programs the stream yields.
    pub fn len(&self) -> usize {
        (self.base.cuda_programs + self.base.omp_programs) * self.axes.expansion_factor()
    }

    /// Whether the stream yields nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A lazy iterator over the whole corpus, in deterministic order:
    /// base programs in the historical order, each immediately followed
    /// by its expanded variants.
    pub fn stream(&self) -> CorpusStream {
        CorpusStream::new(self.clone(), 0, self.len())
    }

    /// A lazy iterator over the index range `start..end` (clamped to the
    /// corpus length) — the shard primitive: any sub-range regenerates
    /// independently of the rest of the corpus.
    pub fn stream_range(&self, start: usize, end: usize) -> CorpusStream {
        let end = end.min(self.len());
        CorpusStream::new(self.clone(), start.min(end), end)
    }

    /// Generate the program at stream index `k` (random access). Every
    /// program derives from the spec and its index alone, so shards never
    /// need the rest of the corpus in memory.
    pub fn program(&self, k: usize) -> Result<Program, PceError> {
        let (fams, omp_fams) = weighted_families();
        generate(self, &fams, &omp_fams, k)
    }
}

/// A lazy, deterministic iterator over a [`CorpusSpec`]'s programs.
///
/// Yields `Result<Program, PceError>`: generation fails only on a family
/// registry violation (a family advertising an OMP port it does not
/// render), surfaced as [`PceError::Spec`] instead of a panic.
pub struct CorpusStream {
    spec: CorpusSpec,
    fams: Vec<Family>,
    omp_fams: Vec<Family>,
    next: usize,
    end: usize,
}

impl std::fmt::Debug for CorpusStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CorpusStream")
            .field("next", &self.next)
            .field("end", &self.end)
            .finish_non_exhaustive()
    }
}

impl CorpusStream {
    fn new(spec: CorpusSpec, start: usize, end: usize) -> CorpusStream {
        let (fams, omp_fams) = weighted_families();
        CorpusStream {
            spec,
            fams,
            omp_fams,
            next: start,
            end,
        }
    }

    /// Programs remaining in the stream.
    pub fn remaining(&self) -> usize {
        self.end - self.next
    }
}

impl Iterator for CorpusStream {
    type Item = Result<Program, PceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.end {
            return None;
        }
        let k = self.next;
        self.next += 1;
        Some(generate(&self.spec, &self.fams, &self.omp_fams, k))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining(), Some(self.remaining()))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// One decoded variant selection: which entry of each axis applies
/// (`None` = the identity on that axis).
struct VariantSel {
    size_shift: Option<i8>,
    flip_precision: bool,
    unroll: Option<u32>,
    fused: Option<u32>,
}

/// Decode variant index `v` (mixed radix, identity-first on every axis).
fn decode_variant(axes: &VariantAxes, mut v: usize) -> VariantSel {
    let pick = |v: &mut usize, len: usize| -> Option<usize> {
        let radix = len + 1;
        let digit = *v % radix;
        *v /= radix;
        digit.checked_sub(1)
    };
    let fused = pick(&mut v, axes.fused.len()).map(|i| axes.fused[i]);
    let unroll = pick(&mut v, axes.unroll.len()).map(|i| axes.unroll[i]);
    let flip = axes.flip_precision && {
        let f = v % 2;
        v /= 2;
        f == 1
    };
    let size_shift = pick(&mut v, axes.size_shifts.len()).map(|i| axes.size_shifts[i]);
    VariantSel {
        size_shift,
        flip_precision: flip,
        unroll,
        fused,
    }
}

/// Generate the program at stream index `k`.
fn generate(
    spec: &CorpusSpec,
    fams: &[Family],
    omp_fams: &[Family],
    k: usize,
) -> Result<Program, PceError> {
    let factor = spec.axes.expansion_factor();
    let base_slot = k / factor;
    let v = k % factor;
    let (language, index, fam) = if base_slot < spec.base.cuda_programs {
        (Language::Cuda, base_slot, &fams[base_slot % fams.len()])
    } else {
        let i = base_slot - spec.base.cuda_programs;
        if i >= spec.base.omp_programs {
            return Err(PceError::spec(format!(
                "stream index {k} beyond corpus length {}",
                spec.len()
            )));
        }
        (Language::Omp, i, &omp_fams[i % omp_fams.len()])
    };

    let sel = decode_variant(&spec.axes, v);
    let mut input = sample_input(spec.base.seed, language, fam.name, index);
    if let Some(shift) = sel.size_shift {
        input.n = shift_n(input.n, shift);
    }
    if sel.flip_precision {
        input.precision = match input.precision {
            Precision::F32 => Precision::F64,
            Precision::F64 => Precision::F32,
        };
    }

    let variant = (fam.build)(&input);
    let mut source = match language {
        Language::Cuda => variant.cuda,
        Language::Omp => variant.omp.ok_or_else(|| {
            PceError::spec(format!(
                "family '{}' advertises an OMP port but rendered none",
                fam.name
            ))
        })?,
    };
    let mut ir = variant.ir;

    if let Some(factor) = sel.unroll {
        source = inject_unroll(&source, factor, language);
    }
    if let Some(stages) = sel.fused {
        append_fused_chain(&mut source, &mut ir, stages, input.precision, language);
    }

    let lang_tag = match language {
        Language::Cuda => "cuda",
        Language::Omp => "omp",
    };
    let id = if v == 0 {
        format!("{lang_tag}-{}-{index:04}", fam.name)
    } else {
        format!("{lang_tag}-{}-{index:04}-v{v:03}", fam.name)
    };
    Ok(Program {
        id,
        family: fam.name.to_string(),
        language,
        source,
        kernel_name: variant.kernel_name,
        ir,
        launch: variant.launch,
        args: variant.args,
    })
}

/// Shift a problem size by `shift` log2 steps, clamped to `2^10..=2^28`
/// (the launch shapes every family supports).
fn shift_n(n: u64, shift: i8) -> u64 {
    let scaled = if shift >= 0 {
        n.saturating_mul(1u64 << shift.min(20) as u32)
    } else {
        n >> (-shift).min(20) as u32
    };
    scaled.clamp(1 << 10, 1 << 28)
}

/// Inject `#pragma unroll N` ahead of the kernel's first `for (` loop —
/// after the kernel marker so host-side helper loops are skipped. Source
/// text only: the IR and launch stay byte-identical to the base variant.
fn inject_unroll(source: &str, factor: u32, language: Language) -> String {
    let marker = match language {
        Language::Cuda => "__global__",
        Language::Omp => "#pragma omp target",
    };
    let from = source.find(marker).unwrap_or(0);
    let Some(rel) = source[from..].find("for (") else {
        return source.to_string();
    };
    let at = from + rel;
    let line_start = source[..at].rfind('\n').map(|p| p + 1).unwrap_or(0);
    let indent: String = source[line_start..at]
        .chars()
        .take_while(|c| *c == ' ')
        .collect();
    let mut out = String::with_capacity(source.len() + 32);
    out.push_str(&source[..line_start]);
    out.push_str(&indent);
    out.push_str(&format!("#pragma unroll {factor}\n"));
    out.push_str(&source[line_start..]);
    out
}

/// Append a fused multiply-add chain: `stages` extra FMA ops on the kernel
/// IR (raising arithmetic intensity) plus a matching epilogue helper in
/// the source text.
fn append_fused_chain(
    source: &mut String,
    ir: &mut pce_gpu_sim::KernelIr,
    stages: u32,
    precision: Precision,
    language: Language,
) {
    for _ in 0..stages {
        ir.body.push(Op::fma(precision));
    }
    let (ct, suffix) = match precision {
        Precision::F32 => ("float", "f"),
        Precision::F64 => ("double", ""),
    };
    let qualifier = match language {
        Language::Cuda => "__device__ __forceinline__",
        Language::Omp => "static inline",
    };
    source.push_str(&format!(
        "\n// ---- fused epilogue ({stages} fma stages) -----------------------\n\
         // Additional in-register arithmetic applied to the kernel's output\n\
         // value before the final store; keeps the memory footprint fixed\n\
         // while raising arithmetic intensity.\n\
         {qualifier} {ct} fused_chain_{stages}({ct} v) {{\n"
    ));
    for s in 0..stages {
        let scale = 1.0 + 1.0 / (1024.0 + s as f64);
        source.push_str(&format!(
            "  v = v * {scale:.12}{suffix} + {off:.12}{suffix};\n",
            off = 1.0 / (4096.0 + s as f64)
        ));
    }
    source.push_str("  return v;\n}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::build_corpus;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            seed: 42,
            cuda_programs: 12,
            omp_programs: 9,
        }
    }

    fn scale_axes() -> VariantAxes {
        VariantAxes {
            size_shifts: vec![-2, 2],
            flip_precision: true,
            unroll: vec![4],
            fused: vec![16],
        }
    }

    #[test]
    fn identity_stream_matches_materialized_builder() {
        let cfg = small_cfg();
        let eager = build_corpus(&cfg).expect("corpus builds");
        let streamed: Vec<_> = CorpusSpec::materialized(cfg)
            .stream()
            .collect::<Result<_, _>>()
            .expect("stream builds");
        assert_eq!(eager, streamed);
    }

    #[test]
    fn expansion_factor_multiplies_stream_length() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: scale_axes(),
        };
        assert_eq!(spec.axes.expansion_factor(), 3 * 2 * 2 * 2);
        assert_eq!(spec.len(), 21 * 24);
        let programs: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        assert_eq!(programs.len(), spec.len());
    }

    #[test]
    fn variant_ids_are_unique_and_identity_keeps_base_ids() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: scale_axes(),
        };
        let programs: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        let mut ids: Vec<_> = programs.iter().map(|p| p.id.clone()).collect();
        ids.sort();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate variant ids");
        // Every expansion_factor-th program is the identity variant with
        // the historical id.
        let factor = spec.axes.expansion_factor();
        let base = build_corpus(&spec.base).expect("corpus builds");
        for (b, p) in base.iter().zip(programs.iter().step_by(factor)) {
            assert_eq!(b, p, "identity variant must equal the base program");
        }
    }

    #[test]
    fn random_access_matches_the_stream() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: scale_axes(),
        };
        let all: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        for k in [0usize, 1, 23, 24, 100, spec.len() - 1] {
            assert_eq!(
                all[k],
                spec.program(k).expect("program builds"),
                "index {k}"
            );
        }
        assert!(spec.program(spec.len() + 7).is_err());
    }

    #[test]
    fn range_streams_shard_cleanly() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: scale_axes(),
        };
        let all: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        let mut sharded = Vec::new();
        let shard = 37;
        let mut at = 0;
        while at < spec.len() {
            let chunk: Vec<_> = spec
                .stream_range(at, at + shard)
                .collect::<Result<_, _>>()
                .expect("shard builds");
            sharded.extend(chunk);
            at += shard;
        }
        assert_eq!(all, sharded);
    }

    #[test]
    fn unroll_variants_share_ir_with_their_base() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: VariantAxes {
                unroll: vec![4],
                ..VariantAxes::none()
            },
        };
        let programs: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        for pair in programs.chunks(2) {
            let (base, unrolled) = (&pair[0], &pair[1]);
            assert_eq!(base.ir, unrolled.ir, "{}", unrolled.id);
            assert_eq!(base.launch, unrolled.launch, "{}", unrolled.id);
            assert_ne!(base.id, unrolled.id);
        }
        // At least some sources actually carry the pragma (families whose
        // kernel has no textual loop pass through unchanged).
        let with_pragma = programs
            .iter()
            .filter(|p| p.source.contains("#pragma unroll 4"))
            .count();
        assert!(with_pragma > 0, "no variant carried the unroll pragma");
    }

    #[test]
    fn fused_variants_extend_the_ir_and_validate() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: VariantAxes {
                fused: vec![16],
                ..VariantAxes::none()
            },
        };
        let programs: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        for pair in programs.chunks(2) {
            let (base, fused) = (&pair[0], &pair[1]);
            assert_eq!(fused.ir.body.len(), base.ir.body.len() + 16, "{}", fused.id);
            assert!(fused.ir.validate().is_empty(), "{}", fused.id);
            assert!(fused.source.contains("fused_chain_16"), "{}", fused.id);
            assert_eq!(base.launch, fused.launch);
        }
    }

    #[test]
    fn size_shift_moves_the_launch_params() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: VariantAxes {
                size_shifts: vec![2],
                ..VariantAxes::none()
            },
        };
        let programs: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        let mut grew = 0;
        for pair in programs.chunks(2) {
            let (base, shifted) = (&pair[0], &pair[1]);
            let n0 = base.launch.params.get("n").copied().unwrap_or(0);
            let n1 = shifted.launch.params.get("n").copied().unwrap_or(0);
            if n1 > n0 {
                grew += 1;
            }
            assert!(n1 <= 1 << 28, "{}: n={n1} beyond clamp", shifted.id);
        }
        assert!(grew > 0, "no size-shift variant grew its problem size");
    }

    #[test]
    fn streaming_is_deterministic() {
        let spec = CorpusSpec {
            base: small_cfg(),
            axes: scale_axes(),
        };
        let a: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        let b: Vec<_> = spec.stream().collect::<Result<_, _>>().expect("builds");
        assert_eq!(a, b);
    }

    #[test]
    fn shift_n_clamps_to_supported_sizes() {
        assert_eq!(shift_n(1 << 20, 2), 1 << 22);
        assert_eq!(shift_n(1 << 20, -2), 1 << 18);
        assert_eq!(shift_n(1 << 11, -8), 1 << 10);
        assert_eq!(shift_n(1 << 27, 8), 1 << 28);
    }

    #[test]
    fn axes_serde_default_is_identity() {
        let spec: CorpusSpec =
            serde_json::from_str(r#"{"base":{"seed":1,"cuda_programs":2,"omp_programs":1}}"#)
                .expect("spec parses");
        assert!(spec.axes.is_identity());
        assert_eq!(spec.len(), 3);
    }
}
