//! Program-text assembly: wrap a kernel body into a complete benchmark
//! program (headers, helpers, host harness, argument parsing) in either
//! CUDA or OpenMP-offload dialect.
//!
//! The assembler's *verbosity* knob controls how much non-kernel scaffolding
//! a program carries (validation code, timing helpers, long banners). This
//! is what gives the corpus the heavy-tailed token distribution the paper
//! prunes at 8 000 tokens (§2.2) — in real HeCBench, program length varies
//! wildly for exactly these reasons.

use serde::{Deserialize, Serialize};

/// Corpus language, matching the paper's two HeCBench subsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Language {
    /// CUDA C++.
    Cuda,
    /// OpenMP target offload C++.
    Omp,
}

impl Language {
    /// Label used in prompts ("CUDA" / "OMP", as the paper abbreviates).
    pub fn label(self) -> &'static str {
        match self {
            Language::Cuda => "CUDA",
            Language::Omp => "OMP",
        }
    }

    /// The hardware class this language targets: CUDA kernels run on a
    /// GPU, the OpenMP-offload half of the corpus is labeled against a
    /// CPU roofline. This is the single routing point the whole pipeline
    /// (profiling, labeling, prompts, suite) keys spec choice on.
    pub fn spec_class(self) -> pce_roofline::SpecClass {
        match self {
            Language::Cuda => pce_roofline::SpecClass::Gpu,
            Language::Omp => pce_roofline::SpecClass::Cpu,
        }
    }
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Scaffolding richness of the generated program, 0 (bare) to 3 (bloated).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verbosity(pub u8);

/// Everything needed to assemble one program's source text.
#[derive(Debug, Clone)]
pub struct ProgramParts {
    /// Benchmark name (family + variant), used in banners and filenames.
    pub name: String,
    /// The kernel definition(s), already rendered in the target dialect.
    pub kernel_code: String,
    /// Host-side launch statement(s).
    pub launch_code: String,
    /// Buffer declarations: `(name, c_type, length_expr)`.
    pub buffers: Vec<(String, String, String)>,
    /// Scalar argument declarations parsed from argv:
    /// `(name, c_type, default)` — position in this list = argv position.
    pub scalars: Vec<(String, String, String)>,
    /// Extra helper functions required by this family (verbatim).
    pub extra_helpers: String,
}

/// Assemble a complete CUDA program.
pub fn assemble_cuda(parts: &ProgramParts, verbosity: Verbosity) -> String {
    let mut out = String::with_capacity(8 * 1024);
    banner(&mut out, &parts.name, "CUDA", verbosity);
    out.push_str("#include <cstdio>\n#include <cstdlib>\n#include <cmath>\n");
    out.push_str("#include <cuda.h>\n\n");
    if verbosity.0 >= 1 {
        out.push_str(CUDA_CHECK_HELPER);
    }
    if verbosity.0 >= 2 {
        out.push_str(TIMER_HELPER);
        out.push_str(FILL_HELPERS);
    }
    bulk_scaffolding(&mut out, &parts.name, verbosity);
    out.push_str(&parts.extra_helpers);
    out.push('\n');
    out.push_str(&parts.kernel_code);
    out.push('\n');
    host_main(&mut out, parts, Language::Cuda, verbosity);
    out
}

/// Assemble a complete OpenMP-offload program.
pub fn assemble_omp(parts: &ProgramParts, verbosity: Verbosity) -> String {
    let mut out = String::with_capacity(8 * 1024);
    banner(&mut out, &parts.name, "OpenMP offload", verbosity);
    out.push_str("#include <cstdio>\n#include <cstdlib>\n#include <cmath>\n");
    out.push_str("#include <omp.h>\n\n");
    if verbosity.0 >= 2 {
        out.push_str(TIMER_HELPER);
        out.push_str(FILL_HELPERS);
    }
    bulk_scaffolding(&mut out, &parts.name, verbosity);
    out.push_str(&parts.extra_helpers);
    out.push('\n');
    host_main(&mut out, parts, Language::Omp, verbosity);
    out
}

/// Long-form scaffolding appended to mid/high-verbosity programs: tuning
/// notes, usage documentation, and precomputed coefficient tables. Real
/// benchmark suites carry exactly this kind of bulk, and it is what pushes
/// a program past the paper's 8 000-token pruning cutoff.
fn bulk_scaffolding(out: &mut String, name: &str, verbosity: Verbosity) {
    let _ = name;
    if verbosity.0 >= 2 {
        out.push_str("// ---- tuning notes ----------------------------------------------\n");
        for sm in [60, 68, 80, 84, 108, 128] {
            for block in [64, 128, 256, 512] {
                out.push_str(&format!(
                    "//   on a {sm}-SM part with {block}-thread blocks, measured \
                     occupancy-limited behaviour differs; retune grid divisors and \
                     confirm with the profiler before trusting wall-clock numbers.\n"
                ));
            }
        }
        out.push_str("// Additional launch-shape observations, per driver release:\n");
        for rel in 0..105 {
            out.push_str(&format!(
                "//   r{rel:03}: default heuristics pick {} blocks/SM with {} regs/thread; \
                 override via env when the resident-warp estimate disagrees with nvvp \
                 timelines, and re-verify the {} KiB shared-memory carveout.\n",
                1 + rel % 6,
                24 + (rel * 8) % 72,
                8 << (rel % 4)
            ));
        }
        out.push('\n');
    }
    if verbosity.0 >= 3 {
        out.push_str(
            "// ---- usage ------------------------------------------------------\n\
             // This benchmark accepts positional arguments; see main() for the\n\
             // parse order. Typical invocations used in nightly sweeps:\n",
        );
        for i in 0..48 {
            out.push_str(&format!(
                "//   ./{name} {} {}   # sweep point {i}\n",
                1 << (12 + i % 14),
                1 + (i * 7) % 500
            ));
        }
        out.push_str("\nstatic const double kReferenceTable[] = {\n");
        for row in 0..96 {
            out.push_str("  ");
            for col in 0..6 {
                let v = ((row * 6 + col) as f64 * 0.618_033_988_75).fract();
                out.push_str(&format!("{v:.12},"));
            }
            out.push('\n');
        }
        out.push_str("};\n");
        out.push_str(
            "static double reference_checksum(long n) {\n\
             \x20 double acc = 0.0;\n\
             \x20 for (long i = 0; i < n; i++) acc += kReferenceTable[i % 576];\n\
             \x20 return acc;\n}\n\n",
        );
    }
}

fn banner(out: &mut String, name: &str, dialect: &str, verbosity: Verbosity) {
    out.push_str(&format!("// {name} benchmark ({dialect} version)\n"));
    if verbosity.0 >= 1 {
        out.push_str(
            "// Part of a heterogeneous computing benchmark collection.\n\
             // Ground-truth performance characteristics are obtained by\n\
             // profiling on the target device; this source is the input\n\
             // to source-level performance estimation studies.\n",
        );
    }
    if verbosity.0 >= 3 {
        out.push_str(
            "//\n// Redistribution and use in source and binary forms, with or without\n\
             // modification, are permitted provided that the following conditions\n\
             // are met: redistributions of source code must retain the above\n\
             // copyright notice, this list of conditions and the following\n\
             // disclaimer in the documentation and/or other materials provided\n\
             // with the distribution. THIS SOFTWARE IS PROVIDED BY THE COPYRIGHT\n\
             // HOLDERS AND CONTRIBUTORS \"AS IS\" AND ANY EXPRESS OR IMPLIED\n\
             // WARRANTIES, INCLUDING, BUT NOT LIMITED TO, THE IMPLIED WARRANTIES\n\
             // OF MERCHANTABILITY AND FITNESS FOR A PARTICULAR PURPOSE ARE\n\
             // DISCLAIMED.\n//\n",
        );
    }
    out.push('\n');
}

fn host_main(out: &mut String, parts: &ProgramParts, lang: Language, verbosity: Verbosity) {
    out.push_str("int main(int argc, char* argv[]) {\n");
    // Argv parsing: positional scalars with defaults.
    for (pos, (name, c_type, default)) in parts.scalars.iter().enumerate() {
        let idx = pos + 1;
        let parse = if c_type.contains("float") || c_type.contains("double") {
            format!("atof(argv[{idx}])")
        } else {
            format!("atol(argv[{idx}])")
        };
        out.push_str(&format!(
            "  {c_type} {name} = (argc > {idx}) ? ({c_type}){parse} : {default};\n"
        ));
    }
    out.push('\n');
    match lang {
        Language::Cuda => {
            for (name, c_type, len) in &parts.buffers {
                out.push_str(&format!(
                    "  {c_type}* h_{name} = ({c_type}*)malloc(sizeof({c_type}) * ({len}));\n"
                ));
                out.push_str(&format!("  {c_type}* d_{name};\n"));
                out.push_str(&format!(
                    "  cudaMalloc(&d_{name}, sizeof({c_type}) * ({len}));\n"
                ));
            }
            if verbosity.0 >= 2 {
                for (name, c_type, len) in &parts.buffers {
                    out.push_str(&format!(
                        "  fill_{}(h_{name}, ({len}));\n",
                        short_type(c_type)
                    ));
                }
            }
            for (name, c_type, len) in &parts.buffers {
                out.push_str(&format!(
                    "  cudaMemcpy(d_{name}, h_{name}, sizeof({c_type}) * ({len}), cudaMemcpyHostToDevice);\n"
                ));
            }
            out.push('\n');
            if verbosity.0 >= 2 {
                out.push_str("  double t0 = wall_time();\n");
            }
            out.push_str(&parts.launch_code);
            out.push_str("  cudaDeviceSynchronize();\n");
            if verbosity.0 >= 2 {
                out.push_str(
                    "  double t1 = wall_time();\n  printf(\"kernel time: %f s\\n\", t1 - t0);\n",
                );
            }
            if let Some((name, c_type, len)) = parts.buffers.last() {
                out.push_str(&format!(
                    "  cudaMemcpy(h_{name}, d_{name}, sizeof({c_type}) * ({len}), cudaMemcpyDeviceToHost);\n"
                ));
            }
            if verbosity.0 >= 3 {
                validation_block(out, parts);
            }
            for (name, ..) in &parts.buffers {
                out.push_str(&format!("  cudaFree(d_{name});\n  free(h_{name});\n"));
            }
        }
        Language::Omp => {
            for (name, c_type, len) in &parts.buffers {
                out.push_str(&format!(
                    "  {c_type}* {name} = ({c_type}*)malloc(sizeof({c_type}) * ({len}));\n"
                ));
            }
            if verbosity.0 >= 2 {
                for (name, c_type, len) in &parts.buffers {
                    out.push_str(&format!(
                        "  fill_{}({name}, ({len}));\n",
                        short_type(c_type)
                    ));
                }
            }
            out.push('\n');
            if verbosity.0 >= 2 {
                out.push_str("  double t0 = wall_time();\n");
            }
            out.push_str(&parts.launch_code);
            if verbosity.0 >= 2 {
                out.push_str(
                    "  double t1 = wall_time();\n  printf(\"kernel time: %f s\\n\", t1 - t0);\n",
                );
            }
            if verbosity.0 >= 3 {
                validation_block(out, parts);
            }
            for (name, ..) in &parts.buffers {
                out.push_str(&format!("  free({name});\n"));
            }
        }
    }
    out.push_str("  return 0;\n}\n");
}

fn validation_block(out: &mut String, parts: &ProgramParts) {
    if let Some((name, c_type, len)) = parts.buffers.last() {
        let prefix = if parts.kernel_code.contains("__global__") {
            "h_"
        } else {
            ""
        };
        out.push_str(&format!(
            "  // lightweight sanity check against NaNs and wild values\n\
             \x20 long bad = 0;\n\
             \x20 for (long v = 0; v < (long)({len}); v++) {{\n\
             \x20   {c_type} val = {prefix}{name}[v];\n\
             \x20   if (val != val) bad++;\n\
             \x20 }}\n\
             \x20 printf(\"validation: %ld suspicious values\\n\", bad);\n"
        ));
    }
}

fn short_type(c_type: &str) -> &'static str {
    if c_type.contains("double") {
        "f64"
    } else if c_type.contains("float") {
        "f32"
    } else {
        "i32"
    }
}

const CUDA_CHECK_HELPER: &str = "\
#define CUDA_CHECK(call)                                            \\\n\
  do {                                                              \\\n\
    cudaError_t err_ = (call);                                      \\\n\
    if (err_ != cudaSuccess) {                                      \\\n\
      fprintf(stderr, \"CUDA error %d at %s:%d\\n\", err_, __FILE__, \\\n\
              __LINE__);                                            \\\n\
      exit(1);                                                      \\\n\
    }                                                               \\\n\
  } while (0)\n\n";

const TIMER_HELPER: &str = "\
#include <chrono>\n\
static double wall_time() {\n\
  auto now = std::chrono::high_resolution_clock::now();\n\
  return std::chrono::duration<double>(now.time_since_epoch()).count();\n\
}\n\n";

const FILL_HELPERS: &str = "\
static void fill_f32(float* p, long n) {\n\
  for (long i = 0; i < n; i++) p[i] = (float)(i % 97) * 0.013f + 0.5f;\n\
}\n\
static void fill_f64(double* p, long n) {\n\
  for (long i = 0; i < n; i++) p[i] = (double)(i % 89) * 0.017 + 0.25;\n\
}\n\
static void fill_i32(int* p, long n) {\n\
  for (long i = 0; i < n; i++) p[i] = (int)((i * 1103515245 + 12345) & 0x7fffffff);\n\
}\n\n";

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_parts() -> ProgramParts {
        ProgramParts {
            name: "saxpy".into(),
            kernel_code: "__global__ void saxpy(int n, float a, const float* x, float* y) {\n  int i = blockIdx.x * blockDim.x + threadIdx.x;\n  if (i < n) y[i] = a * x[i] + y[i];\n}\n".into(),
            launch_code: "  saxpy<<<(n + 255) / 256, 256>>>(n, 2.0f, d_x, d_y);\n".into(),
            buffers: vec![
                ("x".into(), "float".into(), "n".into()),
                ("y".into(), "float".into(), "n".into()),
            ],
            scalars: vec![("n".into(), "int".into(), "1048576".into())],
            extra_helpers: String::new(),
        }
    }

    #[test]
    fn cuda_program_has_expected_sections() {
        let src = assemble_cuda(&demo_parts(), Verbosity(1));
        for needle in [
            "#include <cuda.h>",
            "__global__ void saxpy",
            "int main(int argc",
            "cudaMalloc",
            "cudaMemcpy",
            "atol(argv[1])",
            "cudaFree",
        ] {
            assert!(src.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn omp_program_has_no_cuda_artifacts() {
        let mut parts = demo_parts();
        parts.kernel_code = String::new();
        parts.launch_code = "#pragma omp target teams distribute parallel for map(to: x[0:n]) map(tofrom: y[0:n])\n  for (int i = 0; i < n; i++) y[i] = 2.0f * x[i] + y[i];\n".into();
        let src = assemble_omp(&parts, Verbosity(1));
        assert!(src.contains("#include <omp.h>"));
        assert!(src.contains("#pragma omp target"));
        assert!(!src.contains("cudaMalloc"));
    }

    #[test]
    fn verbosity_strictly_grows_source() {
        let parts = demo_parts();
        let sizes: Vec<usize> = (0..4)
            .map(|v| assemble_cuda(&parts, Verbosity(v)).len())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] < w[1], "verbosity must add text: {sizes:?}");
        }
    }

    #[test]
    fn verbose_programs_carry_helpers_and_validation() {
        let src = assemble_cuda(&demo_parts(), Verbosity(3));
        assert!(src.contains("wall_time"));
        assert!(src.contains("fill_f32"));
        assert!(src.contains("validation"));
    }

    #[test]
    fn scalar_defaults_appear() {
        let src = assemble_cuda(&demo_parts(), Verbosity(0));
        assert!(src.contains(": 1048576;"));
    }

    #[test]
    fn language_labels_match_paper() {
        assert_eq!(Language::Cuda.label(), "CUDA");
        assert_eq!(Language::Omp.label(), "OMP");
    }
}
