//! Pre-tokenization: split raw text into chunks that BPE merges may not
//! cross.
//!
//! The chunking rules approximate the GPT regex family, tuned for source
//! code: a chunk is an identifier run (with at most one leading space), a
//! digit run, a run of spaces/tabs, a newline run, or a single punctuation
//! byte (with at most one leading space). Keeping merges inside chunks is
//! what makes BPE vocabularies transfer across documents.

/// Split `text` into pre-token chunks. Concatenating the chunks always
/// reproduces `text` exactly (losslessness is what decoding relies on).
pub fn pretokenize(text: &str) -> Vec<&str> {
    let bytes = text.as_bytes();
    let mut chunks = Vec::with_capacity(text.len() / 4 + 1);
    let mut i = 0;
    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        if b == b'\n' || b == b'\r' {
            while i < bytes.len() && (bytes[i] == b'\n' || bytes[i] == b'\r') {
                i += 1;
            }
        } else if b == b' ' || b == b'\t' {
            // A single space may glue onto a following word/punct chunk
            // (GPT-style " word" tokens); longer runs stay whitespace-only.
            let mut j = i;
            while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                j += 1;
            }
            let run = j - i;
            if run == 1 && j < bytes.len() && bytes[j] != b'\n' && bytes[j] != b'\r' {
                i = j; // fall through: glue the space to the next chunk
                let next = bytes[i];
                if is_ident_byte(next) {
                    i += 1;
                    while i < bytes.len() && is_ident_byte(bytes[i]) {
                        i += 1;
                    }
                } else if next.is_ascii_digit() {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                } else {
                    // Single punctuation character; advance a whole UTF-8
                    // scalar so multi-byte characters stay intact.
                    let ch_len = text[i..].chars().next().map(char::len_utf8).unwrap_or(1);
                    i += ch_len;
                }
            } else {
                i = j;
            }
        } else if is_ident_byte(b) {
            while i < bytes.len() && is_ident_byte(bytes[i]) {
                i += 1;
            }
        } else if b.is_ascii_digit() {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        } else {
            // Any other byte (punctuation, UTF-8 continuation lead bytes):
            // advance one full UTF-8 scalar to keep chunk boundaries on
            // character boundaries.
            let ch_len = text[start..]
                .chars()
                .next()
                .map(char::len_utf8)
                .unwrap_or(1);
            i += ch_len;
        }
        chunks.push(&text[start..i]);
    }
    chunks
}

#[inline]
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rejoin(chunks: &[&str]) -> String {
        chunks.concat()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let samples = [
            "",
            "int main() { return 0; }",
            "__global__ void k(float *a)\n{\n  a[threadIdx.x] += 1.0f;\n}\n",
            "#pragma omp target teams distribute parallel for",
            "  indented\n\ttabbed\r\nwindows",
            "unicode: λ → ∑ 中文",
            "a  b   c    d",
        ];
        for s in samples {
            assert_eq!(rejoin(&pretokenize(s)), s, "lossless failed for {s:?}");
        }
    }

    #[test]
    fn identifiers_stay_whole() {
        let chunks = pretokenize("threadIdx_x blockDim");
        assert!(chunks.contains(&"threadIdx_x"));
        assert!(chunks.contains(&" blockDim"));
    }

    #[test]
    fn single_space_glues_to_word() {
        let chunks = pretokenize("float x");
        assert_eq!(chunks, vec!["float", " x"]);
    }

    #[test]
    fn multi_space_runs_stay_separate() {
        let chunks = pretokenize("a   b");
        assert_eq!(chunks, vec!["a", "   ", "b"]);
    }

    #[test]
    fn digits_split_from_identifiers() {
        let chunks = pretokenize("x123");
        assert_eq!(chunks, vec!["x", "123"]);
    }

    #[test]
    fn newlines_group_into_runs() {
        let chunks = pretokenize("a\n\n\nb");
        assert_eq!(chunks, vec!["a", "\n\n\n", "b"]);
    }

    #[test]
    fn punctuation_is_single_chars() {
        let chunks = pretokenize("a[i]+=1;");
        assert_eq!(chunks, vec!["a", "[", "i", "]", "+", "=", "1", ";"]);
    }

    #[test]
    fn empty_input_gives_no_chunks() {
        assert!(pretokenize("").is_empty());
    }
}
