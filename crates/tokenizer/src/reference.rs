//! Naive reference implementations of BPE training and encoding.
//!
//! These are the seed repository's original textbook algorithms, kept as
//! the correctness oracle for the fast paths in [`crate::train`] and
//! [`crate::bpe`]:
//!
//! * [`naive_train`] re-counts every adjacent pair over the whole corpus
//!   on every merge — O(vocab × corpus) — and picks the argmax by
//!   (frequency, then smallest pair value).
//! * [`naive_encode`] rescans the whole chunk for the lowest-rank pair on
//!   every merge and compacts with `Vec::remove` — O(n²) per chunk.
//!
//! Property tests assert the fast implementations are *bit-identical* to
//! these on arbitrary corpora; the criterion benches report the speedup
//! against them.

use std::collections::HashMap;

use crate::bpe::{Tokenizer, Vocab};
use crate::pretokenizer::pretokenize;

/// Learn a vocabulary with the naive re-counting trainer.
///
/// Semantics (shared with the fast trainer): pairs are counted over
/// distinct pre-token chunks weighted by frequency; each round merges the
/// most frequent pair with ties broken toward the smallest pair value;
/// training stops at `vocab_size` or when no pair reaches
/// `min_frequency`.
pub fn naive_train<'a>(
    vocab_size: usize,
    min_frequency: u64,
    docs: impl IntoIterator<Item = &'a str>,
) -> Vocab {
    assert!(vocab_size >= 256, "vocab must include all 256 byte tokens");
    let min_frequency = min_frequency.max(1);

    // Distinct chunk -> frequency.
    let mut chunk_freq: HashMap<&str, u64> = HashMap::new();
    for doc in docs {
        for chunk in pretokenize(doc) {
            *chunk_freq.entry(chunk).or_insert(0) += 1;
        }
    }

    // Working representation: each distinct chunk as a symbol sequence,
    // in deterministic order regardless of HashMap layout.
    let mut words: Vec<(Vec<u32>, u64)> = chunk_freq
        .iter()
        .map(|(chunk, &freq)| (chunk.bytes().map(|b| b as u32).collect(), freq))
        .collect();
    words.sort_by(|a, b| a.0.cmp(&b.0));

    let mut merges = Vec::with_capacity(vocab_size - 256);
    while 256 + merges.len() < vocab_size {
        // Count all adjacent pairs, from scratch.
        let mut pair_freq: HashMap<(u32, u32), u64> = HashMap::new();
        for (symbols, freq) in &words {
            for w in symbols.windows(2) {
                *pair_freq.entry((w[0], w[1])).or_insert(0) += freq;
            }
        }
        // Deterministic argmax: highest frequency, ties by pair value.
        let best = pair_freq
            .iter()
            .filter(|(_, &f)| f >= min_frequency)
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)));
        let (&pair, _) = match best {
            Some(p) => p,
            None => break,
        };
        let new_id = 256 + merges.len() as u32;
        merges.push(pair);

        // Apply the merge to every word, left to right, non-overlapping.
        for (symbols, _) in &mut words {
            let mut i = 0;
            while i + 1 < symbols.len() {
                if symbols[i] == pair.0 && symbols[i + 1] == pair.1 {
                    symbols[i] = new_id;
                    symbols.remove(i + 1);
                } else {
                    i += 1;
                }
            }
        }
    }
    Vocab { merges }
}

/// Encode text with the naive quadratic scan-and-remove merge loop.
pub fn naive_encode(tok: &Tokenizer, text: &str) -> Vec<u32> {
    let mut out = Vec::with_capacity(text.len() / 3 + 1);
    for chunk in pretokenize(text) {
        naive_encode_chunk(tok, chunk.as_bytes(), &mut out);
    }
    out
}

fn naive_encode_chunk(tok: &Tokenizer, bytes: &[u8], out: &mut Vec<u32>) {
    if bytes.is_empty() {
        return;
    }
    let ranks = tok.merge_ranks();
    let mut ids: Vec<u32> = bytes.iter().map(|&b| b as u32).collect();
    // Greedy lowest-rank-first merging, the canonical BPE inference.
    loop {
        let mut best: Option<(u32, usize, u32)> = None; // (rank, pos, new_id)
        for i in 0..ids.len() - 1 {
            if let Some(&(rank, new_id)) = ranks.get(&(ids[i], ids[i + 1])) {
                if best.is_none_or(|(r, _, _)| rank < r) {
                    best = Some((rank, i, new_id));
                }
            }
        }
        match best {
            Some((_, pos, new_id)) => {
                ids[pos] = new_id;
                ids.remove(pos + 1);
                if ids.len() < 2 {
                    break;
                }
            }
            None => break,
        }
    }
    out.extend_from_slice(&ids);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::BpeTrainer;

    #[test]
    fn naive_train_learns_frequent_merges_first() {
        let docs = ["aaaa aaaa aaaa", "b"];
        let vocab = naive_train(260, 2, docs.iter().copied());
        assert!(!vocab.merges.is_empty());
        assert_eq!(vocab.merges[0], (b'a' as u32, b'a' as u32));
    }

    #[test]
    fn naive_encode_round_trips() {
        let docs = ["__global__ void k(float* a) { a[0] = 1.0f; }"];
        let tok = Tokenizer::new(BpeTrainer::new(400).train(docs.iter().copied()));
        let ids = naive_encode(&tok, docs[0]);
        assert_eq!(tok.decode(&ids), docs[0]);
    }

    #[test]
    fn naive_matches_fast_on_a_small_corpus() {
        let docs = [
            "__global__ void add(const float* a, float* b, int n) {",
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
            "  if (i < n) { b[i] = a[i] + b[i]; }",
            "#pragma omp target teams distribute parallel for",
        ];
        let fast = BpeTrainer::new(420).train(docs.iter().copied());
        let naive = naive_train(420, 2, docs.iter().copied());
        assert_eq!(fast, naive);
        let tok = Tokenizer::new(fast);
        for d in docs {
            assert_eq!(tok.encode(d), naive_encode(&tok, d));
        }
    }
}
