//! The BPE vocabulary and encoder/decoder.
//!
//! Encoding is the hot path of the dataset pipeline (every corpus program
//! is token-counted to enforce the 8e3 cutoff), so `encode_chunk` uses a
//! linked-list + min-heap merge — O(n log n) per chunk instead of the
//! naive rescan-per-merge O(n²) — plus a sharded chunk-result cache that
//! exploits how heavily generated CUDA/OMP source repeats identifiers,
//! keywords, and punctuation. Batch entry points (`encode_batch`,
//! `count_batch`) fan work across threads while sharing the cache.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Mutex;

use rayon::prelude::*;

use crate::pretokenizer::pretokenize;

/// A trained BPE vocabulary: 256 byte tokens plus learned merges.
///
/// Token ids `0..256` are the raw bytes; id `256 + r` is the token produced
/// by merge rank `r`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    /// Learned merges in rank order: `(left_id, right_id)`.
    pub merges: Vec<(u32, u32)>,
}

impl Vocab {
    /// An empty vocabulary (byte-level only).
    pub fn byte_level() -> Self {
        Vocab { merges: Vec::new() }
    }

    /// Total vocabulary size (256 bytes + merges).
    pub fn size(&self) -> usize {
        256 + self.merges.len()
    }

    /// Reconstruct the byte string of a token id.
    pub fn token_bytes(&self, id: u32) -> Vec<u8> {
        if id < 256 {
            vec![id as u8]
        } else {
            let (l, r) = self.merges[(id - 256) as usize];
            let mut out = self.token_bytes(l);
            out.extend(self.token_bytes(r));
            out
        }
    }
}

/// Number of cache shards (power of two; sharding keeps lock contention
/// negligible under `encode_batch`).
const CACHE_SHARDS: usize = 16;
/// Per-shard entry cap: bounds memory; generated source repeats a small
/// identifier/keyword set, so the cap is rarely reached.
const CACHE_SHARD_CAP: usize = 4096;
/// Only chunks up to this many bytes are cached (longer chunks are rare
/// one-offs; caching them would just churn memory).
const CACHE_MAX_CHUNK: usize = 64;

/// One cache shard: interned chunk text -> its token ids.
type Shard = Mutex<HashMap<Box<str>, Box<[u32]>>>;

/// Sharded memo of `chunk -> token ids`.
#[derive(Debug, Default)]
struct ChunkCache {
    shards: Vec<Shard>,
}

impl ChunkCache {
    fn new() -> Self {
        ChunkCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    #[inline]
    fn shard(&self, chunk: &str) -> &Shard {
        // FNV-1a over the chunk bytes picks the shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in chunk.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        &self.shards[(h as usize) & (CACHE_SHARDS - 1)]
    }

    /// Append the ids for `chunk` to `out`, returning `true` on a hit.
    fn extend_hit(&self, chunk: &str, out: &mut Vec<u32>) -> bool {
        let shard = self.shard(chunk).lock().unwrap_or_else(|e| e.into_inner());
        match shard.get(chunk) {
            Some(ids) => {
                out.extend_from_slice(ids);
                true
            }
            None => false,
        }
    }

    fn insert(&self, chunk: &str, ids: &[u32]) {
        let mut shard = self.shard(chunk).lock().unwrap_or_else(|e| e.into_inner());
        if shard.len() < CACHE_SHARD_CAP {
            shard.insert(Box::from(chunk), Box::from(ids));
        }
    }
}

/// A BPE encoder/decoder over a trained [`Vocab`].
#[derive(Debug)]
pub struct Tokenizer {
    vocab: Vocab,
    /// merge pair -> (rank, produced id)
    ranks: HashMap<(u32, u32), (u32, u32)>,
    /// chunk -> ids memo, shared across threads in batch encodes.
    cache: ChunkCache,
}

impl Clone for Tokenizer {
    fn clone(&self) -> Self {
        // The cache is a derived memo: a clone starts cold.
        Tokenizer {
            vocab: self.vocab.clone(),
            ranks: self.ranks.clone(),
            cache: ChunkCache::new(),
        }
    }
}

/// A merge candidate in the encode heap: ordered by (rank, position) so
/// popping yields the lowest-rank, leftmost pair — exactly the naive
/// scan's greedy choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MergeCand {
    rank: u32,
    pos: u32,
    left: u32,
    right: u32,
    new_id: u32,
}

impl Ord for MergeCand {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the minimum
        // (rank, pos) on top.
        other
            .rank
            .cmp(&self.rank)
            .then_with(|| other.pos.cmp(&self.pos))
    }
}

impl PartialOrd for MergeCand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Sentinel for "no neighbor" in the linked-list arrays.
const NONE_IDX: u32 = u32::MAX;

impl Tokenizer {
    /// Wrap a vocabulary into an encoder.
    pub fn new(vocab: Vocab) -> Self {
        let mut ranks = HashMap::with_capacity(vocab.merges.len());
        for (rank, &(l, r)) in vocab.merges.iter().enumerate() {
            ranks.insert((l, r), (rank as u32, 256 + rank as u32));
        }
        Tokenizer {
            vocab,
            ranks,
            cache: ChunkCache::new(),
        }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// The merge-rank table (`pair -> (rank, produced id)`); used by the
    /// naive reference encoder.
    pub(crate) fn merge_ranks(&self) -> &HashMap<(u32, u32), (u32, u32)> {
        &self.ranks
    }

    /// Encode text to token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for chunk in pretokenize(text) {
            self.encode_chunk_cached(chunk, &mut out);
        }
        out
    }

    /// Number of tokens `text` encodes to.
    pub fn count(&self, text: &str) -> usize {
        let mut scratch = Vec::with_capacity(64);
        let mut n = 0;
        for chunk in pretokenize(text) {
            scratch.clear();
            self.encode_chunk_cached(chunk, &mut scratch);
            n += scratch.len();
        }
        n
    }

    /// Encode a batch of texts in parallel, sharing the chunk cache.
    pub fn encode_batch(&self, texts: &[&str]) -> Vec<Vec<u32>> {
        texts.par_iter().map(|t| self.encode(t)).collect()
    }

    /// Token counts for a batch of texts, in parallel, sharing the chunk
    /// cache. This is the pipeline's pruning hot path.
    pub fn count_batch(&self, texts: &[&str]) -> Vec<usize> {
        texts.par_iter().map(|t| self.count(t)).collect()
    }

    /// Encode one pre-token chunk, consulting the shared cache.
    fn encode_chunk_cached(&self, chunk: &str, out: &mut Vec<u32>) {
        let cacheable = chunk.len() <= CACHE_MAX_CHUNK && !self.ranks.is_empty();
        if cacheable && self.cache.extend_hit(chunk, out) {
            return;
        }
        let start = out.len();
        self.encode_chunk(chunk.as_bytes(), out);
        if cacheable {
            self.cache.insert(chunk, &out[start..]);
        }
    }

    /// Merge one chunk with a linked list + min-heap: every adjacent pair
    /// with a known rank enters the heap; popping yields the lowest-rank,
    /// leftmost candidate (the canonical greedy order); merging patches
    /// the list and pushes at most two fresh candidates. O(n log n).
    fn encode_chunk(&self, bytes: &[u8], out: &mut Vec<u32>) {
        let n = bytes.len();
        if n == 0 {
            return;
        }
        if n == 1 || self.ranks.is_empty() {
            out.extend(bytes.iter().map(|&b| b as u32));
            return;
        }

        let mut ids: Vec<u32> = bytes.iter().map(|&b| b as u32).collect();
        let mut next: Vec<u32> = (1..=n as u32).collect();
        next[n - 1] = NONE_IDX;
        let mut prev: Vec<u32> = (0..n as u32).map(|i| i.wrapping_sub(1)).collect();
        prev[0] = NONE_IDX;

        let mut heap: BinaryHeap<MergeCand> = BinaryHeap::with_capacity(n);
        for i in 0..n - 1 {
            if let Some(&(rank, new_id)) = self.ranks.get(&(ids[i], ids[i + 1])) {
                heap.push(MergeCand {
                    rank,
                    pos: i as u32,
                    left: ids[i],
                    right: ids[i + 1],
                    new_id,
                });
            }
        }

        while let Some(cand) = heap.pop() {
            let i = cand.pos as usize;
            let j = next[i];
            // Validate: the position must still start a live pair with the
            // snapshotted ids (merges at or around it invalidate entries).
            if j == NONE_IDX || ids[i] != cand.left || ids[j as usize] != cand.right {
                continue;
            }
            let j = j as usize;

            // Fuse j into i.
            ids[i] = cand.new_id;
            let k = next[j];
            next[i] = k;
            if k != NONE_IDX {
                prev[k as usize] = i as u32;
            }
            next[j] = NONE_IDX; // invalidate stale candidates anchored at j

            // New candidates across the fused token.
            let p = prev[i];
            if p != NONE_IDX {
                if let Some(&(rank, new_id)) = self.ranks.get(&(ids[p as usize], ids[i])) {
                    heap.push(MergeCand {
                        rank,
                        pos: p,
                        left: ids[p as usize],
                        right: ids[i],
                        new_id,
                    });
                }
            }
            if k != NONE_IDX {
                if let Some(&(rank, new_id)) = self.ranks.get(&(ids[i], ids[k as usize])) {
                    heap.push(MergeCand {
                        rank,
                        pos: i as u32,
                        left: ids[i],
                        right: ids[k as usize],
                        new_id,
                    });
                }
            }
        }

        // In-place compaction: walk the surviving list from the head.
        let mut i = 0u32;
        while i != NONE_IDX {
            out.push(ids[i as usize]);
            i = next[i as usize];
        }
    }

    /// Decode token ids back to text.
    ///
    /// # Panics
    /// Panics if the byte stream is not valid UTF-8 (possible only for id
    /// sequences that never came from [`Tokenizer::encode`]).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(ids.len() * 3);
        for &id in ids {
            bytes.extend(self.vocab.token_bytes(id));
        }
        String::from_utf8(bytes).expect("decoded byte stream was not UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_encode;
    use crate::train::BpeTrainer;

    fn trained() -> Tokenizer {
        let corpus = [
            "__global__ void add(const float* a, float* b, int n) {",
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
            "  if (i < n) { b[i] = a[i] + b[i]; }",
            "}",
            "#pragma omp target teams distribute parallel for",
            "for (int i = 0; i < n; ++i) b[i] += a[i];",
        ];
        Tokenizer::new(BpeTrainer::new(600).train(corpus.iter().copied()))
    }

    #[test]
    fn byte_level_encodes_one_token_per_byte() {
        let tok = Tokenizer::new(Vocab::byte_level());
        let ids = tok.encode("abc");
        assert_eq!(ids, vec![97, 98, 99]);
    }

    #[test]
    fn roundtrip_on_training_like_text() {
        let tok = trained();
        let text = "__global__ void add(const float* a) { int i = threadIdx.x; }";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn roundtrip_on_unseen_text_including_unicode() {
        let tok = trained();
        for text in [
            "zebra quux 0xDEADBEEF",
            "λ-calculus ∑",
            "\n\n\t  mixed \r\n",
        ] {
            assert_eq!(tok.decode(&tok.encode(text)), text, "failed on {text:?}");
        }
    }

    #[test]
    fn training_compresses_frequent_patterns() {
        let tok = trained();
        let text = "float* a, float* b, float* c";
        let trained_count = tok.count(text);
        let byte_count = Tokenizer::new(Vocab::byte_level()).count(text);
        assert!(
            trained_count < byte_count / 2,
            "trained {trained_count} vs bytes {byte_count}"
        );
    }

    #[test]
    fn count_matches_encode_len() {
        let tok = trained();
        let text = "if (i < n) { b[i] = a[i] + b[i]; }";
        assert_eq!(tok.count(text), tok.encode(text).len());
    }

    #[test]
    fn empty_text_is_zero_tokens() {
        let tok = trained();
        assert_eq!(tok.encode(""), Vec::<u32>::new());
        assert_eq!(tok.count(""), 0);
    }

    #[test]
    fn token_bytes_reconstruct_merges() {
        let tok = trained();
        for id in 256..(tok.vocab().size() as u32) {
            let bytes = tok.vocab().token_bytes(id);
            assert!(bytes.len() >= 2, "merge token must span >= 2 bytes");
        }
    }

    #[test]
    fn vocab_serde_round_trip() {
        let vocab = trained().vocab().clone();
        let json = serde_json::to_string(&vocab).unwrap();
        let back: Vocab = serde_json::from_str(&json).unwrap();
        assert_eq!(vocab, back);
    }

    #[test]
    fn deterministic_encoding() {
        let tok = trained();
        let text = "#pragma omp target teams distribute parallel for";
        assert_eq!(tok.encode(text), tok.encode(text));
    }

    #[test]
    fn heap_encoder_matches_naive() {
        let tok = trained();
        for text in [
            "__global__ void add(const float* a, float* b, int n) {",
            "aaaa aaa aa a",
            "completely unseen identifiers zebra_quux_9000",
            "for (int i = 0; i < n; ++i) b[i] += a[i];",
            "  \t\t  mixed   whitespace \r\n\n",
        ] {
            assert_eq!(tok.encode(text), naive_encode(&tok, text), "on {text:?}");
        }
    }

    #[test]
    fn cache_does_not_change_results() {
        let tok = trained();
        let text = "float float float float"; // identical chunks -> cache hits
        let first = tok.encode(text);
        let second = tok.encode(text);
        assert_eq!(first, second);
        assert_eq!(tok.decode(&first), text);
        // A cold clone agrees with the warmed original.
        assert_eq!(tok.clone().encode(text), first);
    }

    #[test]
    fn batch_apis_match_sequential() {
        let tok = trained();
        let texts = [
            "__global__ void k(float* a) { a[0] = 1.0f; }",
            "#pragma omp parallel for",
            "",
            "λ λ λ",
        ];
        let refs: Vec<&str> = texts.to_vec();
        let batch_ids = tok.encode_batch(&refs);
        let batch_counts = tok.count_batch(&refs);
        for (i, t) in texts.iter().enumerate() {
            assert_eq!(batch_ids[i], tok.encode(t), "ids diverged on {t:?}");
            assert_eq!(batch_counts[i], tok.count(t), "count diverged on {t:?}");
            assert_eq!(batch_counts[i], batch_ids[i].len());
        }
    }
}
