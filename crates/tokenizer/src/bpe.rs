//! The BPE vocabulary and encoder/decoder.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::pretokenizer::pretokenize;

/// A trained BPE vocabulary: 256 byte tokens plus learned merges.
///
/// Token ids `0..256` are the raw bytes; id `256 + r` is the token produced
/// by merge rank `r`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocab {
    /// Learned merges in rank order: `(left_id, right_id)`.
    pub merges: Vec<(u32, u32)>,
}

impl Vocab {
    /// An empty vocabulary (byte-level only).
    pub fn byte_level() -> Self {
        Vocab { merges: Vec::new() }
    }

    /// Total vocabulary size (256 bytes + merges).
    pub fn size(&self) -> usize {
        256 + self.merges.len()
    }

    /// Reconstruct the byte string of a token id.
    pub fn token_bytes(&self, id: u32) -> Vec<u8> {
        if id < 256 {
            vec![id as u8]
        } else {
            let (l, r) = self.merges[(id - 256) as usize];
            let mut out = self.token_bytes(l);
            out.extend(self.token_bytes(r));
            out
        }
    }
}

/// A BPE encoder/decoder over a trained [`Vocab`].
#[derive(Debug, Clone)]
pub struct Tokenizer {
    vocab: Vocab,
    /// merge pair -> (rank, produced id)
    ranks: HashMap<(u32, u32), (u32, u32)>,
}

impl Tokenizer {
    /// Wrap a vocabulary into an encoder.
    pub fn new(vocab: Vocab) -> Self {
        let mut ranks = HashMap::with_capacity(vocab.merges.len());
        for (rank, &(l, r)) in vocab.merges.iter().enumerate() {
            ranks.insert((l, r), (rank as u32, 256 + rank as u32));
        }
        Tokenizer { vocab, ranks }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Encode text to token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        let mut out = Vec::with_capacity(text.len() / 3 + 1);
        for chunk in pretokenize(text) {
            self.encode_chunk(chunk.as_bytes(), &mut out);
        }
        out
    }

    /// Number of tokens `text` encodes to (no allocation of the id vec
    /// beyond a scratch per chunk).
    pub fn count(&self, text: &str) -> usize {
        let mut n = 0;
        let mut scratch = Vec::new();
        for chunk in pretokenize(text) {
            scratch.clear();
            self.encode_chunk(chunk.as_bytes(), &mut scratch);
            n += scratch.len();
        }
        n
    }

    fn encode_chunk(&self, bytes: &[u8], out: &mut Vec<u32>) {
        if bytes.is_empty() {
            return;
        }
        let mut ids: Vec<u32> = bytes.iter().map(|&b| b as u32).collect();
        // Greedy lowest-rank-first merging, the canonical BPE inference.
        loop {
            let mut best: Option<(u32, usize, u32)> = None; // (rank, pos, new_id)
            for i in 0..ids.len() - 1 {
                if let Some(&(rank, new_id)) = self.ranks.get(&(ids[i], ids[i + 1])) {
                    if best.is_none_or(|(r, _, _)| rank < r) {
                        best = Some((rank, i, new_id));
                    }
                }
            }
            match best {
                Some((_, pos, new_id)) => {
                    ids[pos] = new_id;
                    ids.remove(pos + 1);
                    if ids.len() < 2 {
                        break;
                    }
                }
                None => break,
            }
        }
        out.extend_from_slice(&ids);
    }

    /// Decode token ids back to text.
    ///
    /// # Panics
    /// Panics if the byte stream is not valid UTF-8 (possible only for id
    /// sequences that never came from [`Tokenizer::encode`]).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut bytes = Vec::with_capacity(ids.len() * 3);
        for &id in ids {
            bytes.extend(self.vocab.token_bytes(id));
        }
        String::from_utf8(bytes).expect("decoded byte stream was not UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::BpeTrainer;

    fn trained() -> Tokenizer {
        let corpus = [
            "__global__ void add(const float* a, float* b, int n) {",
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
            "  if (i < n) { b[i] = a[i] + b[i]; }",
            "}",
            "#pragma omp target teams distribute parallel for",
            "for (int i = 0; i < n; ++i) b[i] += a[i];",
        ];
        Tokenizer::new(BpeTrainer::new(600).train(corpus.iter().copied()))
    }

    #[test]
    fn byte_level_encodes_one_token_per_byte() {
        let tok = Tokenizer::new(Vocab::byte_level());
        let ids = tok.encode("abc");
        assert_eq!(ids, vec![97, 98, 99]);
    }

    #[test]
    fn roundtrip_on_training_like_text() {
        let tok = trained();
        let text = "__global__ void add(const float* a) { int i = threadIdx.x; }";
        assert_eq!(tok.decode(&tok.encode(text)), text);
    }

    #[test]
    fn roundtrip_on_unseen_text_including_unicode() {
        let tok = trained();
        for text in ["zebra quux 0xDEADBEEF", "λ-calculus ∑", "\n\n\t  mixed \r\n"] {
            assert_eq!(tok.decode(&tok.encode(text)), text, "failed on {text:?}");
        }
    }

    #[test]
    fn training_compresses_frequent_patterns() {
        let tok = trained();
        let text = "float* a, float* b, float* c";
        let trained_count = tok.count(text);
        let byte_count = Tokenizer::new(Vocab::byte_level()).count(text);
        assert!(
            trained_count < byte_count / 2,
            "trained {trained_count} vs bytes {byte_count}"
        );
    }

    #[test]
    fn count_matches_encode_len() {
        let tok = trained();
        let text = "if (i < n) { b[i] = a[i] + b[i]; }";
        assert_eq!(tok.count(text), tok.encode(text).len());
    }

    #[test]
    fn empty_text_is_zero_tokens() {
        let tok = trained();
        assert_eq!(tok.encode(""), Vec::<u32>::new());
        assert_eq!(tok.count(""), 0);
    }

    #[test]
    fn token_bytes_reconstruct_merges() {
        let tok = trained();
        for id in 256..(tok.vocab().size() as u32) {
            let bytes = tok.vocab().token_bytes(id);
            assert!(bytes.len() >= 2, "merge token must span >= 2 bytes");
        }
    }

    #[test]
    fn vocab_serde_round_trip() {
        let vocab = trained().vocab().clone();
        let json = serde_json::to_string(&vocab).unwrap();
        let back: Vocab = serde_json::from_str(&json).unwrap();
        assert_eq!(vocab, back);
    }

    #[test]
    fn deterministic_encoding() {
        let tok = trained();
        let text = "#pragma omp target teams distribute parallel for";
        assert_eq!(tok.encode(text), tok.encode(text));
    }
}
