//! Token-count statistics: the quartile/box-whisker summaries behind the
//! paper's Figure 2.

use serde::{Deserialize, Serialize};

/// Five-number summary (plus mean) of a token-count sample — one box in a
/// box-and-whisker plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenStats {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (linear interpolation).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl TokenStats {
    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Tukey whisker bounds (`1.5 × IQR` beyond the quartiles, clamped to
    /// the data range).
    pub fn whiskers(&self) -> (f64, f64) {
        let lo = (self.q1 - 1.5 * self.iqr()).max(self.min);
        let hi = (self.q3 + 1.5 * self.iqr()).min(self.max);
        (lo, hi)
    }
}

/// Compute quartile statistics over token counts.
///
/// Quantiles use the standard linear-interpolation estimator (type 7, the
/// numpy/matplotlib default — what the paper's box plots would have used).
///
/// # Panics
/// Panics on an empty sample.
pub fn token_quartiles(counts: &[usize]) -> TokenStats {
    assert!(!counts.is_empty(), "cannot summarize an empty sample");
    let mut sorted: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = |p: f64| -> f64 {
        let idx = p * (sorted.len() - 1) as f64;
        let lo = idx.floor() as usize;
        let hi = idx.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            sorted[lo] + (idx - lo as f64) * (sorted[hi] - sorted[lo])
        }
    };
    TokenStats {
        n: sorted.len(),
        min: sorted[0],
        q1: q(0.25),
        median: q(0.5),
        q3: q(0.75),
        max: *sorted.last().expect("sample verified non-empty above"),
        mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_quartiles_match_numpy() {
        // numpy.percentile([1..=9], [25,50,75]) -> 3.0, 5.0, 7.0
        let counts: Vec<usize> = (1..=9).collect();
        let s = token_quartiles(&counts);
        assert_eq!(s.q1, 3.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.q3, 7.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(s.mean, 5.0);
    }

    #[test]
    fn interpolated_quartiles() {
        // numpy.percentile([1,2,3,4], 25) = 1.75
        let s = token_quartiles(&[1, 2, 3, 4]);
        assert!((s.q1 - 1.75).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert!((s.q3 - 3.25).abs() < 1e-12);
    }

    #[test]
    fn single_element_collapses() {
        let s = token_quartiles(&[42]);
        assert_eq!(s.min, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.iqr(), 0.0);
    }

    #[test]
    fn whiskers_clamp_to_data_range() {
        let s = token_quartiles(&[10, 11, 12, 13, 14]);
        let (lo, hi) = s.whiskers();
        assert!(lo >= 10.0);
        assert!(hi <= 14.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = token_quartiles(&[9, 1, 5, 3, 7]);
        assert_eq!(s.median, 5.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        token_quartiles(&[]);
    }
}
