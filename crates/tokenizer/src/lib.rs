//! # pce-tokenizer
//!
//! A from-scratch byte-level BPE (byte-pair-encoding) tokenizer, standing
//! in for the gpt-4o-mini tokenizer (tiktoken `o200k_base`) the paper uses
//! for its token-count pruning step (§2.2) and the Figure-2 token
//! distribution plots.
//!
//! The design follows the GPT lineage:
//!
//! 1. [`pretokenize`](pretokenizer::pretokenize) splits text into
//!    word-like chunks (identifier runs, number runs, punctuation,
//!    leading-space words) so merges never cross chunk boundaries,
//! 2. [`BpeTrainer`](train::BpeTrainer) learns a merge table from a corpus
//!    by repeatedly fusing the most frequent adjacent symbol pair,
//! 3. [`Tokenizer`](bpe::Tokenizer) applies the merge table greedily
//!    (lowest merge rank first) to encode arbitrary text; decoding is the
//!    exact inverse.
//!
//! Only *relative* token counts matter downstream — the 8 000-token cutoff
//! and the box-plot statistics — so fidelity to the exact OpenAI vocabulary
//! is not required, but the tokenizer is a real, lossless BPE.
//!
//! ## Performance
//!
//! Training and encoding sit on the critical path of every experiment
//! (the §2.2 funnel tokenizes the whole corpus), so both are the fast
//! variants of the textbook algorithms:
//!
//! * [`BpeTrainer`](train::BpeTrainer) is *incremental*: a pair→frequency
//!   map, a pair→words inverted index, and a lazily-validated max-heap
//!   replace the per-merge global recount — O(corpus + vocab·log corpus)
//!   instead of O(vocab × corpus) — with rayon-parallel initial chunk
//!   counting.
//! * [`Tokenizer::encode`](bpe::Tokenizer::encode) merges each chunk with
//!   a linked list + min-heap in O(n log n) and memoizes per-chunk results
//!   in a sharded cache; [`encode_batch`](bpe::Tokenizer::encode_batch) /
//!   [`count_batch`](bpe::Tokenizer::count_batch) fan out across threads.
//!
//! The original naive algorithms live on in [`reference`] as the
//! correctness oracle (property-tested bit-identical) and the benchmark
//! baseline.
//!
//! ```
//! use pce_tokenizer::{BpeTrainer, Tokenizer};
//!
//! let corpus = ["__global__ void add(float* a) { a[0] += 1.0f; }"];
//! let vocab = BpeTrainer::new(300).train(corpus.iter().copied());
//! let tok = Tokenizer::new(vocab);
//! let ids = tok.encode(corpus[0]);
//! assert_eq!(tok.decode(&ids), corpus[0]);
//! ```

#![forbid(unsafe_code)]

pub mod bpe;
pub mod pretokenizer;
pub mod reference;
pub mod stats;
pub mod train;

pub use bpe::{Tokenizer, Vocab};
pub use stats::{token_quartiles, TokenStats};
pub use train::BpeTrainer;
