//! BPE training: learn a merge table from a corpus — fast.
//!
//! The trainer is incremental, the standard technique production BPE
//! trainers (e.g. HuggingFace `tokenizers`) use:
//!
//! * **Parallel chunk counting.** Documents are pre-tokenized and distinct
//!   chunks counted in parallel shards, then merged (rayon).
//! * **Pair bookkeeping.** A `pair -> frequency` map plus a
//!   `pair -> {word index}` inverted index mean each merge only touches
//!   the words that actually contain the merged pair.
//! * **Lazy max-heap.** Candidate pairs sit in a binary heap keyed by
//!   (frequency, then smallest pair value). Entries are validated against
//!   the live frequency map on pop and re-pushed when stale, so stale
//!   entries cost O(log n) instead of a rescan.
//! * **Delta updates.** Applying a merge rewrites only the affected words
//!   and feeds the frequency deltas of their changed windows back into
//!   the map and heap — no global recount.
//!
//! Per merge this is O(touched words × word length + changed pairs ×
//! log pairs) instead of the naive O(corpus); end-to-end training drops
//! from O(vocab × corpus) to roughly O(corpus + vocab log corpus). The
//! result is **bit-identical** to [`crate::reference::naive_train`]: the
//! same (frequency desc, pair value asc) argmax, the same left-to-right
//! non-overlapping merge application, the same stopping rule —
//! property-tested in `tests/properties.rs`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use rayon::prelude::*;

use crate::bpe::Vocab;
use crate::pretokenizer::pretokenize;

/// BPE trainer configuration.
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    /// Target vocabulary size (bytes + merges); at least 256.
    pub vocab_size: usize,
    /// Pairs must occur at least this often to be merged.
    pub min_frequency: u64,
}

/// A heap entry: max by frequency, ties broken toward the *smallest*
/// pair value (the naive trainer's argmax order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Candidate {
    freq: u64,
    pair: (u32, u32),
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.freq
            .cmp(&other.freq)
            .then_with(|| other.pair.cmp(&self.pair))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl BpeTrainer {
    /// Trainer targeting `vocab_size` total tokens.
    pub fn new(vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "vocab must include all 256 byte tokens");
        BpeTrainer {
            vocab_size,
            min_frequency: 2,
        }
    }

    /// Set the minimum pair frequency (builder style).
    pub fn min_frequency(mut self, f: u64) -> Self {
        self.min_frequency = f.max(1);
        self
    }

    /// Learn a vocabulary from an iterator of documents.
    pub fn train<'a>(&self, docs: impl IntoIterator<Item = &'a str>) -> Vocab {
        // The builder clamps min_frequency to >= 1, but the fields are
        // public: clamp again so a struct-literal `min_frequency: 0`
        // cannot admit dead (zero-frequency) pairs as merges.
        let min_frequency = self.min_frequency.max(1);
        let docs: Vec<&str> = docs.into_iter().collect();

        // --- Parallel distinct-chunk counting -----------------------------
        let shard = docs.len().div_ceil(rayon::current_num_threads()).max(1);
        let partials: Vec<HashMap<&str, u64>> = docs
            .par_chunks(shard)
            .map(|part| {
                let mut local: HashMap<&str, u64> = HashMap::new();
                for doc in part {
                    for chunk in pretokenize(doc) {
                        *local.entry(chunk).or_insert(0) += 1;
                    }
                }
                local
            })
            .collect();
        let mut chunk_freq: HashMap<&str, u64> = HashMap::new();
        for local in partials {
            for (chunk, n) in local {
                *chunk_freq.entry(chunk).or_insert(0) += n;
            }
        }

        // Working representation: each distinct chunk as a symbol sequence,
        // in deterministic order regardless of HashMap layout.
        let mut words: Vec<(Vec<u32>, u64)> = chunk_freq
            .iter()
            .map(|(chunk, &freq)| (chunk.bytes().map(|b| b as u32).collect(), freq))
            .collect();
        words.sort_by(|a, b| a.0.cmp(&b.0));

        // --- Initial pair frequencies + inverted index --------------------
        let mut pair_freq: HashMap<(u32, u32), u64> = HashMap::new();
        let mut pair_words: HashMap<(u32, u32), HashSet<u32>> = HashMap::new();
        for (wi, (symbols, freq)) in words.iter().enumerate() {
            for w in symbols.windows(2) {
                let pair = (w[0], w[1]);
                *pair_freq.entry(pair).or_insert(0) += freq;
                pair_words.entry(pair).or_default().insert(wi as u32);
            }
        }
        let mut heap: BinaryHeap<Candidate> = pair_freq
            .iter()
            .filter(|(_, &f)| f >= min_frequency)
            .map(|(&pair, &freq)| Candidate { freq, pair })
            .collect();

        // --- Merge loop ---------------------------------------------------
        let mut merges = Vec::with_capacity(self.vocab_size - 256);
        let mut delta: HashMap<(u32, u32), i64> = HashMap::new();
        while 256 + merges.len() < self.vocab_size {
            // Pop until a live entry surfaces; re-push stale entries with
            // their current frequency. Every pushed entry has
            // freq >= min_frequency (initial filter + both push guards),
            // so a validated entry is always above threshold.
            let best = loop {
                match heap.pop() {
                    None => break None,
                    Some(cand) => {
                        let live = pair_freq.get(&cand.pair).copied().unwrap_or(0);
                        if live == cand.freq {
                            break Some(cand.pair);
                        }
                        if live >= min_frequency {
                            heap.push(Candidate {
                                freq: live,
                                pair: cand.pair,
                            });
                        }
                    }
                }
            };
            let pair = match best {
                Some(p) => p,
                None => break,
            };
            let new_id = 256 + merges.len() as u32;
            merges.push(pair);

            // Rewrite only the words that (may) contain the pair; collect
            // window deltas. Counts are commutative sums, so the index's
            // iteration order does not affect the result.
            delta.clear();
            let affected = pair_words.remove(&pair).unwrap_or_default();
            for wi in affected {
                let (symbols, freq) = &mut words[wi as usize];
                let freq = *freq as i64;
                if !contains_pair(symbols, pair) {
                    continue; // stale index entry: pair already consumed
                }
                for w in symbols.windows(2) {
                    *delta.entry((w[0], w[1])).or_insert(0) -= freq;
                }
                merge_in_place(symbols, pair, new_id);
                for w in symbols.windows(2) {
                    let p = (w[0], w[1]);
                    *delta.entry(p).or_insert(0) += freq;
                    if p.0 == new_id || p.1 == new_id {
                        pair_words.entry(p).or_default().insert(wi);
                    }
                }
            }

            // Apply deltas; push refreshed candidates for changed pairs.
            for (&p, &d) in &delta {
                if d == 0 {
                    continue;
                }
                let slot = pair_freq.entry(p).or_insert(0);
                let updated = (*slot as i64 + d).max(0) as u64;
                *slot = updated;
                if updated == 0 {
                    pair_freq.remove(&p);
                } else if updated >= min_frequency {
                    heap.push(Candidate {
                        freq: updated,
                        pair: p,
                    });
                }
            }
        }
        Vocab { merges }
    }
}

/// Does `symbols` contain `pair` as an adjacent window?
#[inline]
fn contains_pair(symbols: &[u32], pair: (u32, u32)) -> bool {
    symbols.windows(2).any(|w| (w[0], w[1]) == pair)
}

/// Replace every left-to-right, non-overlapping occurrence of `pair`
/// with `new_id`, in place — identical semantics to the naive trainer's
/// scan (which never re-matches the freshly written `new_id`).
fn merge_in_place(symbols: &mut Vec<u32>, pair: (u32, u32), new_id: u32) {
    let mut write = 0;
    let mut read = 0;
    while read < symbols.len() {
        if read + 1 < symbols.len() && symbols[read] == pair.0 && symbols[read + 1] == pair.1 {
            symbols[write] = new_id;
            read += 2;
        } else {
            symbols[write] = symbols[read];
            read += 1;
        }
        write += 1;
    }
    symbols.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpe::Tokenizer;
    use crate::reference::naive_train;

    #[test]
    fn training_learns_frequent_merges_first() {
        // 'aa' dominates: the first merge must be (a, a).
        let docs = ["aaaa aaaa aaaa", "b"];
        let vocab = BpeTrainer::new(260).train(docs.iter().copied());
        assert!(!vocab.merges.is_empty());
        assert_eq!(vocab.merges[0], (b'a' as u32, b'a' as u32));
    }

    #[test]
    fn vocab_size_is_respected() {
        let docs = ["the quick brown fox jumps over the lazy dog ".repeat(50)];
        let vocab = BpeTrainer::new(300).train(docs.iter().map(|s| s.as_str()));
        assert!(vocab.size() <= 300);
        assert!(vocab.size() > 256, "should have learned some merges");
    }

    #[test]
    fn min_frequency_stops_early() {
        // Every chunk unique: nothing repeats; with min_frequency 2 no
        // merges can be learned beyond within-chunk repetition.
        let docs = ["abcdefg"];
        let vocab = BpeTrainer::new(10_000)
            .min_frequency(2)
            .train(docs.iter().copied());
        assert_eq!(vocab.size(), 256);
    }

    #[test]
    fn training_is_deterministic() {
        let docs = [
            "__global__ void k(float* a) { a[0] = 1.0f; }",
            "#pragma omp parallel for reduction(+:sum)",
        ];
        let a = BpeTrainer::new(400).train(docs.iter().copied());
        let b = BpeTrainer::new(400).train(docs.iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn trained_tokenizer_round_trips_corpus() {
        let docs = ["kernel void compute(global float* data) { data[get_global_id(0)] *= 2.0f; }"];
        let vocab = BpeTrainer::new(500).train(docs.iter().copied());
        let tok = Tokenizer::new(vocab);
        assert_eq!(tok.decode(&tok.encode(docs[0])), docs[0]);
    }

    #[test]
    fn matches_naive_trainer_exactly() {
        let docs = [
            "__global__ void add(const float* a, float* b, int n) {",
            "  int i = blockIdx.x * blockDim.x + threadIdx.x;",
            "  if (i < n) { b[i] = a[i] + b[i]; }",
            "}",
            "#pragma omp target teams distribute parallel for",
            "for (int i = 0; i < n; ++i) b[i] += a[i];",
            "aaaa bbbb aaaa bbbb cccc",
        ];
        for vocab_size in [256, 270, 300, 600, 2000] {
            let fast = BpeTrainer::new(vocab_size).train(docs.iter().copied());
            let naive = naive_train(vocab_size, 2, docs.iter().copied());
            assert_eq!(fast, naive, "diverged at vocab {vocab_size}");
        }
    }

    #[test]
    fn public_field_min_frequency_zero_matches_naive() {
        // The fields are public, so the builder's >= 1 clamp can be
        // bypassed with a struct literal; train() must clamp again or
        // dead zero-frequency pairs get re-admitted as phantom merges.
        let docs = ["ab cd ef"];
        let fast = BpeTrainer {
            vocab_size: 300,
            min_frequency: 0,
        }
        .train(docs.iter().copied());
        let naive = naive_train(300, 0, docs.iter().copied());
        assert_eq!(fast, naive);
    }

    #[test]
    fn matches_naive_with_min_frequency_one() {
        let docs = ["abcabcabd", "xyz xyz"];
        let fast = BpeTrainer::new(400)
            .min_frequency(1)
            .train(docs.iter().copied());
        let naive = naive_train(400, 1, docs.iter().copied());
        assert_eq!(fast, naive);
    }

    #[test]
    fn overlapping_runs_merge_like_naive() {
        // "aaaa" -> the (a,a) windows overlap; both trainers must count
        // and merge them identically.
        let docs = ["aaaa aaa aa a", "aaaaaaa"];
        let fast = BpeTrainer::new(300).train(docs.iter().copied());
        let naive = naive_train(300, 2, docs.iter().copied());
        assert_eq!(fast, naive);
    }

    #[test]
    fn merge_in_place_is_left_to_right_non_overlapping() {
        let mut s = vec![97, 97, 97];
        merge_in_place(&mut s, (97, 97), 300);
        assert_eq!(s, vec![300, 97]);

        let mut s = vec![97, 97, 97, 97];
        merge_in_place(&mut s, (97, 97), 300);
        assert_eq!(s, vec![300, 300]);

        let mut s = vec![98, 97, 97, 99];
        merge_in_place(&mut s, (97, 97), 300);
        assert_eq!(s, vec![98, 300, 99]);
    }

    #[test]
    #[should_panic(expected = "vocab must include")]
    fn undersized_vocab_panics() {
        BpeTrainer::new(100);
    }
}
