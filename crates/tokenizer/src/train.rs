//! BPE training: learn a merge table from a corpus.
//!
//! The trainer is the textbook algorithm: count adjacent symbol pairs over
//! the pre-tokenized corpus (weighted by chunk frequency), repeatedly fuse
//! the most frequent pair, re-count, stop at the target vocabulary size or
//! when no pair repeats. Complexity is fine for our corpus sizes (a few MB
//! of generated source) because counting works on *distinct* chunks.

use std::collections::HashMap;

use crate::bpe::Vocab;
use crate::pretokenizer::pretokenize;

/// BPE trainer configuration.
#[derive(Debug, Clone)]
pub struct BpeTrainer {
    /// Target vocabulary size (bytes + merges); at least 256.
    pub vocab_size: usize,
    /// Pairs must occur at least this often to be merged.
    pub min_frequency: u64,
}

impl BpeTrainer {
    /// Trainer targeting `vocab_size` total tokens.
    pub fn new(vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "vocab must include all 256 byte tokens");
        BpeTrainer { vocab_size, min_frequency: 2 }
    }

    /// Set the minimum pair frequency (builder style).
    pub fn min_frequency(mut self, f: u64) -> Self {
        self.min_frequency = f.max(1);
        self
    }

    /// Learn a vocabulary from an iterator of documents.
    pub fn train<'a>(&self, docs: impl IntoIterator<Item = &'a str>) -> Vocab {
        // Distinct chunk -> frequency.
        let mut chunk_freq: HashMap<&str, u64> = HashMap::new();
        let mut total_chunks = 0u64;
        let docs: Vec<&str> = docs.into_iter().collect();
        for doc in &docs {
            for chunk in pretokenize(doc) {
                *chunk_freq.entry(chunk).or_insert(0) += 1;
                total_chunks += 1;
            }
        }
        let _ = total_chunks;

        // Working representation: each distinct chunk as a symbol sequence.
        let mut words: Vec<(Vec<u32>, u64)> = chunk_freq
            .iter()
            .map(|(chunk, &freq)| (chunk.bytes().map(|b| b as u32).collect(), freq))
            .collect();
        // Deterministic iteration order regardless of HashMap layout.
        words.sort_by(|a, b| a.0.cmp(&b.0));

        let mut merges = Vec::with_capacity(self.vocab_size - 256);
        while 256 + merges.len() < self.vocab_size {
            // Count all adjacent pairs.
            let mut pair_freq: HashMap<(u32, u32), u64> = HashMap::new();
            for (symbols, freq) in &words {
                for w in symbols.windows(2) {
                    *pair_freq.entry((w[0], w[1])).or_insert(0) += freq;
                }
            }
            // Deterministic argmax: highest frequency, ties by pair value.
            let best = pair_freq
                .iter()
                .filter(|(_, &f)| f >= self.min_frequency)
                .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)));
            let (&pair, _) = match best {
                Some(p) => p,
                None => break,
            };
            let new_id = 256 + merges.len() as u32;
            merges.push(pair);

            // Apply the merge to every word.
            for (symbols, _) in &mut words {
                let mut i = 0;
                while i + 1 < symbols.len() {
                    if symbols[i] == pair.0 && symbols[i + 1] == pair.1 {
                        symbols[i] = new_id;
                        symbols.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        Vocab { merges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpe::Tokenizer;

    #[test]
    fn training_learns_frequent_merges_first() {
        // 'aa' dominates: the first merge must be (a, a).
        let docs = ["aaaa aaaa aaaa", "b"];
        let vocab = BpeTrainer::new(260).train(docs.iter().copied());
        assert!(!vocab.merges.is_empty());
        assert_eq!(vocab.merges[0], (b'a' as u32, b'a' as u32));
    }

    #[test]
    fn vocab_size_is_respected() {
        let docs = ["the quick brown fox jumps over the lazy dog ".repeat(50)];
        let vocab = BpeTrainer::new(300).train(docs.iter().map(|s| s.as_str()));
        assert!(vocab.size() <= 300);
        assert!(vocab.size() > 256, "should have learned some merges");
    }

    #[test]
    fn min_frequency_stops_early() {
        // Every chunk unique: nothing repeats; with min_frequency 2 no
        // merges can be learned beyond within-chunk repetition.
        let docs = ["abcdefg"];
        let vocab = BpeTrainer::new(10_000)
            .min_frequency(2)
            .train(docs.iter().copied());
        assert_eq!(vocab.size(), 256);
    }

    #[test]
    fn training_is_deterministic() {
        let docs = [
            "__global__ void k(float* a) { a[0] = 1.0f; }",
            "#pragma omp parallel for reduction(+:sum)",
        ];
        let a = BpeTrainer::new(400).train(docs.iter().copied());
        let b = BpeTrainer::new(400).train(docs.iter().copied());
        assert_eq!(a, b);
    }

    #[test]
    fn trained_tokenizer_round_trips_corpus() {
        let docs = ["kernel void compute(global float* data) { data[get_global_id(0)] *= 2.0f; }"];
        let vocab = BpeTrainer::new(500).train(docs.iter().copied());
        let tok = Tokenizer::new(vocab);
        assert_eq!(tok.decode(&tok.encode(docs[0])), docs[0]);
    }

    #[test]
    #[should_panic(expected = "vocab must include")]
    fn undersized_vocab_panics() {
        BpeTrainer::new(100);
    }
}
