//! Wall-clock timing for the tokenizer and the full dataset pipeline on
//! the smoke corpus — a quick manual sanity check, not a criterion bench.

use pce_core::study::Study;
use pce_dataset::run_pipeline;
use pce_kernels::build_corpus;
use pce_tokenizer::{reference, BpeTrainer, Tokenizer};
use std::time::Instant;

fn main() {
    let study = Study::smoke();
    let corpus = build_corpus(&study.corpus).expect("corpus builds");
    let sources: Vec<&str> = corpus.iter().map(|p| p.source.as_str()).collect();
    let training: Vec<&str> = sources
        .iter()
        .copied()
        .step_by(study.pipeline.tokenizer_stride)
        .collect();

    // Tokenizer stage, seed-style: naive train + naive per-source encode.
    let t0 = Instant::now();
    let naive_vocab =
        reference::naive_train(study.pipeline.tokenizer_vocab, 2, training.iter().copied());
    let t_naive_train = t0.elapsed();
    let naive_tok = Tokenizer::new(naive_vocab);
    let t0 = Instant::now();
    let mut total = 0usize;
    for s in &sources {
        total += reference::naive_encode(&naive_tok, s).len();
    }
    let t_naive_count = t0.elapsed();

    // Tokenizer stage, fast: incremental train + count_batch.
    let t0 = Instant::now();
    let vocab = BpeTrainer::new(study.pipeline.tokenizer_vocab).train(training.iter().copied());
    let t_fast_train = t0.elapsed();
    let tok = Tokenizer::new(vocab.clone());
    let t0 = Instant::now();
    let fast_total: usize = tok.count_batch(&sources).iter().sum();
    let t_fast_count = t0.elapsed();
    assert_eq!(total, fast_total);

    // Full pipeline, 3 runs each.
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        let out = run_pipeline(&corpus, &study.pipeline);
        std::hint::black_box(&out);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    println!(
        "naive train: {:?}  naive count: {:?}",
        t_naive_train, t_naive_count
    );
    println!(
        "fast  train: {:?}  batch count: {:?}",
        t_fast_train, t_fast_count
    );
    println!(
        "train speedup: {:.1}x  count speedup: {:.1}x",
        t_naive_train.as_secs_f64() / t_fast_train.as_secs_f64(),
        t_naive_count.as_secs_f64() / t_fast_count.as_secs_f64()
    );
    println!(
        "tokenizer stage total: naive {:.1} ms -> fast {:.1} ms",
        (t_naive_train + t_naive_count).as_secs_f64() * 1e3,
        (t_fast_train + t_fast_count).as_secs_f64() * 1e3
    );
    println!("full run_pipeline (smoke, best of 3): {:.1} ms", best * 1e3);
}
