//! Criterion bench regenerating the RQ1 experiment (Table 1 cols 4–5) for
//! one reasoning and one standard model at reduced roofline count.

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::experiments::run_rq1;
use pce_llm::SurrogateEngine;

fn bench_rq1(c: &mut Criterion) {
    let mut study = bench_study();
    study.rq1_rooflines = 24;
    let engine = SurrogateEngine::new();
    let mut g = c.benchmark_group("rq1");
    g.sample_size(10);
    for model in ["o3-mini", "gpt-4o-mini"] {
        g.bench_function(model, |b| {
            b.iter(|| std::hint::black_box(run_rq1(&study, &engine, model)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rq1);
criterion_main!(benches);
