//! Criterion bench regenerating the RQ3 few-shot evaluation (Table 1
//! cols 9–11) over the smoke-scale dataset.

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::experiments::run_classification;
use pce_core::study::StudyData;
use pce_llm::SurrogateEngine;
use pce_prompt::ShotStyle;

fn bench_rq3(c: &mut Criterion) {
    let study = bench_study();
    let data = StudyData::build(&study).expect("study builds");
    let engine = SurrogateEngine::new();
    let mut g = c.benchmark_group("rq3_few_shot");
    g.sample_size(10);
    for model in ["o1", "gemini-2.0-flash-001"] {
        g.bench_function(model, |b| {
            b.iter(|| {
                std::hint::black_box(run_classification(
                    &study,
                    &engine,
                    model,
                    &data.dataset.samples,
                    ShotStyle::FewShot,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rq3);
criterion_main!(benches);
