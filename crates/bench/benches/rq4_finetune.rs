//! Criterion bench regenerating the RQ4 fine-tuning experiment (§3.7).

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::experiments::run_rq4;
use pce_core::study::StudyData;

fn bench_rq4(c: &mut Criterion) {
    let study = bench_study();
    let data = StudyData::build(&study).expect("study builds");
    let mut g = c.benchmark_group("rq4");
    g.sample_size(10);
    g.bench_function("finetune_and_validate", |b| {
        b.iter(|| std::hint::black_box(run_rq4(&study, &data.split)))
    });
    g.finish();
}

criterion_group!(benches, bench_rq4);
criterion_main!(benches);
