//! Criterion bench for the BPE tokenizer hot path: incremental trainer vs
//! the naive reference, encode throughput, and batch encoding.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use pce_kernels::{build_corpus, CorpusConfig};
use pce_tokenizer::{reference, BpeTrainer, Tokenizer};

fn corpus_docs() -> Vec<String> {
    build_corpus(&CorpusConfig {
        seed: 11,
        cuda_programs: 48,
        omp_programs: 36,
    })
    .expect("corpus builds")
    .into_iter()
    .map(|p| p.source)
    .collect()
}

fn bench_train(c: &mut Criterion) {
    let docs = corpus_docs();
    let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
    let bytes: usize = docs.iter().map(|d| d.len()).sum();
    let mut g = c.benchmark_group("bpe_train");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    g.bench_function("incremental_vocab_1200", |b| {
        b.iter_batched(
            || refs.clone(),
            |docs| std::hint::black_box(BpeTrainer::new(1200).train(docs)),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("naive_reference_vocab_1200", |b| {
        b.iter_batched(
            || refs.clone(),
            |docs| std::hint::black_box(reference::naive_train(1200, 2, docs)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_encode(c: &mut Criterion) {
    let docs = corpus_docs();
    let refs: Vec<&str> = docs.iter().map(|s| s.as_str()).collect();
    let vocab = BpeTrainer::new(1200).train(refs.iter().copied());
    let bytes: usize = docs.iter().map(|d| d.len()).sum();
    let mut g = c.benchmark_group("bpe_encode");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.sample_size(10);
    g.bench_function("heap_merge_corpus", |b| {
        // One tokenizer across iterations: the first pass warms the chunk
        // cache, so this measures warm steady state — deliberately, since
        // that is what the pipeline (one tokenizer, whole corpus) sees.
        // The naive baseline below has no cache by construction.
        let tok = Tokenizer::new(vocab.clone());
        b.iter(|| {
            let mut total = 0usize;
            for d in &refs {
                total += tok.count(d);
            }
            std::hint::black_box(total)
        })
    });
    g.bench_function("naive_reference_corpus", |b| {
        let tok = Tokenizer::new(vocab.clone());
        b.iter(|| {
            let mut total = 0usize;
            for d in &refs {
                total += reference::naive_encode(&tok, d).len();
            }
            std::hint::black_box(total)
        })
    });
    g.bench_function("count_batch_corpus", |b| {
        let tok = Tokenizer::new(vocab.clone());
        b.iter(|| std::hint::black_box(tok.count_batch(&refs)))
    });
    g.finish();
}

criterion_group!(benches, bench_train, bench_encode);
criterion_main!(benches);
