//! Criterion bench regenerating Figure 2 (token statistics) plus the full
//! dataset pipeline that feeds it.

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::figures::build_fig2;
use pce_core::study::StudyData;
use pce_dataset::run_pipeline;

fn bench_fig2(c: &mut Criterion) {
    let study = bench_study();
    let data = StudyData::build(&study).expect("study builds");
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    g.bench_function("stats_only", |b| {
        b.iter(|| std::hint::black_box(build_fig2(&data.split)))
    });
    g.bench_function("full_pipeline", |b| {
        b.iter(|| std::hint::black_box(run_pipeline(&data.corpus, &study.pipeline)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
