//! Criterion bench regenerating the RQ2 zero-shot evaluation (Table 1
//! cols 6–8) over the smoke-scale dataset.

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::experiments::run_classification;
use pce_core::study::StudyData;
use pce_llm::SurrogateEngine;
use pce_prompt::ShotStyle;

fn bench_rq2(c: &mut Criterion) {
    let study = bench_study();
    let data = StudyData::build(&study).expect("study builds");
    let engine = SurrogateEngine::new();
    let mut g = c.benchmark_group("rq2_zero_shot");
    g.sample_size(10);
    for model in ["o3-mini-high", "gpt-4o-mini"] {
        g.bench_function(model, |b| {
            b.iter(|| {
                std::hint::black_box(run_classification(
                    &study,
                    &engine,
                    model,
                    &data.dataset.samples,
                    ShotStyle::ZeroShot,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rq2);
criterion_main!(benches);
