//! Criterion bench regenerating Figure 1 (profile the corpus + build the
//! roofline scatter), cached and cache-ablated.

use criterion::{criterion_group, criterion_main, Criterion};

use pce_bench::bench_study;
use pce_core::figures::build_fig1;
use pce_core::study::StudyData;

fn bench_fig1(c: &mut Criterion) {
    let study = bench_study();
    let data = StudyData::build(&study).expect("study builds");
    let mut g = c.benchmark_group("fig1");
    g.sample_size(10);
    g.bench_function("with_cache", |b| {
        b.iter(|| std::hint::black_box(build_fig1(&study, &data.corpus, true)))
    });
    g.bench_function("no_cache_ablation", |b| {
        b.iter(|| std::hint::black_box(build_fig1(&study, &data.corpus, false)))
    });
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
