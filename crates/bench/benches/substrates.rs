//! Criterion benches over the substrate crates: profiler throughput,
//! tokenizer throughput, static analysis, corpus generation, and the
//! metrics kernels. These are the hot paths of every experiment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use pce_gpu_sim::Profiler;
use pce_kernels::{build_corpus, CorpusConfig};
use pce_roofline::HardwareSpec;
use pce_static_analysis::{analyze, AnalyzeOptions};
use pce_tokenizer::{BpeTrainer, Tokenizer};

fn bench_profiler(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig {
        seed: 1,
        cuda_programs: 32,
        omp_programs: 0,
    })
    .expect("corpus builds");
    let profiler = Profiler::new(HardwareSpec::rtx_3080());
    let mut g = c.benchmark_group("gpu_sim");
    g.throughput(Throughput::Elements(corpus.len() as u64));
    g.bench_function("profile_32_kernels", |b| {
        b.iter(|| {
            for p in &corpus {
                std::hint::black_box(profiler.profile(&p.ir, &p.launch));
            }
        })
    });
    g.finish();
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig {
        seed: 2,
        cuda_programs: 24,
        omp_programs: 0,
    })
    .expect("corpus builds");
    let docs: Vec<&str> = corpus.iter().map(|p| p.source.as_str()).collect();
    let tok = Tokenizer::new(BpeTrainer::new(800).train(docs.iter().copied()));
    let bytes: usize = docs.iter().map(|d| d.len()).sum();
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("encode_corpus", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for d in &docs {
                total += tok.count(d);
            }
            std::hint::black_box(total)
        })
    });
    g.bench_function("train_vocab_400", |b| {
        b.iter_batched(
            || docs.clone(),
            |docs| std::hint::black_box(BpeTrainer::new(400).train(docs)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_static_analysis(c: &mut Criterion) {
    let corpus = build_corpus(&CorpusConfig {
        seed: 3,
        cuda_programs: 16,
        omp_programs: 16,
    })
    .expect("corpus builds");
    let opts = AnalyzeOptions::default();
    let bytes: usize = corpus.iter().map(|p| p.source.len()).sum();
    let mut g = c.benchmark_group("static_analysis");
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function("analyze_corpus", |b| {
        b.iter(|| {
            for p in &corpus {
                std::hint::black_box(analyze(&p.source, &opts));
            }
        })
    });
    g.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    c.bench_function("corpus/generate_64_programs", |b| {
        b.iter(|| {
            std::hint::black_box(
                build_corpus(&CorpusConfig {
                    seed: 4,
                    cuda_programs: 48,
                    omp_programs: 16,
                })
                .expect("corpus builds"),
            )
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    use pce_metrics::{bootstrap_ci, chi_squared_independence, ConfusionMatrix};
    let outcomes: Vec<bool> = (0..340).map(|i| i % 3 != 0).collect();
    c.bench_function("metrics/bundle_340", |b| {
        b.iter(|| {
            let mut cm = ConfusionMatrix::new();
            for (i, &ok) in outcomes.iter().enumerate() {
                cm.record(i % 2 == 0, ok);
            }
            std::hint::black_box(cm.bundle())
        })
    });
    c.bench_function("metrics/bootstrap_1000", |b| {
        b.iter(|| {
            std::hint::black_box(bootstrap_ci(
                &outcomes,
                |xs| xs.iter().filter(|&&&x| x).count() as f64 / xs.len() as f64,
                1000,
                0.95,
                7,
            ))
        })
    });
    c.bench_function("metrics/chi2_3x2", |b| {
        let table = vec![vec![180u64, 160], vec![175, 165], vec![170, 170]];
        b.iter(|| {
            std::hint::black_box(chi_squared_independence(&table).expect("table is well-formed"))
        })
    });
}

criterion_group!(
    benches,
    bench_profiler,
    bench_tokenizer,
    bench_static_analysis,
    bench_corpus_generation,
    bench_metrics
);
criterion_main!(benches);
