//! # pce-bench
//!
//! The benchmark harness: one regeneration binary per paper artifact and
//! Criterion performance benches over the substrates.
//!
//! Regeneration binaries (`cargo run -p pce-bench --release --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 (all models × RQ1/RQ2/RQ3 metrics) |
//! | `suite` | Cross-hardware suite (per-spec Table 1 + label flips) |
//! | `fig1` | Figure 1 roofline scatter (CSV + summary) |
//! | `fig2` | Figure 2 token-count box plots |
//! | `rq4_finetune` | §3.7 fine-tuning collapse |
//! | `hyperparams` | §3.2 chi-squared sampling-parameter check |
//! | `dataset_stats` | §2.1–2.2 dataset funnel |
//! | `pipeline` | Streamed pipeline at 10k+-variant scale (`BENCH_pipeline.json`) |
//!
//! All binaries accept `--smoke` for a reduced-scale run (CI-friendly) and
//! default to the paper-scale study otherwise; `suite` also accepts
//! `--specs <name,name,...>` to pick the hardware matrix rows.

use pce_core::study::{ChaosConfig, Study};
use pce_roofline::{HardwareSpec, SpecClass};

/// Parse the common CLI convention: `--smoke` selects the reduced study.
pub fn study_from_args() -> Study {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        Study::smoke()
    } else {
        Study::default()
    }
}

/// A moderately sized study for criterion benches: big enough to be
/// representative, small enough to iterate.
pub fn bench_study() -> Study {
    Study::smoke()
}

/// Parse the `--timings [path]` convention: `None` when the flag is
/// absent, otherwise the output path for the timing JSON (default
/// `BENCH_suite.json`). A following argument is treated as the path
/// unless it looks like another flag.
pub fn timings_path_from_args(args: &[String]) -> Option<String> {
    let at = args.iter().position(|a| a == "--timings")?;
    Some(
        args.get(at + 1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .unwrap_or_else(|| "BENCH_suite.json".to_string()),
    )
}

/// The value following `flag`, when present and not itself a flag.
pub fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    let at = args.iter().position(|a| a == flag)?;
    args.get(at + 1)
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
}

/// Parse the chaos convention: `--chaos <seed>` switches fault injection
/// on, `--fault-rate <r>` tunes the total injection probability (default
/// 0.1, split evenly across the fault kinds), and `--wire-rate <r>` adds
/// connection-layer chaos (torn lines / disconnects / stalls, split
/// evenly; default 0). Without `--chaos` the run is fault-free;
/// `--fault-rate` or `--wire-rate` alone is rejected so a typo can't
/// silently drop the chaos layer.
pub fn chaos_from_args(args: &[String]) -> Result<Option<ChaosConfig>, String> {
    let has_chaos = args.iter().any(|a| a == "--chaos");
    let has_rate = args.iter().any(|a| a == "--fault-rate");
    let has_wire = args.iter().any(|a| a == "--wire-rate");
    if !has_chaos {
        if has_rate {
            return Err("--fault-rate requires --chaos <seed>".to_string());
        }
        if has_wire {
            return Err("--wire-rate requires --chaos <seed>".to_string());
        }
        return Ok(None);
    }
    let seed = flag_value(args, "--chaos")
        .ok_or("--chaos needs a seed, e.g. --chaos 42")?
        .parse::<u64>()
        .map_err(|e| format!("--chaos seed must be a u64: {e}"))?;
    let unit_rate = |flag: &str, default: f64| -> Result<f64, String> {
        match flag_value(args, flag) {
            None if args.iter().any(|a| a == flag) => {
                Err(format!("{flag} needs a value in [0, 1]"))
            }
            None => Ok(default),
            Some(raw) => {
                let r = raw
                    .parse::<f64>()
                    .map_err(|e| format!("{flag} must be a number: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("{flag} must be in [0, 1], got {r}"));
                }
                Ok(r)
            }
        }
    };
    let rate = unit_rate("--fault-rate", 0.1)?;
    let wire = unit_rate("--wire-rate", 0.0)?;
    let mut chaos = ChaosConfig::uniform(seed, rate);
    chaos.plan = chaos.plan.with_wire(pce_fault::WireRates::uniform(wire));
    Ok(Some(chaos))
}

/// Parse a comma-separated spec list into hardware presets of any class.
///
/// Names resolve case- and format-insensitively (`"a100"`, `"RTX 3080"`,
/// `"epyc-9654"`); an unknown or ambiguous name produces an error message
/// listing every known preset grouped by [`SpecClass`], so CLI users
/// never have to guess.
pub fn parse_specs(list: &str) -> Result<Vec<HardwareSpec>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| HardwareSpec::preset_by_name(name).map_err(|e| e.to_string()))
        .collect()
}

/// [`parse_specs`] restricted to one machine class: the `suite` bin's
/// `--specs` axis takes GPU presets, `--cpu-specs` takes CPU presets, and
/// a preset of the other class is rejected by name rather than silently
/// mislabeling half the corpus.
pub fn parse_specs_of(list: &str, class: SpecClass) -> Result<Vec<HardwareSpec>, String> {
    parse_specs(list)?
        .into_iter()
        .map(|hw| {
            if hw.class == class {
                Ok(hw)
            } else {
                Err(format!(
                    "'{}' is a {} preset, but this axis takes {class} specs; known presets:\n{}",
                    hw.name,
                    hw.class,
                    HardwareSpec::catalog_listing()
                ))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_specs_resolves_mixed_formats() {
        let specs = parse_specs("a100, RTX 3080,mi250x").unwrap();
        let names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "NVIDIA A100-SXM4-40GB",
                "NVIDIA GeForce RTX 3080",
                "AMD Instinct MI250X"
            ]
        );
        // Empty segments are skipped, an empty list parses to no specs.
        assert!(parse_specs(" , ,").unwrap().is_empty());
    }

    #[test]
    fn timings_flag_parses_with_and_without_path() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(timings_path_from_args(&args(&["suite", "--smoke"])), None);
        assert_eq!(
            timings_path_from_args(&args(&["suite", "--timings"])),
            Some("BENCH_suite.json".to_string())
        );
        assert_eq!(
            timings_path_from_args(&args(&["suite", "--timings", "out.json"])),
            Some("out.json".to_string())
        );
        assert_eq!(
            timings_path_from_args(&args(&["suite", "--timings", "--smoke"])),
            Some("BENCH_suite.json".to_string())
        );
    }

    #[test]
    fn chaos_flags_parse_and_reject_typos() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(chaos_from_args(&args(&["suite", "--smoke"])), Ok(None));

        let cfg = chaos_from_args(&args(&["suite", "--chaos", "42"]))
            .unwrap()
            .unwrap();
        assert_eq!(cfg.plan.seed, 42);
        assert!((cfg.plan.rates.total() - 0.1).abs() < 1e-12);

        let cfg = chaos_from_args(&args(&["suite", "--chaos", "7", "--fault-rate", "0.25"]))
            .unwrap()
            .unwrap();
        assert!((cfg.plan.rates.total() - 0.25).abs() < 1e-12);

        for bad in [
            vec!["suite", "--fault-rate", "0.1"],
            vec!["suite", "--chaos"],
            vec!["suite", "--chaos", "--smoke"],
            vec!["suite", "--chaos", "nope"],
            vec!["suite", "--chaos", "1", "--fault-rate"],
            vec!["suite", "--chaos", "1", "--fault-rate", "1.5"],
            vec!["suite", "--chaos", "1", "--fault-rate", "abc"],
        ] {
            assert!(chaos_from_args(&args(&bad)).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_specs_error_lists_known_presets() {
        let err = parse_specs("a100,notreal").unwrap_err();
        assert!(err.contains("unknown hardware spec 'notreal'"), "{err}");
        for name in HardwareSpec::preset_names() {
            assert!(err.contains(&name), "error must list {name}");
        }
        // Grouped by class, and ambiguity is an error too.
        assert!(err.contains("GPU presets:") && err.contains("CPU presets:"));
        let err = parse_specs("nvidia").unwrap_err();
        assert!(err.contains("ambiguous"), "{err}");
    }

    #[test]
    fn class_restricted_parsing_rejects_the_other_axis() {
        let gpus = parse_specs_of("a100,rtx-4090", SpecClass::Gpu).unwrap();
        assert!(gpus.iter().all(|hw| hw.class == SpecClass::Gpu));
        let cpus = parse_specs_of("epyc-9654,grace", SpecClass::Cpu).unwrap();
        assert!(cpus.iter().all(|hw| hw.class == SpecClass::Cpu));

        let err = parse_specs_of("a100,epyc-9654", SpecClass::Gpu).unwrap_err();
        assert!(err.contains("'AMD EPYC 9654' is a CPU preset"), "{err}");
        assert!(err.contains("GPU presets:"), "{err}");
        let err = parse_specs_of("a100", SpecClass::Cpu).unwrap_err();
        assert!(err.contains("GPU preset"), "{err}");
    }
}
