//! # pce-bench
//!
//! The benchmark harness: one regeneration binary per paper artifact and
//! Criterion performance benches over the substrates.
//!
//! Regeneration binaries (`cargo run -p pce-bench --release --bin <name>`):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 (all models × RQ1/RQ2/RQ3 metrics) |
//! | `fig1` | Figure 1 roofline scatter (CSV + summary) |
//! | `fig2` | Figure 2 token-count box plots |
//! | `rq4_finetune` | §3.7 fine-tuning collapse |
//! | `hyperparams` | §3.2 chi-squared sampling-parameter check |
//! | `dataset_stats` | §2.1–2.2 dataset funnel |
//!
//! All binaries accept `--smoke` for a reduced-scale run (CI-friendly) and
//! default to the paper-scale study otherwise.

use pce_core::study::Study;

/// Parse the common CLI convention: `--smoke` selects the reduced study.
pub fn study_from_args() -> Study {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        Study::smoke()
    } else {
        Study::default()
    }
}

/// A moderately sized study for criterion benches: big enough to be
/// representative, small enough to iterate.
pub fn bench_study() -> Study {
    Study::smoke()
}
