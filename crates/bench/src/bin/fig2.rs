//! Regenerate Figure 2: token-count box-and-whisker statistics of the
//! train/validation splits, per language and class.

use pce_bench::study_from_args;
use pce_core::figures::build_fig2;
use pce_core::report::render_fig2;
use pce_core::study::StudyData;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study).expect("study builds");
    println!("{}", render_fig2(&build_fig2(&data.split)));
}
