//! Regenerate the §2.1–2.2 dataset funnel, with a token-cutoff sweep
//! (DESIGN.md ablation).

use pce_bench::study_from_args;
use pce_core::report::render_funnel;
use pce_core::study::StudyData;
use pce_dataset::run_pipeline;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study).expect("study builds");
    println!("{}", render_funnel(&data.report));

    // Pre-funnel token distribution over the raw corpus, straight from
    // the pipeline's own batch counts (no retraining).
    if let Some(stats) = &data.report.raw_token_stats {
        println!(
            "Raw corpus tokens: n={} min={:.0} q1={:.0} median={:.0} q3={:.0} max={:.0} mean={:.1}",
            stats.n, stats.min, stats.q1, stats.median, stats.q3, stats.max, stats.mean
        );
    }

    println!("Token-cutoff ablation:");
    for cutoff in [2_000usize, 4_000, 8_000, 16_000] {
        let mut cfg = study.pipeline.clone();
        cfg.max_tokens = cutoff;
        let (_, _, report) = run_pipeline(&data.corpus, &cfg);
        let kept: usize = report.after_prune.values().sum();
        println!(
            "  cutoff {:>6}: kept {:>4} programs, final dataset {:>4}",
            cutoff, kept, report.final_size
        );
    }
}
