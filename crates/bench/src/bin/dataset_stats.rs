//! Regenerate the §2.1–2.2 dataset funnel, with a token-cutoff sweep
//! (DESIGN.md ablation).

use pce_bench::study_from_args;
use pce_core::report::render_funnel;
use pce_core::study::StudyData;
use pce_dataset::run_pipeline;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study);
    println!("{}", render_funnel(&data.report));

    println!("Token-cutoff ablation:");
    for cutoff in [2_000usize, 4_000, 8_000, 16_000] {
        let mut cfg = study.pipeline.clone();
        cfg.max_tokens = cutoff;
        let (_, _, report) = run_pipeline(&data.corpus, &cfg);
        let kept: usize = report.after_prune.values().sum();
        println!(
            "  cutoff {:>6}: kept {:>4} programs, final dataset {:>4}",
            cutoff, kept, report.final_size
        );
    }
}
