//! Kernel lint report: run the `pce-static-analysis` hazard diagnostics
//! over every generated corpus program and render a per-kernel, per-rule
//! report.
//!
//! ```text
//! lint [--smoke] [--csv <path>] [--emit-predict clean|racy]
//! ```
//!
//! The text report lists every rule (id, severity, firings over the
//! corpus's distinct sources) and then every program that carries a
//! diagnostic, one line per finding with its stable `line:col` span.
//! `--csv <path>` additionally writes one row per finding
//! (`program,kernel,rule,severity,line,col,message`).
//!
//! Exit status: `0` when the corpus is free of error-severity
//! diagnostics (warnings are allowed — generated kernels legitimately
//! carry serialized accumulators and strided subscripts), `1` when any
//! error-severity hazard fires. CI's `lint-smoke` job runs this over the
//! full corpus and treats a nonzero exit as a regression.
//!
//! `--emit-predict` prints a ready-made raw-source `predict src=...`
//! protocol line (percent-encoded via `pce_core::serve::encode_src`) for
//! a known-clean or known-racy kernel, so smoke scripts can pipe an
//! accept and a reject case through the `serve` bin without quoting
//! gymnastics.

use std::collections::BTreeMap;
use std::io::Write;

use pce_bench::{flag_value, study_from_args};
use pce_core::serve::encode_src;
use pce_kernels::build_corpus;
use pce_static_analysis::{diagnose, RuleId, Severity};

/// A clean kernel for `--emit-predict clean`: saxpy with a guarded,
/// thread-distinct store.
const CLEAN_SRC: &str = "__global__ void saxpy(int n, float a, const float* x, float* y) {\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    if (i < n) { y[i] = a * x[i] + y[i]; }\n}\n";

/// A racy kernel for `--emit-predict racy`: a tree reduction with the
/// loop barrier deleted — `shared-race` fires at error severity.
const RACY_SRC: &str = "__global__ void reduce_sum(const float* x, float* out, int n) {\n    __shared__ float buf[256];\n    int i = blockIdx.x * blockDim.x + threadIdx.x;\n    buf[threadIdx.x] = (i < n) ? x[i] : 0.0f;\n    __syncthreads();\n    for (int s = 128; s > 0; s >>= 1) {\n        if (threadIdx.x < s) { buf[threadIdx.x] += buf[threadIdx.x + s]; }\n    }\n    if (threadIdx.x == 0) { out[blockIdx.x] = buf[0]; }\n}\n";

fn main() {
    let args: Vec<String> = std::env::args().collect();

    if let Some(which) = flag_value(&args, "--emit-predict") {
        let (id, src) = match which {
            "clean" => ("lint-clean", CLEAN_SRC),
            "racy" => ("lint-racy", RACY_SRC),
            other => {
                eprintln!("--emit-predict takes clean|racy, got '{other}'");
                std::process::exit(2);
            }
        };
        println!("predict id={id} src={} spec=rtx-3080", encode_src(src));
        return;
    }

    let study = study_from_args();
    let corpus = match build_corpus(&study.corpus) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("corpus generation failed: {e}");
            std::process::exit(2);
        }
    };

    // Diagnose each distinct source once, in corpus order; variants that
    // share a source share its findings.
    let mut seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    let mut rule_totals: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut findings: Vec<(String, String, pce_static_analysis::Diagnostic)> = Vec::new();
    let mut programs_audited = 0usize;
    for p in &corpus {
        if !seen.insert(p.source.as_str()) {
            continue;
        }
        programs_audited += 1;
        for d in diagnose(&p.source) {
            *rule_totals.entry(d.rule.id()).or_insert(0) += 1;
            findings.push((p.id.clone(), p.kernel_name.clone(), d));
        }
    }

    println!(
        "lint: {} programs ({} distinct sources), {} findings",
        corpus.len(),
        programs_audited,
        findings.len()
    );
    println!("{:<20} {:<8} findings", "rule", "severity");
    for rule in RuleId::all() {
        println!(
            "{:<20} {:<8} {}",
            rule.id(),
            rule.severity().to_string(),
            rule_totals.get(rule.id()).copied().unwrap_or(0)
        );
    }
    for (id, _, d) in &findings {
        println!(
            "{id}: {} {} at {}:{} — {}",
            d.severity, d.rule, d.span.line, d.span.col, d.message
        );
    }

    if let Some(path) = flag_value(&args, "--csv") {
        let mut csv = String::from("program,kernel,rule,severity,line,col,message\n");
        for (id, kernel, d) in &findings {
            csv.push_str(&format!(
                "{id},{kernel},{},{},{},{},\"{}\"\n",
                d.rule,
                d.severity,
                d.span.line,
                d.span.col,
                d.message.replace('"', "'")
            ));
        }
        if let Err(e) = std::fs::write(path, csv) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}");
    }

    let errors = findings
        .iter()
        .filter(|(_, _, d)| d.severity == Severity::Error)
        .count();
    if errors > 0 {
        let mut err = std::io::stderr();
        let _ = writeln!(err, "lint: {errors} error-severity findings");
        std::process::exit(1);
    }
}
