//! Load generator / latency bench for the prediction service.
//!
//! Replays a seeded job mix (uniform over corpus kernels, hardware
//! presets, zoo models, and shot styles) against an in-process
//! [`PredictionService`] and reports:
//!
//! * a **bounded-vs-unbounded identity check** — the same jobs run
//!   against a tightly bounded cache bundle (evictions forced) and an
//!   unbounded one must produce byte-identical response transcripts,
//! * **p50/p99 per-job latency and sustained predictions/sec** at 1, 4,
//!   and all-core `RAYON_NUM_THREADS`, written to `BENCH_serve.json`
//!   (override with `--out <path>`) — the regression baseline CI guards.
//!
//! Per-job latency is its admission batch's wall-clock: every job in a
//! batch completes when the batch does, which is what a caller blocked on
//! the line protocol actually observes.
//!
//! `--jobs <n>` (default 120), `--seed <s>`, `--batch <n>` (default 24),
//! and `--cache-bytes <n>` (default 256 KiB per cache, small enough to
//! evict under the default mix) control the run; `--smoke` uses the
//! reduced-scale corpus. `--emit-jobs` prints the job mix as protocol
//! lines (plus `stats` and `quit`) and exits — CI pipes that into the
//! `serve` bin to smoke the stdin front end.

use std::time::Instant;

use pce_bench::{flag_value, study_from_args};
use pce_core::caches::CacheBudget;
use pce_core::serve::{IdentityCheck, Job, PredictionService, ServeBenchReport, ThreadPoint};
use pce_core::study::Study;
use pce_llm::model_zoo;
use pce_prompt::ShotStyle;
use pce_roofline::HardwareSpec;

/// Deterministic splitmix64 stream for the job mix.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    }
}

fn u64_flag(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("{flag} needs an integer, got '{v}'");
                std::process::exit(2);
            }
        },
    }
}

/// The seeded job mix: uniform over kernels × presets × models × styles.
fn job_mix(study: &Study, jobs: usize, seed: u64) -> Vec<Job> {
    let programs = pce_kernels::build_corpus(&study.corpus);
    let kernel_ids: Vec<String> = programs.into_iter().map(|p| p.id).collect();
    // Preset names carry spaces ("AMD Instinct MI250X"); the protocol is
    // whitespace-tokenized, so emit dash slugs — `preset_by_name` resolves
    // them format-insensitively.
    let slug = |name: &str| -> String {
        let mut out = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('-') {
                out.push('-');
            }
        }
        out.trim_matches('-').to_string()
    };
    let specs: Vec<String> = HardwareSpec::gpu_presets()
        .into_iter()
        .chain(HardwareSpec::cpu_presets())
        .map(|hw| slug(&hw.name))
        .collect();
    let models: Vec<String> = model_zoo().iter().map(|m| m.name.clone()).collect();
    let mut mix = Mix(seed);
    (0..jobs)
        .map(|i| Job {
            id: format!("j{i}"),
            kernel: mix.pick(&kernel_ids).clone(),
            spec: mix.pick(&specs).clone(),
            model: mix.pick(&models).clone(),
            style: if mix.next().is_multiple_of(2) {
                ShotStyle::ZeroShot
            } else {
                ShotStyle::FewShot
            },
        })
        .collect()
}

/// Render one job as its protocol line.
fn job_line(job: &Job) -> String {
    format!(
        "predict id={} kernel={} spec={} model={} shots={}",
        job.id,
        job.kernel,
        job.spec,
        job.model,
        match job.style {
            ShotStyle::ZeroShot => "zero",
            ShotStyle::FewShot => "few",
        }
    )
}

/// Replay `jobs` in admission batches, returning (responses, per-job
/// latencies in ms, total wall ms).
fn replay(service: &PredictionService, jobs: &[Job], batch: usize) -> (Vec<String>, Vec<f64>, f64) {
    let mut responses = Vec::with_capacity(jobs.len());
    let mut latencies = Vec::with_capacity(jobs.len());
    let run_start = Instant::now();
    for chunk in jobs.chunks(batch) {
        let t0 = Instant::now();
        let lines = service.predict_batch(chunk);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        latencies.extend(std::iter::repeat_n(ms, lines.len()));
        responses.extend(lines);
    }
    let total_ms = run_start.elapsed().as_secs_f64() * 1e3;
    (responses, latencies, total_ms)
}

/// Percentile over an unsorted latency sample (nearest-rank on a sorted
/// copy).
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let study = study_from_args();
    let jobs_n = usize_flag(&args, "--jobs", 120);
    let seed = u64_flag(&args, "--seed", 0x10ad);
    let batch = usize_flag(&args, "--batch", 24);
    let cache_bytes = u64_flag(&args, "--cache-bytes", 256 * 1024);
    let out = flag_value(&args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let jobs = job_mix(&study, jobs_n, seed);

    if args.iter().any(|a| a == "--emit-jobs") {
        for job in &jobs {
            println!("{}", job_line(job));
        }
        println!("stats");
        println!("quit");
        return;
    }

    // Identity check: bounded (evicting) vs unbounded transcripts must be
    // byte-identical — evictions only cost recomputation, never answers.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let bounded = PredictionService::new(study.clone(), Some(CacheBudget::uniform(cache_bytes)));
    let (bounded_lines, _, _) = replay(&bounded, &jobs, batch);
    let report = bounded.caches().report();
    let (evictions, resident) = (report.total_evictions(), report.total_resident_bytes());
    let unbounded = PredictionService::new(study.clone(), None);
    let (unbounded_lines, _, _) = replay(&unbounded, &jobs, batch);
    let matched = bounded_lines == unbounded_lines;
    eprintln!(
        "identity: bounded==unbounded {matched}, evictions={evictions}, resident_bytes={resident}"
    );
    if !matched {
        eprintln!("bounded and unbounded transcripts diverged");
        std::process::exit(2);
    }
    if evictions == 0 {
        eprintln!(
            "warning: no evictions at --cache-bytes {cache_bytes}; \
             lower the cap for a meaningful identity check"
        );
    }

    // Latency sweep: fresh (cold, bounded) service per thread count; the
    // transcripts must also agree across thread counts.
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 4, all];
    counts.sort_unstable();
    counts.dedup();
    let mut points = Vec::new();
    for threads in counts {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let service =
            PredictionService::new(study.clone(), Some(CacheBudget::uniform(cache_bytes)));
        let (lines, latencies, total_ms) = replay(&service, &jobs, batch);
        if lines != bounded_lines {
            eprintln!("transcript at {threads} threads diverged from the 4-thread run");
            std::process::exit(2);
        }
        let point = ThreadPoint {
            threads,
            p50_ms: percentile(&latencies, 50.0),
            p99_ms: percentile(&latencies, 99.0),
            predictions_per_sec: jobs.len() as f64 / (total_ms / 1e3),
            total_ms,
        };
        eprintln!(
            "threads={} p50={:.2}ms p99={:.2}ms rate={:.1}/s",
            point.threads, point.p50_ms, point.p99_ms, point.predictions_per_sec
        );
        points.push(point);
    }

    let report = ServeBenchReport {
        jobs: jobs.len(),
        batch,
        seed,
        cache_bytes,
        identity: IdentityCheck {
            bounded_equals_unbounded: matched,
            evictions,
            resident_bytes: resident,
        },
        threads: points,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {out}");
        }
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            std::process::exit(2);
        }
    }
}
