//! Load generator / latency bench for the prediction service.
//!
//! Replays a seeded job mix (uniform over corpus kernels, hardware
//! presets, zoo models, and shot styles) against an in-process
//! [`PredictionService`] and reports:
//!
//! * a **bounded-vs-unbounded identity check** — the same jobs run
//!   against a tightly bounded cache bundle (evictions forced) and an
//!   unbounded one must produce byte-identical response transcripts,
//! * **p50/p99 per-job latency and sustained predictions/sec** at 1, 4,
//!   and all-core `RAYON_NUM_THREADS`, written to `BENCH_serve.json`
//!   (override with `--out <path>`) — the regression baseline CI guards.
//!
//! Per-job latency is its admission batch's wall-clock: every job in a
//! batch completes when the batch does, which is what a caller blocked on
//! the line protocol actually observes.
//!
//! `--jobs <n>` (default 120), `--seed <s>`, `--batch <n>` (default 24),
//! and `--cache-bytes <n>` (default 256 KiB per cache, small enough to
//! evict under the default mix) control the run; `--smoke` uses the
//! reduced-scale corpus. `--emit-jobs` prints the job mix as protocol
//! lines (plus `stats` and `quit`) and exits — CI pipes that into the
//! `serve` bin to smoke the stdin front end.
//!
//! `--storm` additionally drives the whole mix (every job carrying a
//! tight `deadline_ms=`) plus a `drain` and a few post-drain stragglers
//! through a *bounded* `serve_session` (`--queue-depth <n>`, default 8)
//! at 1 and 4 threads, asserting byte-identical transcripts, exactly one
//! response per job, and a balanced extended ledger; the resulting
//! shed-rate/goodput profile lands in the report's `storm` field.
//! `--emit-jobs --storm` prints the raw storm stream for piping into the
//! `serve` bin.

use std::time::Instant;

use pce_bench::{flag_value, study_from_args};
use pce_core::caches::CacheBudget;
use pce_core::serve::{
    IdentityCheck, Job, PredictionService, ServeBenchReport, ServeConfig, StormReport, ThreadPoint,
};
use pce_core::study::Study;
use pce_llm::model_zoo;
use pce_prompt::ShotStyle;
use pce_roofline::HardwareSpec;

/// Deterministic splitmix64 stream for the job mix.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[(self.next() % items.len() as u64) as usize]
    }
}

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    }
}

fn u64_flag(args: &[String], flag: &str, default: u64) -> u64 {
    match flag_value(args, flag) {
        None => default,
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("{flag} needs an integer, got '{v}'");
                std::process::exit(2);
            }
        },
    }
}

/// The seeded job mix: uniform over kernels × presets × models × styles.
fn job_mix(study: &Study, jobs: usize, seed: u64) -> Vec<Job> {
    let programs = pce_kernels::build_corpus(&study.corpus).expect("corpus builds");
    let kernel_ids: Vec<String> = programs.into_iter().map(|p| p.id).collect();
    // Preset names carry spaces ("AMD Instinct MI250X"); the protocol is
    // whitespace-tokenized, so emit dash slugs — `preset_by_name` resolves
    // them format-insensitively.
    let slug = |name: &str| -> String {
        let mut out = String::with_capacity(name.len());
        for c in name.chars() {
            if c.is_ascii_alphanumeric() {
                out.push(c.to_ascii_lowercase());
            } else if !out.ends_with('-') {
                out.push('-');
            }
        }
        out.trim_matches('-').to_string()
    };
    let specs: Vec<String> = HardwareSpec::gpu_presets()
        .into_iter()
        .chain(HardwareSpec::cpu_presets())
        .map(|hw| slug(&hw.name))
        .collect();
    let models: Vec<String> = model_zoo().iter().map(|m| m.name.clone()).collect();
    let mut mix = Mix(seed);
    (0..jobs)
        .map(|i| Job {
            id: format!("j{i}"),
            kernel: mix.pick(&kernel_ids).clone(),
            spec: mix.pick(&specs).clone(),
            model: mix.pick(&models).clone(),
            style: if mix.next().is_multiple_of(2) {
                ShotStyle::ZeroShot
            } else {
                ShotStyle::FewShot
            },
            deadline_ms: None,
            src: None,
        })
        .collect()
}

/// Render one job as its protocol line.
fn job_line(job: &Job) -> String {
    let mut line = format!(
        "predict id={} kernel={} spec={} model={} shots={}",
        job.id,
        job.kernel,
        job.spec,
        job.model,
        match job.style {
            ShotStyle::ZeroShot => "zero",
            ShotStyle::FewShot => "few",
        }
    );
    if let Some(d) = job.deadline_ms {
        line.push_str(&format!(" deadline_ms={d}"));
    }
    line
}

/// Deadline every storm job carries, in virtual milliseconds. Against
/// the default 2 ms/job virtual cost and depth-8 queue this is tight
/// enough that one dispatch completes, the drained backlog expires, and
/// everything past the full queue is shed — all three outcomes exercised.
const STORM_DEADLINE_MS: u64 = 25;

/// The storm protocol stream: the seeded mix under a uniform tight
/// deadline, then `drain`, then a few stragglers (which a draining
/// server must shed), then `quit`.
fn storm_lines(jobs: &[Job]) -> Vec<String> {
    let mut lines = Vec::with_capacity(jobs.len() + 6);
    let with_deadline = |job: &Job, id: Option<String>| {
        let mut j = job.clone();
        j.deadline_ms = Some(STORM_DEADLINE_MS);
        if let Some(id) = id {
            j.id = id;
        }
        job_line(&j)
    };
    for job in jobs {
        lines.push(with_deadline(job, None));
    }
    lines.push("drain".to_string());
    for (i, job) in jobs.iter().take(4).enumerate() {
        lines.push(with_deadline(job, Some(format!("pd{i}"))));
    }
    lines.push("quit".to_string());
    lines
}

/// Drive the storm stream through a bounded `serve_session` at 1 and 4
/// threads; assert byte-identical transcripts, exactly one response per
/// submitted job, and a balanced extended ledger.
fn run_storm(study: &Study, jobs: &[Job], batch: usize, depth: usize) -> StormReport {
    let input: String = storm_lines(jobs).iter().map(|l| format!("{l}\n")).collect();
    let expected_ids: Vec<String> = jobs
        .iter()
        .map(|j| j.id.clone())
        .chain((0..4).map(|i| format!("pd{i}")))
        .collect();
    let config = ServeConfig {
        batch,
        queue_depth: Some(depth),
        ..ServeConfig::default()
    };
    let mut reference: Option<Vec<u8>> = None;
    let mut identical = true;
    let (mut completed, mut shed, mut expired, mut goodput) = (0u64, 0u64, 0u64, 0.0f64);
    for threads in [1usize, 4] {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let service = PredictionService::new(study.clone(), Some(CacheBudget::uniform(256 * 1024)))
            .expect("service builds");
        let mut out = Vec::new();
        let t0 = Instant::now();
        if let Err(e) = service.serve_session(input.as_bytes(), &mut out, &config) {
            eprintln!("storm serve failed at {threads} threads: {e}");
            std::process::exit(2);
        }
        let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
        if !service.ledger_balanced() {
            eprintln!("storm ledger unbalanced at {threads} threads");
            std::process::exit(2);
        }
        let ledger = service.ledger();
        (completed, shed, expired) = (ledger.completed, ledger.shed, ledger.expired);
        goodput = ledger.completed as f64 / wall_s;
        if completed + shed + expired != expected_ids.len() as u64 {
            eprintln!(
                "storm accounting hole: {} submitted but {completed}+{shed}+{expired} resolved",
                expected_ids.len()
            );
            std::process::exit(2);
        }
        let text = String::from_utf8_lossy(&out);
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for line in text.lines() {
            if line.starts_with("ok ") || line.starts_with("err ") {
                if let Some(id) = line.split_whitespace().find_map(|t| t.strip_prefix("id=")) {
                    *counts.entry(id).or_default() += 1;
                }
            }
        }
        for id in &expected_ids {
            if counts.get(id.as_str()) != Some(&1) {
                eprintln!(
                    "storm job {id} answered {} times (want exactly 1)",
                    counts.get(id.as_str()).copied().unwrap_or(0)
                );
                std::process::exit(2);
            }
        }
        match &reference {
            None => reference = Some(out),
            Some(r) => identical &= *r == out,
        }
    }
    if !identical {
        eprintln!("storm transcripts diverged across thread counts");
        std::process::exit(2);
    }
    if shed == 0 {
        eprintln!("storm shed nothing — queue depth {depth} is not an overload");
        std::process::exit(2);
    }
    eprintln!(
        "storm: {} jobs, completed={completed} shed={shed} expired={expired} goodput={goodput:.1}/s",
        expected_ids.len()
    );
    StormReport {
        jobs: expected_ids.len(),
        queue_depth: depth,
        deadline_ms: STORM_DEADLINE_MS,
        completed,
        shed,
        expired,
        shed_rate: shed as f64 / expected_ids.len() as f64,
        goodput_per_sec: goodput,
        transcript_identical_across_threads: identical,
    }
}

/// Replay `jobs` in admission batches, returning (responses, per-job
/// latencies in ms, total wall ms).
fn replay(service: &PredictionService, jobs: &[Job], batch: usize) -> (Vec<String>, Vec<f64>, f64) {
    let mut responses = Vec::with_capacity(jobs.len());
    let mut latencies = Vec::with_capacity(jobs.len());
    let run_start = Instant::now();
    for chunk in jobs.chunks(batch) {
        let t0 = Instant::now();
        let lines = service.predict_batch(chunk);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        latencies.extend(std::iter::repeat_n(ms, lines.len()));
        responses.extend(lines);
    }
    let total_ms = run_start.elapsed().as_secs_f64() * 1e3;
    (responses, latencies, total_ms)
}

/// Percentile over an unsorted latency sample (nearest-rank on a sorted
/// copy).
fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let study = study_from_args();
    let jobs_n = usize_flag(&args, "--jobs", 120);
    let seed = u64_flag(&args, "--seed", 0x10ad);
    let batch = usize_flag(&args, "--batch", 24);
    let cache_bytes = u64_flag(&args, "--cache-bytes", 256 * 1024);
    let out = flag_value(&args, "--out")
        .map(str::to_string)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let jobs = job_mix(&study, jobs_n, seed);

    let storm = args.iter().any(|a| a == "--storm");
    if args.iter().any(|a| a == "--emit-jobs") {
        if storm {
            for line in storm_lines(&jobs) {
                println!("{line}");
            }
        } else {
            for job in &jobs {
                println!("{}", job_line(job));
            }
            println!("stats");
            println!("quit");
        }
        return;
    }

    // Identity check: bounded (evicting) vs unbounded transcripts must be
    // byte-identical — evictions only cost recomputation, never answers.
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let bounded = PredictionService::new(study.clone(), Some(CacheBudget::uniform(cache_bytes)))
        .expect("service builds");
    let (bounded_lines, _, _) = replay(&bounded, &jobs, batch);
    let report = bounded.caches().report();
    let (evictions, resident) = (report.total_evictions(), report.total_resident_bytes());
    let unbounded = PredictionService::new(study.clone(), None).expect("service builds");
    let (unbounded_lines, _, _) = replay(&unbounded, &jobs, batch);
    let matched = bounded_lines == unbounded_lines;
    eprintln!(
        "identity: bounded==unbounded {matched}, evictions={evictions}, resident_bytes={resident}"
    );
    if !matched {
        eprintln!("bounded and unbounded transcripts diverged");
        std::process::exit(2);
    }
    if evictions == 0 {
        eprintln!(
            "warning: no evictions at --cache-bytes {cache_bytes}; \
             lower the cap for a meaningful identity check"
        );
    }

    // Latency sweep: fresh (cold, bounded) service per thread count; the
    // transcripts must also agree across thread counts.
    let all = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize, 4, all];
    counts.sort_unstable();
    counts.dedup();
    let mut points = Vec::new();
    for threads in counts {
        std::env::set_var("RAYON_NUM_THREADS", threads.to_string());
        let service =
            PredictionService::new(study.clone(), Some(CacheBudget::uniform(cache_bytes)))
                .expect("service builds");
        let (lines, latencies, total_ms) = replay(&service, &jobs, batch);
        if lines != bounded_lines {
            eprintln!("transcript at {threads} threads diverged from the 4-thread run");
            std::process::exit(2);
        }
        let point = ThreadPoint {
            threads,
            p50_ms: percentile(&latencies, 50.0),
            p99_ms: percentile(&latencies, 99.0),
            predictions_per_sec: jobs.len() as f64 / (total_ms / 1e3),
            total_ms,
        };
        eprintln!(
            "threads={} p50={:.2}ms p99={:.2}ms rate={:.1}/s",
            point.threads, point.p50_ms, point.p99_ms, point.predictions_per_sec
        );
        points.push(point);
    }

    let storm_report = if storm {
        Some(run_storm(
            &study,
            &jobs,
            batch,
            usize_flag(&args, "--queue-depth", 8),
        ))
    } else {
        None
    };

    let report = ServeBenchReport {
        jobs: jobs.len(),
        batch,
        seed,
        cache_bytes,
        identity: IdentityCheck {
            bounded_equals_unbounded: matched,
            evictions,
            resident_bytes: resident,
        },
        threads: points,
        storm: storm_report,
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&out, &json) {
                eprintln!("cannot write {out}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {out}");
        }
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            std::process::exit(2);
        }
    }
}
