//! Regenerate the cross-hardware suite: one shared corpus/tokenizer/RQ1
//! build, a per-spec Table 1 for every hardware preset, and the
//! label-flip analysis.
//!
//! `--smoke` runs the reduced-scale study; `--specs <name,name,...>`
//! restricts the hardware matrix (names resolve case/format-insensitively,
//! e.g. `--specs "a100,rtx-4090,MI250X"`). Default is paper scale across
//! the full preset catalog.

use pce_bench::{parse_specs, study_from_args};
use pce_core::report::{render_flips_csv, render_suite, render_suite_csv};
use pce_core::suite::{run_suite, Suite};
use pce_roofline::HardwareSpec;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let specs = match args.iter().position(|a| a == "--specs") {
        None => HardwareSpec::presets(),
        Some(i) => {
            let list = args.get(i + 1).map(String::as_str).unwrap_or("");
            match parse_specs(list) {
                Ok(specs) if !specs.is_empty() => specs,
                Ok(_) => {
                    eprintln!(
                        "--specs needs a comma-separated list of preset names; known presets:\n  {}",
                        HardwareSpec::preset_names().join("\n  ")
                    );
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    };
    let suite = Suite {
        base: study_from_args(),
        specs,
    };
    let outcome = run_suite(&suite);
    println!("{}", render_suite(&outcome));
    println!(
        "### CSV — per-cell metrics\n\n{}",
        render_suite_csv(&outcome)
    );
    println!("### CSV — label flips\n\n{}", render_flips_csv(&outcome));
}
