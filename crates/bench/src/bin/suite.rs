//! Regenerate the cross-hardware suite: one shared corpus/tokenizer/RQ1
//! build, a per-cell Table 1 for every (GPU, CPU) preset pair, and the
//! language-split label-flip analysis.
//!
//! `--smoke` runs the reduced-scale study; `--specs <name,name,...>`
//! restricts the GPU axis and `--cpu-specs <name,name,...>` the CPU axis
//! (names resolve case/format-insensitively, e.g. `--specs
//! "a100,rtx-4090" --cpu-specs "epyc-9654,grace"`; a preset of the wrong
//! class for its axis is rejected by name). Default is paper scale across
//! the full preset catalog: every GPU preset × every CPU preset.
//!
//! `--timings [path]` additionally instruments the run: per-stage
//! wall-clock and cache-hit counters are printed and written as JSON
//! (default `BENCH_suite.json`) — the perf baseline future PRs measure
//! against. The rendered reports are byte-identical with or without the
//! flag.
//!
//! `--chaos <seed>` turns on deterministic fault injection against the
//! surrogate engine (truncations, mangled answers, refusals, timeouts,
//! transient errors); `--fault-rate <r>` sets the total injection
//! probability (default 0.1). The run degrades gracefully — retried and
//! failed responses land in a response ledger rendered with the reports —
//! and the same seed reproduces the same faults byte-for-byte.

use pce_bench::{chaos_from_args, parse_specs_of, study_from_args, timings_path_from_args};
use pce_core::caches::SuiteCaches;
use pce_core::report::{render_accounting_csv, render_flips_csv, render_suite, render_suite_csv};
use pce_core::suite::{run_suite, run_suite_timed, Suite};
use pce_roofline::{HardwareSpec, SpecClass};

/// Resolve one axis flag (`--specs` / `--cpu-specs`) to a preset list, or
/// exit with the grouped catalog on any error.
fn axis_from_args(
    args: &[String],
    flag: &str,
    class: SpecClass,
    default: Vec<HardwareSpec>,
) -> Vec<HardwareSpec> {
    match args.iter().position(|a| a == flag) {
        None => default,
        Some(i) => {
            let list = args.get(i + 1).map(String::as_str).unwrap_or("");
            match parse_specs_of(list, class) {
                Ok(specs) if !specs.is_empty() => specs,
                Ok(_) => {
                    eprintln!(
                        "{flag} needs a comma-separated list of {class} preset names; known presets:\n{}",
                        HardwareSpec::catalog_listing()
                    );
                    std::process::exit(2);
                }
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let specs = axis_from_args(
        &args,
        "--specs",
        SpecClass::Gpu,
        HardwareSpec::gpu_presets(),
    );
    let cpu_specs = axis_from_args(
        &args,
        "--cpu-specs",
        SpecClass::Cpu,
        HardwareSpec::cpu_presets(),
    );
    let mut base = study_from_args();
    base.chaos = match chaos_from_args(&args) {
        Ok(chaos) => chaos,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let chaos_active = base.chaos.is_some();
    let suite = Suite {
        base,
        specs,
        cpu_specs,
    };

    let timings = timings_path_from_args(&args);
    let run = match &timings {
        None => run_suite(&suite),
        Some(path) => run_suite_timed(&suite, &SuiteCaches::new()).map(|(outcome, bench)| {
            match serde_json::to_string_pretty(&bench) {
                Ok(json) => {
                    if let Err(e) = std::fs::write(path, &json) {
                        eprintln!("cannot write {path}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("wrote {path}");
                }
                Err(e) => eprintln!("cannot serialize bench report: {e}"),
            }
            eprintln!("{}", bench.summary());
            outcome
        }),
    };
    let outcome = match run {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("suite failed: {e}");
            std::process::exit(2);
        }
    };

    println!("{}", render_suite(&outcome));
    println!(
        "### CSV — per-cell metrics\n\n{}",
        render_suite_csv(&outcome)
    );
    println!("### CSV — label flips\n\n{}", render_flips_csv(&outcome));
    if chaos_active {
        let acc = outcome.accounting();
        println!(
            "### CSV — response ledger\n\n{}",
            render_accounting_csv(&outcome)
        );
        println!(
            "chaos summary: injected={} recovered={} invalid={} refused={} retries={} backoff_ms={} balanced={}",
            acc.injected,
            acc.retried_valid,
            acc.invalid,
            acc.refused,
            acc.retries,
            acc.backoff_ms,
            acc.balanced(),
        );
    }
}
