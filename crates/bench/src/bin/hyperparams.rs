//! Regenerate the §3.2 sampling-hyperparameter chi-squared check.

use pce_bench::study_from_args;
use pce_core::experiments::run_hyperparam_check;
use pce_core::report::render_hyperparams;
use pce_core::study::StudyData;
use pce_llm::SurrogateEngine;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study).expect("study builds");
    let engine = SurrogateEngine::new();
    for model in ["gemini-2.0-flash-001", "gpt-4o-mini", "gpt-4o-2024-11-20"] {
        let check = run_hyperparam_check(&study, &engine, model, &data.dataset.samples);
        println!("{}", render_hyperparams(&check));
    }
}
