//! Regenerate Figure 1: the RTX 3080 rooflines with every profiled kernel
//! scattered on top. Prints a summary and writes `fig1.csv` next to the
//! working directory; `--no-cache` runs the L2-ablated variant.

use pce_bench::study_from_args;
use pce_core::figures::build_fig1;
use pce_core::report::{render_fig1_csv, render_fig1_summary};
use pce_core::study::StudyData;

fn main() {
    let study = study_from_args();
    let cache = !std::env::args().any(|a| a == "--no-cache");
    let data = StudyData::build(&study).expect("study builds");
    let fig = build_fig1(&study, &data.corpus, cache);
    print!("{}", render_fig1_summary(&fig));
    let csv = render_fig1_csv(&fig);
    let path = if cache {
        "fig1.csv"
    } else {
        "fig1_nocache.csv"
    };
    std::fs::write(path, &csv).expect("write fig1 csv");
    println!("wrote {path} ({} rows)", csv.lines().count() - 1);
}
