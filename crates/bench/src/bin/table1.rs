//! Regenerate the paper's Table 1: every model × (RQ1, RQ1-CoT, RQ2, RQ3).
//!
//! `--smoke` runs the reduced-scale study; default is paper scale
//! (340 balanced samples, 240 RQ1 rooflines).

use pce_bench::study_from_args;
use pce_core::report::{render_funnel, render_table1};
use pce_core::study::StudyData;
use pce_core::table1::build_table1;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study).expect("study builds");
    println!("{}", render_funnel(&data.report));
    let table = build_table1(&study, &data);
    println!("{}", render_table1(&table));
}
