//! Streamed-pipeline scale benchmark: run a variant-expanded corpus
//! (smoke base × [`VariantAxes::scale`] = 10k+ kernels) through the
//! sharded pipeline under a bounded memo budget, and write per-stage
//! wall-clock plus dedup/cache effectiveness to `BENCH_pipeline.json`.
//!
//! The CI `corpus-scale-smoke` job replays this binary and guards the
//! committed baseline: nonzero variant-dedup hits, `resident_bytes`
//! within the configured budget, and total wall clock within 1.5× of
//! the committed run.
//!
//! Flags: `--smoke` (reduced base corpus — what CI runs), `--shard-size
//! <n>` (default 512), `--cache-bytes <n>` (default 4 MiB per memo
//! layer), `--out <path>` (default `BENCH_pipeline.json`).

use std::time::Instant;

use pce_bench::{flag_value, study_from_args};
use pce_dataset::run_pipeline_streamed_timed;
use pce_gpu_sim::{CacheCounters, SimBudget, SimCaches};
use pce_kernels::{CorpusSpec, VariantAxes};
use pce_memo::DedupStats;

/// The committed `BENCH_pipeline.json` baseline: scale parameters,
/// per-stage wall clock, dedup effectiveness, and memo-cache residency.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct PipelineBenchReport {
    /// Total variant-expanded corpus size streamed.
    variants: usize,
    /// Programs per shard.
    shard_size: usize,
    /// Byte budget per memo layer.
    cache_bytes: u64,
    /// Final balanced dataset size.
    final_size: usize,
    /// Variant-dedup hit fraction in `[0, 1]`.
    dedup_hit_rate: f64,
    /// Variant-dedup tallies (unique vs duplicate profile fingerprints).
    dedup: DedupStats,
    /// Profile-cache counters after the run (bounded by `cache_bytes`).
    profile_cache: CacheCounters,
    /// Summary-cache counters after the run (bounded by `cache_bytes`).
    summary_cache: CacheCounters,
    /// Per-stage wall clock.
    stages: Vec<StageMs>,
    /// End-to-end wall clock.
    total_ms: f64,
}

/// One stage's wall-clock entry.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct StageMs {
    /// Stage name.
    stage: String,
    /// Wall-clock milliseconds.
    wall_ms: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let study = study_from_args();
    let shard_size = flag_value(&args, "--shard-size")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(512);
    let cache_bytes = flag_value(&args, "--cache-bytes")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(4 * 1024 * 1024);
    let out = flag_value(&args, "--out").unwrap_or("BENCH_pipeline.json");

    let spec = CorpusSpec {
        base: study.corpus,
        axes: VariantAxes::scale(),
    };
    let caches = SimCaches::with_budget(SimBudget::uniform(cache_bytes));
    eprintln!(
        "streaming {} variants ({} base programs × {}×) in shards of {}, {} B/memo-layer budget",
        spec.len(),
        study.corpus.cuda_programs + study.corpus.omp_programs,
        spec.axes.expansion_factor(),
        shard_size,
        cache_bytes,
    );

    let start = Instant::now();
    let (dataset, split, report, timings) =
        run_pipeline_streamed_timed(&spec, &study.pipeline, &caches, shard_size)
            .expect("streamed pipeline runs");
    let total_ms = start.elapsed().as_secs_f64() * 1e3;

    let profile = caches.profiles().counters();
    let summary = caches.summaries().counters();
    eprintln!(
        "dataset {} samples (train {} / validation {}), dedup {} unique / {} duplicate ({:.1}% hit rate)",
        dataset.len(),
        split.train.len(),
        split.validation.len(),
        report.dedup.unique,
        report.dedup.duplicates,
        report.dedup.hit_rate() * 100.0,
    );
    eprintln!(
        "profile cache: {} hits / {} misses, {} evictions, {} B resident",
        profile.hits, profile.misses, profile.evictions, profile.resident_bytes,
    );

    let bench = PipelineBenchReport {
        variants: spec.len(),
        shard_size,
        cache_bytes,
        final_size: report.final_size,
        dedup_hit_rate: report.dedup.hit_rate(),
        dedup: report.dedup,
        profile_cache: profile,
        summary_cache: summary,
        stages: timings
            .iter()
            .map(|t| StageMs {
                stage: t.stage.clone(),
                wall_ms: t.seconds * 1e3,
            })
            .collect(),
        total_ms,
    };
    let rendered = serde_json::to_string_pretty(&bench).expect("bench report serializes");
    std::fs::write(out, rendered + "\n").expect("bench report writes");
    eprintln!("wrote {out} (total {total_ms:.1} ms)");
}
