//! Prediction-as-a-service front end: answer (kernel, hardware, model,
//! shot-style) jobs over the line protocol, batched and fanned out across
//! the rayon pool.
//!
//! By default the service reads commands from stdin and writes responses
//! to stdout; `--listen <addr:port>` serves the same protocol over TCP
//! instead (one thread per connection, all connections sharing one
//! service and its caches).
//!
//! Protocol (one command per line):
//!
//! ```text
//! predict id=<token> kernel=<corpus-id> spec=<preset> model=<zoo-name> shots=<zero|few> [deadline_ms=<n>]
//! predict id=<token> src=<percent-encoded-source> spec=<preset> [deadline_ms=<n>]
//! stats
//! drain
//! quit
//! ```
//!
//! The `src=` form submits raw kernel source (percent-encoded, see the
//! `lint` bin's `--emit-predict`): the static analyzer answers it at
//! admission — clean source gets a static roofline label, source with
//! error-severity hazard diagnostics is rejected with `kind=lint`.
//!
//! `--smoke` serves the reduced-scale corpus; `--batch <n>` sets the
//! admission batch size (default 32). Caches are *bounded* by default
//! (64 MiB per cache layer); `--cache-bytes <n>` overrides the per-cache
//! capacity and `--unbounded` disables bounding entirely. `--chaos
//! <seed>` / `--fault-rate <r>` inject deterministic engine faults, as in
//! the `suite` bin, and `--wire-rate <r>` adds connection chaos (torn
//! lines, disconnects, virtual-clock stalls).
//!
//! Overload safety: `--queue-depth <n>` bounds the admission queue (jobs
//! arriving on a busy, full queue are shed with `err ... shed=queue`),
//! `--default-deadline-ms <n>` applies a deadline to jobs without their
//! own `deadline_ms=`, `--cost-ms <n>` sets the virtual per-job service
//! cost the deadline/queue model runs on, and `--breaker-threshold <n>`
//! sets how many consecutive invalid/refused responses open a model's
//! circuit breaker. Responses carry no timing, so transcripts are
//! byte-reproducible across batch sizes, thread counts, and cache bounds.

use std::io::{BufReader, Write};
use std::net::TcpListener;
use std::sync::Arc;

use pce_bench::{chaos_from_args, flag_value, study_from_args};
use pce_core::caches::CacheBudget;
use pce_core::serve::{PredictionService, ServeConfig};

/// Default per-cache capacity: generous enough that a normal smoke
/// workload never evicts, small enough to bound a long-lived process.
const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

fn budget_from_args(args: &[String]) -> Option<CacheBudget> {
    if args.iter().any(|a| a == "--unbounded") {
        return None;
    }
    let bytes = match flag_value(args, "--cache-bytes") {
        None => DEFAULT_CACHE_BYTES,
        Some(v) => match v.parse::<u64>() {
            Ok(b) => b,
            Err(_) => {
                eprintln!("--cache-bytes needs an integer byte count, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    Some(CacheBudget::uniform(bytes))
}

fn usize_flag(args: &[String], flag: &str, default: usize) -> usize {
    match flag_value(args, flag) {
        None => default,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("{flag} needs a positive integer, got '{v}'");
                std::process::exit(2);
            }
        },
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut study = study_from_args();
    study.chaos = match chaos_from_args(&args) {
        Ok(chaos) => chaos,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let batch = usize_flag(&args, "--batch", 32);
    let budget = budget_from_args(&args);
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        batch,
        queue_depth: flag_value(&args, "--queue-depth").map(|v| match v.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--queue-depth needs a positive integer, got '{v}'");
                std::process::exit(2);
            }
        }),
        default_deadline_ms: flag_value(&args, "--default-deadline-ms").map(|v| {
            match v.parse::<u64>() {
                Ok(n) => n,
                Err(_) => {
                    eprintln!("--default-deadline-ms needs an integer, got '{v}'");
                    std::process::exit(2);
                }
            }
        }),
        cost_ms_per_job: usize_flag(&args, "--cost-ms", defaults.cost_ms_per_job as usize) as u64,
        breaker_threshold: usize_flag(
            &args,
            "--breaker-threshold",
            defaults.breaker_threshold as usize,
        ) as u32,
        ..defaults
    };
    let service = Arc::new(PredictionService::new(study, budget).expect("service builds"));
    eprintln!(
        "serving {} kernels (batch={batch}, queue {}, caches {})",
        service.programs().len(),
        match config.queue_depth {
            Some(d) => format!("bounded (depth {d})"),
            None => "unbounded".to_string(),
        },
        if budget.is_some() {
            "bounded"
        } else {
            "unbounded"
        },
    );

    match flag_value(&args, "--listen") {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            if let Err(e) = service.serve_session(stdin.lock(), stdout.lock(), &config) {
                eprintln!("serve failed: {e}");
                std::process::exit(2);
            }
        }
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("cannot listen on {addr}: {e}");
                    std::process::exit(2);
                }
            };
            eprintln!("listening on {addr}");
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("accept failed: {e}");
                        continue;
                    }
                };
                let service = Arc::clone(&service);
                let config = config.clone();
                std::thread::spawn(move || {
                    let reader = match stream.try_clone() {
                        Ok(r) => BufReader::new(r),
                        Err(e) => {
                            eprintln!("cannot clone connection: {e}");
                            return;
                        }
                    };
                    let mut writer = stream;
                    if let Err(e) = service.serve_session(reader, &mut writer, &config) {
                        eprintln!("connection failed: {e}");
                    }
                    let _ = writer.flush();
                });
            }
        }
    }
}
