//! Calibration probe: print per-model RQ2/RQ3 accuracy on the smoke study
//! (used while tuning zoo capability parameters; kept as a diagnostic).

use pce_core::experiments::run_classification;
use pce_core::study::{Study, StudyData};
use pce_llm::{model_zoo, SurrogateEngine};
use pce_prompt::ShotStyle;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let study = if smoke {
        Study::smoke()
    } else {
        Study::default()
    };
    let data = StudyData::build(&study).expect("study builds");
    println!(
        "dataset: {} samples (per-combo {})",
        data.dataset.len(),
        data.report.per_combo
    );
    let engine = SurrogateEngine::new();
    println!(
        "{:<24} {:>6} {:>8} {:>8} {:>8} {:>8}",
        "model", "reas", "rq2 acc", "rq2 mcc", "rq3 acc", "rq3 mcc"
    );
    for spec in model_zoo() {
        let rq2 = run_classification(
            &study,
            &engine,
            &spec.name,
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        let rq3 = run_classification(
            &study,
            &engine,
            &spec.name,
            &data.dataset.samples,
            ShotStyle::FewShot,
        );
        println!(
            "{:<24} {:>6} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            spec.name,
            if spec.reasoning { "yes" } else { "no" },
            rq2.metrics.accuracy,
            rq2.metrics.mcc,
            rq3.metrics.accuracy,
            rq3.metrics.mcc
        );
    }
}
