//! Regenerate the RQ4 fine-tuning experiment (§3.7): train the surrogate
//! head on the 80% split and report the validation collapse.

use pce_bench::study_from_args;
use pce_core::experiments::run_rq4;
use pce_core::report::render_rq4;
use pce_core::study::StudyData;

fn main() {
    let study = study_from_args();
    let data = StudyData::build(&study).expect("study builds");
    println!("{}", render_rq4(&run_rq4(&study, &data.split)));
}
