//! Prompt re-parsing: the surrogate engines recover structured facts from
//! the prompt text, exactly as a hosted model must.
//!
//! Everything here is tolerant, hand-rolled text scanning — no panics on
//! malformed prompts. The top-level parsers return structured
//! [`PceError::Parse`] failures naming the first missing marker, which the
//! engine degrades to a prior-driven guess (which is also what real models
//! do with garbled context) and the response accounting can count.

use std::collections::BTreeMap;

use pce_fault::PceError;

/// The `Parse` error for a marker the scanner could not find.
fn missing(marker: &str) -> PceError {
    PceError::parse(format!("missing '{marker}' marker"))
}

/// A parsed RQ1 roofline question.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rq1Question {
    /// Max bandwidth, GB/s.
    pub bandwidth_gbs: f64,
    /// Peak performance, GFLOP/s.
    pub peak_gflops: f64,
    /// Queried arithmetic intensity, FLOP/byte.
    pub ai: f64,
}

/// A parsed RQ2/RQ3 classification request.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassifyQuestion {
    /// `"CUDA"` or `"OMP"` (as written in the prompt).
    pub language: String,
    /// Kernel name.
    pub kernel_name: String,
    /// Peak SP GFLOP/s.
    pub peak_sp: f64,
    /// Peak DP GFLOP/s.
    pub peak_dp: f64,
    /// Peak INT GINTOP/s.
    pub peak_int: f64,
    /// Bandwidth GB/s.
    pub bandwidth: f64,
    /// CLI arguments.
    pub args: Vec<String>,
    /// The source-code block.
    pub source: String,
}

/// Extract the first floating-point number after `marker` in `text`,
/// searching from `from`. Returns the value and the index just past it.
fn number_after(text: &str, marker: &str, from: usize) -> Option<(f64, usize)> {
    let at = text[from..].find(marker)? + from + marker.len();
    let rest = &text[at..];
    let start = rest.find(|c: char| c.is_ascii_digit())?;
    let tail = &rest[start..];
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == '-' || c == '+'))
        .unwrap_or(tail.len());
    let mut slice = &tail[..end];
    // Trim trailing punctuation that the scanner may have swallowed.
    while slice.ends_with(['.', '-', '+', 'e']) {
        slice = &slice[..slice.len() - 1];
    }
    let value: f64 = slice.parse().ok()?;
    Some((value, at + start + slice.len()))
}

/// Parse the **last** RQ1 question in a (possibly few-shot) prompt.
///
/// The `Err` names the first marker the scanner could not find.
pub fn parse_rq1(prompt: &str) -> Result<Rq1Question, PceError> {
    let last_q = prompt
        .rfind("Question:")
        .ok_or_else(|| missing("Question:"))?;
    let q = &prompt[last_q..];
    let (bandwidth_gbs, _) =
        number_after(q, "max bandwidth of", 0).ok_or_else(|| missing("max bandwidth of"))?;
    let (peak_gflops, _) =
        number_after(q, "peak performance of", 0).ok_or_else(|| missing("peak performance of"))?;
    let (ai, _) = number_after(q, "Arithmetic Intensity of", 0)
        .ok_or_else(|| missing("Arithmetic Intensity of"))?;
    Ok(Rq1Question {
        bandwidth_gbs,
        peak_gflops,
        ai,
    })
}

/// Whether a prompt looks like an RQ1 roofline-calculation question.
pub fn is_rq1_prompt(prompt: &str) -> bool {
    prompt.contains("does the roofline model consider")
        && prompt.contains("Arithmetic Intensity of")
}

/// Whether CoT examples are present (RQ1 prompts with "Thought:" lines).
pub fn has_cot_examples(prompt: &str) -> bool {
    prompt.contains("Thought:")
}

/// Parse a classification prompt (Fig. 4 template).
///
/// The `Err` names the first marker the scanner could not find.
pub fn parse_classify(prompt: &str) -> Result<ClassifyQuestion, PceError> {
    let at = prompt
        .find("Classify the ")
        .ok_or_else(|| missing("Classify the "))?;
    let rest = &prompt[at + "Classify the ".len()..];
    let mut words = rest.split_whitespace();
    let language = words
        .next()
        .ok_or_else(|| PceError::parse("missing language after 'Classify the '"))?
        .to_string();
    // "... kernel called NAME as Bandwidth or Compute bound."
    let name_at = rest
        .find("kernel called ")
        .ok_or_else(|| missing("kernel called "))?
        + "kernel called ".len();
    let kernel_name: String = rest[name_at..]
        .split_whitespace()
        .next()
        .ok_or_else(|| PceError::parse("missing kernel name after 'kernel called '"))?
        .trim_matches(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .to_string();

    let (peak_sp, _) = number_after(prompt, "peak single-precision performance of", 0)
        .ok_or_else(|| missing("peak single-precision performance of"))?;
    let (peak_dp, _) = number_after(prompt, "peak double-precision performance of", 0)
        .ok_or_else(|| missing("peak double-precision performance of"))?;
    let (peak_int, _) = number_after(prompt, "peak integer performance of", 0)
        .ok_or_else(|| missing("peak integer performance of"))?;
    let (bandwidth, _) =
        number_after(prompt, "max bandwidth of", 0).ok_or_else(|| missing("max bandwidth of"))?;

    let args = {
        let marker = "command-line arguments: ";
        match prompt.find(marker) {
            Some(p) => {
                let tail = &prompt[p + marker.len()..];
                let end = tail.find('.').unwrap_or(tail.len());
                tail[..end]
                    .split_whitespace()
                    .map(|s| s.to_string())
                    .collect()
            }
            None => Vec::new(),
        }
    };

    let src_marker = "Below is the source code";
    let src_at = prompt.find(src_marker).ok_or_else(|| missing(src_marker))?;
    let source = prompt[src_at..]
        .split_once(":\n")
        .map(|x| x.1)
        .unwrap_or("")
        .to_string();

    Ok(ClassifyQuestion {
        language,
        kernel_name,
        peak_sp,
        peak_dp,
        peak_int,
        bandwidth,
        args,
        source,
    })
}

/// Bind positional CLI arguments to source variable names by reading the
/// program's own `argv` parsing, e.g.
/// `long n = (argc > 1) ? (long)atol(argv[1]) : 1048576;` binds `n` to
/// `args[0]`. Falls back to the declared default when the argument is
/// absent. This is exactly the inference a careful reader performs.
pub fn bind_args_to_params(source: &str, args: &[String]) -> BTreeMap<String, u64> {
    let mut params = BTreeMap::new();
    for line in source.lines() {
        let trimmed = line.trim_start();
        // Expect: TYPE NAME = (argc > K) ? ... : DEFAULT;
        let Some(eq) = trimmed.find("= (argc >") else {
            continue;
        };
        let head = trimmed[..eq].trim();
        let Some(name) = head.split_whitespace().last() else {
            continue;
        };
        let tail = &trimmed[eq..];
        let Some((idx, after_idx)) = number_after(tail, "argc >", 0) else {
            continue;
        };
        let arg_pos = idx as usize; // argv[K] is the K'th positional arg
        let value = args
            .get(arg_pos.wrapping_sub(1))
            .and_then(|a| a.parse::<f64>().ok())
            .or_else(|| {
                // Default: the number after the ':'.
                let colon = tail[after_idx..].rfind(':')?;
                number_after(&tail[after_idx + colon..], ":", 0).map(|(v, _)| v)
            });
        if let Some(v) = value {
            if v >= 0.0 && v.is_finite() {
                params.insert(name.to_string(), v as u64);
            }
        }
    }
    params
}

#[cfg(test)]
mod tests {
    use super::*;

    const RQ1: &str = "Question: Given a GPU having a global memory with a max bandwidth \
        of 45.9 GB/s and a peak performance of 52.22 GFLOP/s, if a program executed with \
        an Arithmetic Intensity of 0.6 FLOP/Byte and a performance of 19.4 GFLOP/s, does \
        the roofline model consider the program as compute-bound or bandwidth-bound?\nAnswer:";

    #[test]
    fn parses_the_fig3_example() {
        let q = parse_rq1(RQ1).unwrap();
        assert_eq!(q.bandwidth_gbs, 45.9);
        assert_eq!(q.peak_gflops, 52.22);
        assert_eq!(q.ai, 0.6);
        assert!(is_rq1_prompt(RQ1));
        assert!(!has_cot_examples(RQ1));
    }

    #[test]
    fn parses_the_last_question_in_fewshot_prompts() {
        let fewshot = format!(
            "Question: Given a GPU having a global memory with a max bandwidth of 100 GB/s \
             and a peak performance of 200 GFLOP/s, if a program executed with an Arithmetic \
             Intensity of 5.0 FLOP/Byte and a performance of 150 GFLOP/s, does the roofline \
             model consider the program as compute-bound or bandwidth-bound?\nAnswer: Compute\n\n{RQ1}"
        );
        let q = parse_rq1(&fewshot).unwrap();
        assert_eq!(q.ai, 0.6); // the query, not the example
    }

    #[test]
    fn classify_prompt_round_trips_through_renderer() {
        use pce_roofline::HardwareSpec;
        let req = pce_prompt_compat_render();
        let parsed = parse_classify(&req).unwrap();
        assert_eq!(parsed.language, "CUDA");
        assert_eq!(parsed.kernel_name, "saxpy");
        let hw = HardwareSpec::rtx_3080();
        assert_eq!(parsed.peak_sp, hw.peak_sp_gflops);
        assert_eq!(parsed.peak_dp, hw.peak_dp_gflops);
        assert_eq!(parsed.bandwidth, hw.bandwidth_gbs);
        assert_eq!(parsed.args, vec!["1048576", "100"]);
        assert!(parsed.source.contains("__global__"));
    }

    /// A hand-built Fig.-4-shaped prompt (avoiding a circular dev-dep on
    /// pce-prompt; the cross-crate round-trip test lives at workspace level).
    fn pce_prompt_compat_render() -> String {
        let hw = pce_roofline::HardwareSpec::rtx_3080();
        format!(
            "You are a GPU performance analysis expert...\n\n\
             Classify the CUDA kernel called saxpy as Bandwidth or Compute bound. \
             The system it will execute on is a {} with:\n\
             - peak single-precision performance of {} GFLOP/s\n\
             - peak double-precision performance of {} GFLOP/s\n\
             - peak integer performance of {} GINTOP/s\n\
             - max bandwidth of {} GB/s\n\n\
             The block and grid sizes of the invoked kernel are (4096,1,1) and (256,1,1), \
             respectively. The executable running this kernel is launched with the \
             following command-line arguments: 1048576 100.\n\n\
             Below is the source code of the requested CUDA kernel:\n\n\
             __global__ void saxpy(long n, float a, const float* x, float* y) {{ }}\n",
            hw.name, hw.peak_sp_gflops, hw.peak_dp_gflops, hw.peak_int_giops, hw.bandwidth_gbs
        )
    }

    #[test]
    fn arg_binding_reads_argv_parsing() {
        let src = "int main(int argc, char* argv[]) {\n\
                   \x20 long n = (argc > 1) ? (long)atol(argv[1]) : 1048576;\n\
                   \x20 int iters = (argc > 2) ? (int)atol(argv[2]) : 100;\n";
        let params = bind_args_to_params(src, &["4096".to_string(), "7".to_string()]);
        assert_eq!(params["n"], 4096);
        assert_eq!(params["iters"], 7);
    }

    #[test]
    fn arg_binding_falls_back_to_defaults() {
        let src = "  long dim = (argc > 1) ? (long)atol(argv[1]) : 2048;\n";
        let params = bind_args_to_params(src, &[]);
        assert_eq!(params["dim"], 2048);
    }

    #[test]
    fn malformed_prompts_parse_to_structured_errors() {
        assert!(parse_rq1("what is a roofline?").is_err());
        assert!(parse_classify("classify this please").is_err());
        assert!(bind_args_to_params("int main() {}", &[]).is_empty());
    }

    #[test]
    fn rq1_errors_name_the_first_missing_marker() {
        let e = parse_rq1("no question here").unwrap_err();
        assert_eq!(e.to_string(), "parse error: missing 'Question:' marker");
        let e = parse_rq1("Question: about rooflines").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing 'max bandwidth of' marker"
        );
        let e = parse_rq1("Question: max bandwidth of 10 GB/s").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing 'peak performance of' marker"
        );
        let e = parse_rq1("Question: max bandwidth of 10 GB/s, peak performance of 20 GFLOP/s")
            .unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing 'Arithmetic Intensity of' marker"
        );
    }

    #[test]
    fn classify_errors_name_the_first_missing_marker() {
        let e = parse_classify("no template at all").unwrap_err();
        assert_eq!(e.to_string(), "parse error: missing 'Classify the ' marker");
        let e = parse_classify("Classify the ").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing language after 'Classify the '"
        );
        let e = parse_classify("Classify the CUDA thing").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing 'kernel called ' marker"
        );
        let e = parse_classify("Classify the CUDA kernel called saxpy as bound.").unwrap_err();
        assert_eq!(
            e.to_string(),
            "parse error: missing 'peak single-precision performance of' marker"
        );
        // All parse errors are retryable: a salted retry can repair a
        // malformed response.
        assert!(e.retryable());
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn number_extraction_handles_punctuation() {
        let (v, _) = number_after("max bandwidth of 760 GB/s,", "max bandwidth of", 0).unwrap();
        assert_eq!(v, 760.0);
        let (v, _) = number_after("performance of 465.1 GFLOP/s", "performance of", 0).unwrap();
        assert_eq!(v, 465.1);
    }
}
