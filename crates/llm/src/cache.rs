//! Suite-scale memoization for the surrogate engine.
//!
//! A cross-hardware suite asks the engine the same pure questions over and
//! over: with 7 hardware specs × 9 models × 2 shot styles, a single corpus
//! source is statically analyzed up to ~126 times even though only a
//! handful of distinct [`AnalyzeOptions`] ever reach the estimator, and
//! each rendered prompt is re-parsed once per model despite being
//! byte-identical across the zoo.
//!
//! [`LlmCaches`] collapses that redundancy with three caches:
//!
//! * an **analysis cache** keyed by (source hash, analyze options) in
//!   front of `pce_static_analysis::analyze` — the 762-line estimator runs
//!   once per distinct question,
//! * a **classify parse cache** keyed by prompt hash in front of
//!   [`parse_classify`], which also precomputes the CLI-argument binding
//!   deep readers feed the estimator,
//! * an **RQ1 parse cache** keyed by prompt hash in front of
//!   [`parse_rq1`].
//!
//! All cached functions are pure, so cached and cold runs are
//! bit-identical; entries live in sharded, fingerprint-bucketed
//! [`pce_memo::Memo`] tables (full-equality-verified, so collisions can
//! only cost a scan). Clones share storage: one bundle can serve every
//! model, hardware spec, and repeated run of a suite.

use std::collections::BTreeMap;
use std::sync::Arc;

use pce_memo::{Fnv, Memo};
use pce_static_analysis::{analyze, AnalyzeOptions, SourceAnalysis};

use crate::parse::{bind_args_to_params, parse_classify, parse_rq1, ClassifyQuestion, Rq1Question};

pub use pce_memo::CacheCounters;

/// Byte budgets for the engine's three memo layers. `None` leaves that
/// layer unbounded — fine for one-shot batch runs; long-lived services
/// should bound all three.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlmBudget {
    /// Capacity of the static-analysis cache, in approximate bytes.
    pub analysis_bytes: Option<u64>,
    /// Capacity of the classify prompt-parse cache.
    pub classify_bytes: Option<u64>,
    /// Capacity of the RQ1 prompt-parse cache.
    pub rq1_bytes: Option<u64>,
}

impl LlmBudget {
    /// Bound all three layers to the same capacity.
    pub fn uniform(bytes: u64) -> LlmBudget {
        LlmBudget {
            analysis_bytes: Some(bytes),
            classify_bytes: Some(bytes),
            rq1_bytes: Some(bytes),
        }
    }
}

/// Fingerprint a prompt: word-granular FNV-1a over its bytes.
///
/// This is the engine's single per-request pass over the prompt text —
/// it keys the parse caches *and* seeds the response noise stream, so an
/// 11 KB prompt is digested once per completion instead of once per
/// consumer. Pure function of the prompt bytes.
pub fn prompt_fingerprint(prompt: &str) -> u64 {
    let mut h = Fnv::new();
    h.str(prompt);
    h.finish()
}

/// Key of one memoized static analysis: exactly the inputs of
/// [`pce_static_analysis::analyze`].
#[derive(Debug, PartialEq)]
struct AnalysisKey {
    source: String,
    params: BTreeMap<String, u64>,
    default_trip_bits: u64,
    loop_aware: bool,
}

/// A classify prompt parsed once: the recovered question plus the
/// CLI-argument binding deep readers feed the estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedClassify {
    /// The recovered classification question.
    pub question: ClassifyQuestion,
    /// `bind_args_to_params(question.source, question.args)`, precomputed
    /// so deep readers don't re-scan the source per model.
    pub deep_params: BTreeMap<String, u64>,
}

/// The engine's shared cache bundle. `Clone` is shallow: clones share
/// storage across models, hardware specs, and repeated runs.
#[derive(Debug, Clone, Default)]
pub struct LlmCaches {
    inner: Arc<LlmCachesInner>,
}

#[derive(Debug, Default)]
struct LlmCachesInner {
    analyses: Memo<AnalysisKey, SourceAnalysis>,
    classify: Memo<String, Option<ParsedClassify>>,
    rq1: Memo<String, Option<Rq1Question>>,
}

impl LlmCaches {
    /// A fresh, empty, unbounded cache bundle.
    pub fn new() -> LlmCaches {
        LlmCaches::default()
    }

    /// A fresh bundle with each layer bounded per `budget` (`None` fields
    /// stay unbounded). Entry costs are approximations dominated by the
    /// cached source/prompt text; evictions only cost recomputation, so
    /// bounded and unbounded bundles stay byte-identical.
    pub fn with_budget(budget: LlmBudget) -> LlmCaches {
        let analysis_cost = |k: &AnalysisKey, v: &SourceAnalysis| {
            k.source.len() as u64
                + k.params.keys().map(|p| p.len() as u64 + 16).sum::<u64>()
                + std::mem::size_of::<SourceAnalysis>() as u64
                + v.kernels.len() as u64 * 256
        };
        // Parsed questions carry the source text extracted from the
        // prompt, so a parse entry weighs roughly two prompt lengths.
        let classify_cost = |k: &String, _: &Option<ParsedClassify>| 2 * k.len() as u64 + 512;
        let rq1_cost = |k: &String, _: &Option<Rq1Question>| k.len() as u64 + 256;
        fn build<K: PartialEq, V>(
            bytes: Option<u64>,
            cost: impl Fn(&K, &V) -> u64 + Send + Sync + 'static,
        ) -> Memo<K, V> {
            match bytes {
                Some(b) => Memo::bounded(b, cost),
                None => Memo::new(),
            }
        }
        LlmCaches {
            inner: Arc::new(LlmCachesInner {
                analyses: build(budget.analysis_bytes, analysis_cost),
                classify: build(budget.classify_bytes, classify_cost),
                rq1: build(budget.rq1_bytes, rq1_cost),
            }),
        }
    }

    /// Run (or recall) the static analyzer for `source` under the given
    /// options, computed at most once per distinct (source, options) key.
    pub fn analysis(
        &self,
        source: &str,
        params: &BTreeMap<String, u64>,
        default_trip: f64,
        loop_aware: bool,
    ) -> Arc<SourceAnalysis> {
        let mut h = Fnv::new();
        h.str(source);
        h.map_u64(params);
        h.f64(default_trip);
        h.u64(loop_aware as u64);
        self.inner.analyses.get_or_insert_with(
            h.finish(),
            |k| {
                k.loop_aware == loop_aware
                    && k.default_trip_bits == default_trip.to_bits()
                    && k.params == *params
                    && k.source == source
            },
            || AnalysisKey {
                source: source.to_string(),
                params: params.clone(),
                default_trip_bits: default_trip.to_bits(),
                loop_aware,
            },
            || {
                analyze(
                    source,
                    &AnalyzeOptions {
                        params: params.clone(),
                        default_trip,
                        loop_aware,
                    },
                )
            },
        )
    }

    /// Parse (or recall) a classification prompt, including the deep
    /// readers' CLI-argument binding. `None` is cached too: a malformed
    /// prompt is re-answered from the prior without re-scanning.
    pub fn classify(&self, prompt: &str) -> Arc<Option<ParsedClassify>> {
        self.classify_fp(prompt, prompt_fingerprint(prompt))
    }

    /// [`LlmCaches::classify`] with the prompt's fingerprint precomputed
    /// (callers that already digested the prompt skip a second pass).
    pub fn classify_fp(&self, prompt: &str, prompt_fp: u64) -> Arc<Option<ParsedClassify>> {
        let mut h = Fnv::resume(prompt_fp);
        h.u64(0xc1);
        self.inner.classify.get_or_insert_with(
            h.finish(),
            |k| k == prompt,
            || prompt.to_string(),
            || {
                parse_classify(prompt).ok().map(|question| {
                    let deep_params = bind_args_to_params(&question.source, &question.args);
                    ParsedClassify {
                        question,
                        deep_params,
                    }
                })
            },
        )
    }

    /// Parse (or recall) the last RQ1 roofline question in a prompt.
    pub fn rq1(&self, prompt: &str) -> Arc<Option<Rq1Question>> {
        self.rq1_fp(prompt, prompt_fingerprint(prompt))
    }

    /// [`LlmCaches::rq1`] with the prompt's fingerprint precomputed.
    pub fn rq1_fp(&self, prompt: &str, prompt_fp: u64) -> Arc<Option<Rq1Question>> {
        let mut h = Fnv::resume(prompt_fp);
        h.u64(0x51);
        self.inner.rq1.get_or_insert_with(
            h.finish(),
            |k| k == prompt,
            || prompt.to_string(),
            || parse_rq1(prompt).ok(),
        )
    }

    /// Hit/miss counters of the analysis cache.
    pub fn analysis_counters(&self) -> CacheCounters {
        self.inner.analyses.counters()
    }

    /// Hit/miss counters of the classify parse cache.
    pub fn classify_counters(&self) -> CacheCounters {
        self.inner.classify.counters()
    }

    /// Hit/miss counters of the RQ1 parse cache.
    pub fn rq1_counters(&self) -> CacheCounters {
        self.inner.rq1.counters()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "__global__ void burn(long n, float* out) {\n\
                       \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
                       \x20 float x = 1.5f;\n\
                       \x20 for (int s = 0; s < 1000; s++) { x = x * 1.0001f + 0.1f; }\n\
                       \x20 out[i] = x;\n}\n";

    #[test]
    fn analysis_cache_matches_direct_analyze() {
        let caches = LlmCaches::new();
        let params = BTreeMap::from([("n".to_string(), 4096u64)]);
        let a = caches.analysis(SRC, &params, 64.0, true);
        let direct = analyze(
            SRC,
            &AnalyzeOptions {
                params: params.clone(),
                default_trip: 64.0,
                loop_aware: true,
            },
        );
        assert_eq!(*a, direct);
        let b = caches.analysis(SRC, &params, 64.0, true);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(caches.analysis_counters().hits, 1);
        assert_eq!(caches.analysis_counters().misses, 1);
    }

    #[test]
    fn analysis_cache_distinguishes_options() {
        let caches = LlmCaches::new();
        let deep = caches.analysis(SRC, &BTreeMap::new(), 64.0, true);
        let shallow = caches.analysis(SRC, &BTreeMap::new(), 64.0, false);
        assert!(!Arc::ptr_eq(&deep, &shallow));
        assert_eq!(caches.analysis_counters().misses, 2);
        // Same options again: both hit.
        caches.analysis(SRC, &BTreeMap::new(), 64.0, true);
        caches.analysis(SRC, &BTreeMap::new(), 64.0, false);
        assert_eq!(caches.analysis_counters().hits, 2);
    }

    #[test]
    fn classify_cache_parses_once_and_binds_args() {
        let caches = LlmCaches::new();
        let prompt = format!(
            "Classify the CUDA kernel called burn as Bandwidth or Compute bound. \
             The system it will execute on is a Test GPU with:\n\
             - peak single-precision performance of 100 GFLOP/s\n\
             - peak double-precision performance of 50 GFLOP/s\n\
             - peak integer performance of 80 GINTOP/s\n\
             - max bandwidth of 10 GB/s\n\n\
             The block and grid sizes of the invoked kernel are (16,1,1) and (256,1,1), \
             respectively. The executable running this kernel is launched with the \
             following command-line arguments: 4096.\n\n\
             Below is the source code of the requested CUDA kernel:\n\n\
             int main(int argc, char* argv[]) {{\n\
             \x20 long n = (argc > 1) ? (long)atol(argv[1]) : 1048576;\n}}\n{SRC}"
        );
        let a = caches.classify(&prompt);
        let parsed = a.as_ref().as_ref().expect("prompt parses");
        assert_eq!(parsed.question.kernel_name, "burn");
        assert_eq!(parsed.deep_params["n"], 4096);
        let b = caches.classify(&prompt);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(caches.classify_counters().hits, 1);
    }

    #[test]
    fn unparseable_prompts_cache_their_none() {
        let caches = LlmCaches::new();
        assert!(caches.classify("hello").is_none());
        assert!(caches.classify("hello").is_none());
        assert_eq!(caches.classify_counters().hits, 1);
        assert!(caches.rq1("hello").is_none());
        assert_eq!(caches.rq1_counters().misses, 1);
    }

    #[test]
    fn rq1_cache_matches_direct_parse() {
        let caches = LlmCaches::new();
        let prompt = "Question: Given a GPU having a global memory with a max bandwidth \
                      of 45.9 GB/s and a peak performance of 52.22 GFLOP/s, if a program \
                      executed with an Arithmetic Intensity of 0.6 FLOP/Byte ... \
                      does the roofline model consider the program as compute-bound?\nAnswer:";
        let cached = caches.rq1(prompt);
        assert_eq!(*cached, parse_rq1(prompt).ok());
        let again = caches.rq1(prompt);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn clones_share_storage_across_threads() {
        let caches = LlmCaches::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let caches = caches.clone();
                s.spawn(move || {
                    for _ in 0..25 {
                        let _ = caches.analysis(SRC, &BTreeMap::new(), 64.0, true);
                    }
                });
            }
        });
        let c = caches.analysis_counters();
        assert_eq!(c.total(), 100);
        assert!(c.hits >= 96, "at most one miss per racing thread: {c:?}");
    }
}
