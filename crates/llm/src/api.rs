//! Chat-completion API types: requests, responses, token usage and cost
//! accounting — the shape of the service boundary the paper's harness
//! talks to (Azure OpenAI / Gemini endpoints).

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Sampling hyperparameters (§3.2). Reasoning models ignore them, exactly
/// as the hosted o-series endpoints reject sampling overrides.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Softmax temperature.
    pub temperature: f64,
    /// Nucleus cutoff.
    pub top_p: f64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        // The paper settles on (0.1, 0.2) after its chi-squared check.
        SamplingParams {
            temperature: 0.1,
            top_p: 0.2,
        }
    }
}

/// One completion request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatRequest {
    /// Model name (must exist in the zoo).
    pub model: String,
    /// The full prompt text.
    pub prompt: String,
    /// Sampling parameters; `None` = model defaults.
    pub sampling: Option<SamplingParams>,
    /// Request seed for reproducible sampling.
    pub seed: u64,
}

impl ChatRequest {
    /// Convenience constructor.
    pub fn new(model: &str, prompt: impl Into<String>) -> Self {
        ChatRequest {
            model: model.to_string(),
            prompt: prompt.into(),
            sampling: None,
            seed: 0,
        }
    }

    /// Attach sampling parameters (builder style).
    pub fn with_sampling(mut self, sampling: SamplingParams) -> Self {
        self.sampling = Some(sampling);
        self
    }

    /// Attach a seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Token usage of one completion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Usage {
    /// Prompt-side tokens.
    pub prompt_tokens: u64,
    /// Completion-side tokens (reasoning models bill hidden thinking
    /// tokens here, as the o-series does).
    pub completion_tokens: u64,
}

impl Usage {
    /// Total tokens.
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// One completion response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChatResponse {
    /// Model that produced the answer.
    pub model: String,
    /// The answer text (a single class token in this study).
    pub text: String,
    /// Optional reasoning trace (surrogate of hidden chain-of-thought;
    /// exposed for debugging, never parsed by the harness).
    pub trace: Option<String>,
    /// Token usage.
    pub usage: Usage,
}

/// Per-model running token totals plus the prices they are billed at.
#[derive(Debug, Clone, Copy, Default)]
struct Tally {
    usage: Usage,
    input_cost: f64,
    output_cost: f64,
}

impl Tally {
    fn cost(&self) -> f64 {
        self.usage.prompt_tokens as f64 / 1e6 * self.input_cost
            + self.usage.completion_tokens as f64 / 1e6 * self.output_cost
    }
}

/// Thread-safe accumulator of usage and dollar cost across a run.
///
/// Only integer token totals are accumulated; dollar costs are derived
/// from the totals at read time. Integer addition is associative, so the
/// reported cost is independent of recording order — parallel runs bill
/// byte-identically to serial ones.
#[derive(Debug, Clone, Default)]
pub struct UsageMeter {
    inner: Arc<Mutex<BTreeMap<String, Tally>>>,
}

impl UsageMeter {
    /// A fresh meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one response against a model's `$ / 1M token` prices.
    ///
    /// Prices must be constant per model across a meter's lifetime (they
    /// are zoo constants): cost is derived from the accumulated token
    /// totals at read time, so a price change mid-run would retroactively
    /// reprice earlier traffic. Debug builds assert this.
    pub fn record(&self, resp: &ChatResponse, input_cost: f64, output_cost: f64) {
        let mut map = self.inner.lock();
        let entry = map.entry(resp.model.clone()).or_default();
        debug_assert!(
            entry.usage.total() == 0
                || (entry.input_cost == input_cost && entry.output_cost == output_cost),
            "model '{}' re-billed at different prices",
            resp.model
        );
        entry.usage.prompt_tokens += resp.usage.prompt_tokens;
        entry.usage.completion_tokens += resp.usage.completion_tokens;
        entry.input_cost = input_cost;
        entry.output_cost = output_cost;
    }

    /// Fold another meter's accumulated usage into this one, as if every
    /// request billed there had been billed here. No-op when `other` is
    /// this meter (or a clone sharing its storage).
    pub fn absorb(&self, other: &UsageMeter) {
        if Arc::ptr_eq(&self.inner, &other.inner) {
            return;
        }
        let theirs = other.inner.lock().clone();
        let mut map = self.inner.lock();
        for (model, t) in theirs {
            let entry = map.entry(model).or_default();
            debug_assert!(
                entry.usage.total() == 0
                    || (entry.input_cost == t.input_cost && entry.output_cost == t.output_cost),
                "a model was absorbed at different prices"
            );
            entry.usage.prompt_tokens += t.usage.prompt_tokens;
            entry.usage.completion_tokens += t.usage.completion_tokens;
            entry.input_cost = t.input_cost;
            entry.output_cost = t.output_cost;
        }
    }

    /// Accumulated (usage, cost) per model.
    pub fn snapshot(&self) -> BTreeMap<String, (Usage, f64)> {
        self.inner
            .lock()
            .iter()
            .map(|(model, t)| (model.clone(), (t.usage, t.cost())))
            .collect()
    }

    /// Total dollar cost across models (summed in model-name order).
    pub fn total_cost(&self) -> f64 {
        self.inner.lock().values().map(Tally::cost).sum()
    }
}

/// Crude token estimate for usage accounting: whitespace-delimited words
/// plus punctuation density (≈ chars/4 on source code). Billing-grade
/// token counts come from `pce-tokenizer`; this keeps the API crate free
/// of that dependency.
pub fn approx_tokens(text: &str) -> u64 {
    (text.len() as u64 / 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sampling_matches_paper() {
        let s = SamplingParams::default();
        assert_eq!(s.temperature, 0.1);
        assert_eq!(s.top_p, 0.2);
    }

    #[test]
    fn usage_totals() {
        let u = Usage {
            prompt_tokens: 100,
            completion_tokens: 5,
        };
        assert_eq!(u.total(), 105);
    }

    #[test]
    fn meter_accumulates_cost() {
        let meter = UsageMeter::new();
        let resp = ChatResponse {
            model: "m".into(),
            text: "Compute".into(),
            trace: None,
            usage: Usage {
                prompt_tokens: 1_000_000,
                completion_tokens: 500_000,
            },
        };
        meter.record(&resp, 2.0, 8.0);
        meter.record(&resp, 2.0, 8.0);
        let snap = meter.snapshot();
        assert_eq!(snap["m"].0.prompt_tokens, 2_000_000);
        // 2 * (1.0 * 2 + 0.5 * 8) = 12.
        assert!((meter.total_cost() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn meter_is_shareable_across_threads() {
        let meter = UsageMeter::new();
        let resp = ChatResponse {
            model: "m".into(),
            text: "Bandwidth".into(),
            trace: None,
            usage: Usage {
                prompt_tokens: 10,
                completion_tokens: 1,
            },
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let meter = meter.clone();
                let resp = resp.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        meter.record(&resp, 1.0, 1.0);
                    }
                });
            }
        });
        assert_eq!(meter.snapshot()["m"].0.prompt_tokens, 8000);
    }

    #[test]
    fn absorb_merges_usage_and_matches_inline_billing() {
        let resp = |model: &str, prompt: u64| ChatResponse {
            model: model.into(),
            text: "Compute".into(),
            trace: None,
            usage: Usage {
                prompt_tokens: prompt,
                completion_tokens: 3,
            },
        };
        // Billing a and b separately, then absorbing b into a, must equal
        // billing everything on one meter.
        let inline = UsageMeter::new();
        inline.record(&resp("m1", 100), 2.0, 8.0);
        inline.record(&resp("m2", 50), 1.0, 4.0);
        inline.record(&resp("m1", 7), 2.0, 8.0);

        let a = UsageMeter::new();
        a.record(&resp("m1", 100), 2.0, 8.0);
        let b = UsageMeter::new();
        b.record(&resp("m2", 50), 1.0, 4.0);
        b.record(&resp("m1", 7), 2.0, 8.0);
        a.absorb(&b);

        assert_eq!(a.snapshot().len(), inline.snapshot().len());
        for (model, (usage, cost)) in a.snapshot() {
            let (iu, ic) = inline.snapshot()[&model];
            assert_eq!(usage, iu, "{model}");
            assert_eq!(cost, ic, "{model}: derived costs must be bitwise equal");
        }
        assert_eq!(a.total_cost(), inline.total_cost());

        // Absorbing a clone of itself is a no-op, not a deadlock/double.
        let before = a.total_cost();
        let alias = a.clone();
        a.absorb(&alias);
        assert_eq!(a.total_cost(), before);
    }

    #[test]
    fn approx_tokens_scales_with_length() {
        assert!(approx_tokens("abcd") >= 1);
        let short = approx_tokens("int main() {}");
        let long = approx_tokens(&"int main() {}".repeat(100));
        assert!(long > 50 * short);
    }

    #[test]
    fn request_builder_chains() {
        let r = ChatRequest::new("o1", "hello")
            .with_sampling(SamplingParams {
                temperature: 0.7,
                top_p: 0.9,
            })
            .with_seed(42);
        assert_eq!(r.model, "o1");
        assert_eq!(r.seed, 42);
        assert_eq!(r.sampling.unwrap().temperature, 0.7);
    }
}
