//! The surrogate completion engine.
//!
//! One engine serves every model in the zoo. Given a request it:
//!
//! 1. identifies the task by re-parsing the prompt ([`crate::parse`]),
//! 2. solves it with the model's mechanisms — exact balance-point
//!    arithmetic for reasoning models, slip-prone arithmetic for standard
//!    ones; deep loop-aware static analysis vs. shallow whole-file token
//!    counting for source classification,
//! 3. perturbs borderline answers with seeded, sampling-dependent noise
//!    (the hosted models' run-to-run variance), and
//! 4. bills usage to the shared [`UsageMeter`].
//!
//! Determinism: the answer is a pure function of (model, prompt, seed,
//! sampling params).

use std::collections::BTreeMap;

use pce_fault::{
    attempt_seed, corrupt_text, is_refusal_text, FaultKind, FaultPlan, PceError,
    ResponseAccounting, RetryPolicy,
};
use pce_roofline::Boundedness;

use crate::api::{approx_tokens, ChatRequest, ChatResponse, SamplingParams, Usage, UsageMeter};
use crate::cache::{prompt_fingerprint, LlmCaches, ParsedClassify};
use crate::parse::{has_cot_examples, is_rq1_prompt};
use crate::zoo::{model, Capability, ModelSpec};

/// The simulated deadline an injected [`FaultKind::Timeout`] reports.
const SIMULATED_DEADLINE_MS: u64 = 30_000;

/// The result of one retried completion: the final response (when any
/// attempt produced usable text), the parsed verdict, the terminal error,
/// and the per-request [`ResponseAccounting`] ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionOutcome {
    /// The last response body seen, if any attempt returned one.
    pub response: Option<ChatResponse>,
    /// The parsed boundedness verdict, when the final response parsed.
    pub verdict: Option<Boundedness>,
    /// The terminal error when no attempt yielded a parseable answer.
    pub error: Option<PceError>,
    /// Exactly one of valid / retried_valid / invalid / refused is set.
    pub accounting: ResponseAccounting,
}

/// The shared engine.
#[derive(Debug, Clone, Default)]
pub struct SurrogateEngine {
    meter: UsageMeter,
    caches: LlmCaches,
    faults: Option<FaultPlan>,
}

impl SurrogateEngine {
    /// A fresh engine with an empty usage meter and its own caches.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh engine (empty usage meter) backed by an existing cache
    /// bundle. Suites hand every per-spec engine a clone of one
    /// [`LlmCaches`] so analyses and prompt parses are shared across the
    /// whole hardware matrix; billing stays per-engine.
    pub fn with_caches(caches: LlmCaches) -> Self {
        SurrogateEngine {
            meter: UsageMeter::new(),
            caches,
            faults: None,
        }
    }

    /// [`SurrogateEngine::with_caches`] with a chaos plan attached: every
    /// completion consults the plan and may come back truncated, mangled,
    /// refused, or as a retryable [`PceError`].
    pub fn with_caches_and_faults(caches: LlmCaches, faults: Option<FaultPlan>) -> Self {
        SurrogateEngine {
            meter: UsageMeter::new(),
            caches,
            faults,
        }
    }

    /// The engine's usage meter.
    pub fn meter(&self) -> &UsageMeter {
        &self.meter
    }

    /// The engine's cache bundle (clone it to share with other engines).
    pub fn caches(&self) -> &LlmCaches {
        &self.caches
    }

    /// The attached chaos plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Complete a request.
    ///
    /// Fails with [`PceError::Spec`] when the requested model is not in
    /// the zoo, or with an injected [`PceError::Timeout`]/[`PceError::Io`]
    /// when an attached chaos plan fires a transport-level fault.
    pub fn complete(&self, req: &ChatRequest) -> Result<ChatResponse, PceError> {
        self.complete_prompt(&req.model, &req.prompt, req.sampling, req.seed)
    }

    /// Complete a request given by parts, borrowing the prompt.
    ///
    /// Identical to [`SurrogateEngine::complete`] on the equivalent
    /// [`ChatRequest`], but lets bulk callers share one rendered prompt
    /// across the whole model zoo without cloning it per request.
    pub fn complete_prompt(
        &self,
        model_name: &str,
        prompt: &str,
        sampling: Option<SamplingParams>,
        seed: u64,
    ) -> Result<ChatResponse, PceError> {
        self.complete_attempt(model_name, prompt, sampling, seed, 0)
            .0
    }

    /// One attempt of a completion: resolve the model, consult the chaos
    /// plan, answer, corrupt if injected, and bill. Returns the result
    /// plus whether a fault was injected into this attempt.
    ///
    /// Attempt 0 with no plan attached is byte- and billing-identical to
    /// the historical always-succeeds path.
    fn complete_attempt(
        &self,
        model_name: &str,
        prompt: &str,
        sampling: Option<SamplingParams>,
        seed: u64,
        attempt: u32,
    ) -> (Result<ChatResponse, PceError>, bool) {
        let Some(spec) = model(model_name) else {
            return (
                Err(PceError::spec(format!(
                    "model '{model_name}' is not in the zoo"
                ))),
                false,
            );
        };
        let sampling = sampling.unwrap_or_default();
        // One pass over the prompt text: the fingerprint keys the parse
        // caches, seeds the noise stream, and addresses the fault plan.
        let prompt_fp = prompt_fingerprint(prompt);
        let fault = self
            .faults
            .as_ref()
            .and_then(|plan| plan.draw(model_name, prompt_fp, seed, attempt));
        match fault {
            Some(FaultKind::Timeout) => {
                return (
                    Err(PceError::Timeout {
                        ms: SIMULATED_DEADLINE_MS,
                    }),
                    true,
                );
            }
            Some(FaultKind::Transient) => {
                return (Err(PceError::io("injected connection reset")), true);
            }
            _ => {}
        }

        // Retried attempts are salted so the re-asked completion differs
        // from the first answer reproducibly.
        let eff_seed = attempt_seed(seed, attempt);
        let mut rng = NoiseStream::new(&spec.name, prompt_fp, eff_seed, sampling);

        let (clean, trace) = if is_rq1_prompt(prompt) {
            self.answer_rq1(spec, prompt, prompt_fp, &mut rng)
        } else {
            let parsed = self.caches.classify_fp(prompt, prompt_fp);
            match parsed.as_ref() {
                Some(p) => self.answer_classify(spec, p, prompt, &mut rng),
                None => {
                    // Unrecognized prompt: fall back to the model's prior.
                    let answer = if spec.caps.bias_bandwidth {
                        Boundedness::Bandwidth
                    } else {
                        Boundedness::Compute
                    };
                    (
                        answer.answer_token().to_string(),
                        Some("prior-only guess".to_string()),
                    )
                }
            }
        };

        // Body-level faults corrupt the clean answer but are still billed:
        // a truncated or refused hosted response costs real tokens.
        let (text, trace, injected) = match fault.and_then(|k| corrupt_text(k, &clean)) {
            Some(body) => {
                let kind = fault.map(|k| format!("{k:?}")).unwrap_or_default();
                (body, Some(format!("injected fault: {kind}")), true)
            }
            None => (clean, trace, false),
        };

        let usage = Usage {
            prompt_tokens: approx_tokens(prompt),
            completion_tokens: 1 + spec.reasoning_tokens,
        };
        let resp = ChatResponse {
            model: spec.name.clone(),
            text,
            trace,
            usage,
        };
        self.meter.record(&resp, spec.input_cost, spec.output_cost);
        (Ok(resp), injected)
    }

    /// Complete a request under a bounded [`RetryPolicy`], classifying the
    /// final answer and keeping the per-request response ledger.
    ///
    /// The loop retries retryable failures (injected timeouts and
    /// transient errors, unparseable answers) with deterministic backoff,
    /// salting each retry's seed so re-asked completions differ
    /// reproducibly; refusals and spec errors terminate immediately.
    /// Backoff is recorded, never slept.
    pub fn complete_with_retry(
        &self,
        model_name: &str,
        prompt: &str,
        sampling: Option<SamplingParams>,
        seed: u64,
        policy: &RetryPolicy,
    ) -> CompletionOutcome {
        // Jitter fingerprint: the request identity, independent of attempt.
        let mut fp = pce_memo::Fnv::new();
        fp.str(model_name);
        fp.u64(prompt_fingerprint(prompt));
        fp.u64(seed);
        let fingerprint = fp.finish();

        let mut acc = ResponseAccounting::new();
        let mut injected_any = false;
        let mut last_response: Option<ChatResponse> = None;
        let mut last_error = PceError::io("no attempts were made");

        for attempt in 0..policy.max_attempts() {
            if attempt > 0 {
                let delay = policy.backoff_ms(fingerprint, attempt);
                // Cap cumulative recorded backoff at the job's budget (its
                // deadline): a retry that would blow the budget is not
                // taken, so a job can never be accounted both
                // `retried_valid` and `expired`.
                if let Some(budget) = policy.backoff_budget_ms {
                    if acc.backoff_ms + delay >= budget {
                        acc.backoff_ms = budget;
                        last_error = PceError::Timeout { ms: budget };
                        break;
                    }
                }
                acc.retries += 1;
                acc.backoff_ms += delay;
            }
            let (result, injected) =
                self.complete_attempt(model_name, prompt, sampling, seed, attempt);
            injected_any |= injected;
            match result {
                Ok(resp) => {
                    if is_refusal_text(&resp.text) {
                        acc.refused += 1;
                        acc.injected += injected_any as u64;
                        return CompletionOutcome {
                            error: Some(PceError::Refusal {
                                model: resp.model.clone(),
                            }),
                            response: Some(resp),
                            verdict: None,
                            accounting: acc,
                        };
                    }
                    match Boundedness::parse(&resp.text) {
                        Some(verdict) => {
                            if attempt == 0 {
                                acc.valid += 1;
                            } else {
                                acc.retried_valid += 1;
                            }
                            acc.injected += injected_any as u64;
                            return CompletionOutcome {
                                response: Some(resp),
                                verdict: Some(verdict),
                                error: None,
                                accounting: acc,
                            };
                        }
                        None => {
                            last_error = PceError::parse(format!(
                                "response '{}' is not a recognizable answer",
                                truncate_for_error(&resp.text)
                            ));
                            last_response = Some(resp);
                        }
                    }
                }
                Err(e) => {
                    let terminal = !e.retryable();
                    last_error = e;
                    if terminal {
                        break;
                    }
                }
            }
        }

        acc.invalid += 1;
        acc.injected += injected_any as u64;
        CompletionOutcome {
            response: last_response,
            verdict: None,
            error: Some(last_error),
            accounting: acc,
        }
    }

    fn answer_rq1(
        &self,
        spec: &ModelSpec,
        prompt: &str,
        prompt_fp: u64,
        rng: &mut NoiseStream,
    ) -> (String, Option<String>) {
        let Some(q) = *self.caches.rq1_fp(prompt, prompt_fp) else {
            return (
                "Bandwidth".to_string(),
                Some("failed to parse question".into()),
            );
        };
        let balance = q.peak_gflops / q.bandwidth_gbs;
        let correct = if q.ai >= balance {
            Boundedness::Compute
        } else {
            Boundedness::Bandwidth
        };
        let margin = (q.ai / balance).log10().abs();

        let mut answer = correct;
        if !spec.reasoning {
            let slip_p = if has_cot_examples(prompt) {
                spec.caps.arith_slip_cot
            } else {
                spec.caps.arith_slip
            };
            // Slips only flip answers near the balance point: a mis-divided
            // balance still classifies 10x-away intensities correctly.
            if margin < Capability::SLIP_MARGIN_DECADES && rng.chance(slip_p) {
                answer = answer.flipped();
            }
        }
        let trace = format!(
            "balance = {:.4} / {:.4} = {:.4} FLOP/B; AI = {:.4}; margin = {:.2} decades",
            q.peak_gflops, q.bandwidth_gbs, balance, q.ai, margin
        );
        (answer.answer_token().to_string(), Some(trace))
    }

    fn answer_classify(
        &self,
        spec: &ModelSpec,
        parsed: &ParsedClassify,
        prompt: &str,
        rng: &mut NoiseStream,
    ) -> (String, Option<String>) {
        let q = &parsed.question;
        // Prior-bias short circuit: skewed models sometimes answer from
        // their prior without consulting the code.
        if rng.chance(spec.caps.bias_strength) {
            let answer = if spec.caps.bias_bandwidth {
                Boundedness::Bandwidth
            } else {
                Boundedness::Compute
            };
            return (
                answer.answer_token().to_string(),
                Some("prior-driven answer".into()),
            );
        }

        // Deep readers (reasoning models, and frontier-scale standard
        // models) bind CLI args to source variables and weight loops;
        // shallow models skim the whole file flat. The binding is
        // precomputed by the parse cache; the analysis itself is memoized
        // per (source, options) across every model and hardware spec.
        let empty = BTreeMap::new();
        let deep = spec.reasoning || spec.caps.insight >= 0.6;
        let params = if deep { &parsed.deep_params } else { &empty };
        let analysis = self.caches.analysis(&q.source, params, 64.0, deep);

        let (tally, trip_weight) = if deep {
            match analysis.kernel(&q.kernel_name) {
                Some(k) => (k.tally, k.trip_weight),
                None => (analysis.file_tally, 1.0),
            }
        } else {
            (analysis.file_tally, 1.0)
        };

        // Reuse anticipation: loop-nest reuse shrinks true DRAM traffic, so
        // an aware reader scales its AI estimate up with iteration weight.
        let reuse_boost = 1.0 + spec.caps.reuse_aware * trip_weight.clamp(1.0, 4096.0).powf(0.4);

        let balances = [
            q.peak_sp / q.bandwidth,
            q.peak_dp / q.bandwidth,
            q.peak_int / q.bandwidth,
        ];
        let mut verdict = Boundedness::Bandwidth;
        let mut best_margin = f64::NEG_INFINITY; // max over classes of log10(ai/balance)
        for (class_idx, balance) in balances.iter().enumerate() {
            let ai = tally.ai(class_idx) * reuse_boost;
            if ai <= 0.0 {
                continue;
            }
            let m = if ai.is_infinite() {
                3.0
            } else {
                (ai / balance).log10()
            };
            best_margin = best_margin.max(m);
            if m >= 0.0 {
                verdict = Boundedness::Compute;
            }
        }
        if best_margin == f64::NEG_INFINITY {
            best_margin = -1.0; // no ops seen at all: far-BB guess
        }

        // Classification noise. Two regimes:
        //
        // * Deep readers mis-estimate trip counts, miss templated paths,
        //   and cannot see the memory system — errors that concentrate near
        //   the balance point but persist (with a long decay) even far from
        //   it. This is what holds the o-series near the paper's ~64 %.
        // * Shallow readers barely consult the code; their answers carry a
        //   flat, margin-independent error floor that keeps them near
        //   chance (paper: accuracies ≈ 50 %, MCC ≈ 0).
        //
        // In-context learning: real code examples in the prompt (RQ3) give
        // shallow models a small insight bump — the paper's "~2 %"
        // improvement for the minis.
        let insight = if deep {
            spec.caps.insight
        } else {
            let bump = if prompt_has_real_examples(prompt) {
                0.10
            } else {
                0.0
            };
            (spec.caps.insight + bump).min(1.0)
        };
        let flip_p = if deep {
            ((1.0 - 0.62 * insight) * 1.1 * (-best_margin.abs() / 2.2).exp()).min(0.45)
        } else {
            0.45 * (1.0 - insight).powi(2)
        };
        // Hazard consultation: the analysis cache carries the lint
        // diagnostics, and error-severity hazards (races, missing
        // barriers) make the op/byte tallies themselves suspect — a
        // racy reduction does not perform the work its source implies.
        // Deep readers notice and lose confidence: the flip probability
        // rises toward its cap with each distinct hazard. The shipped
        // corpus is hazard-clean, so this path adds exactly zero noise
        // to the paper's accuracy bands.
        let hazards = analysis.error_count();
        let flip_p = if deep && hazards > 0 {
            (flip_p + 0.05 * hazards.min(4) as f64).min(0.45)
        } else {
            flip_p
        };
        let mut answer = verdict;
        if rng.chance(flip_p) {
            answer = answer.flipped();
        }
        let mut trace = format!(
            "static AI margins vs (sp,dp,int) balances {:?}; best margin {:.2}; reuse x{:.2}",
            balances, best_margin, reuse_boost
        );
        if hazards > 0 {
            trace.push_str(&format!("; {hazards} hazard diagnostics"));
        }
        (answer.answer_token().to_string(), Some(trace))
    }
}

/// Evaluate an arbitrary (possibly unregistered) model spec on a prompt
/// and return just the answer text. This is the hook the capability
/// ablation uses to sweep synthetic specs without registering them in the
/// zoo; it shares the exact answer path with [`SurrogateEngine::complete`].
///
/// Builds a throwaway engine per call. Bulk sweeps should create one
/// engine and call [`complete_with_spec_on`] so parses and analyses are
/// cached across the sweep instead of re-deriving (and re-allocating) per
/// completion.
pub fn complete_with_spec(spec: &ModelSpec, prompt: &str, seed: u64) -> String {
    complete_with_spec_on(&SurrogateEngine::new(), spec, prompt, seed)
}

/// [`complete_with_spec`] against an existing engine: the engine's parse
/// and analysis caches serve the unregistered spec exactly as they serve
/// zoo models (nothing is billed — the answer path never touches the
/// meter). Bit-identical to the throwaway-engine variant.
pub fn complete_with_spec_on(
    engine: &SurrogateEngine,
    spec: &ModelSpec,
    prompt: &str,
    seed: u64,
) -> String {
    let prompt_fp = prompt_fingerprint(prompt);
    let mut rng = NoiseStream::new(&spec.name, prompt_fp, seed, SamplingParams::default());
    let (text, _) = if is_rq1_prompt(prompt) {
        engine.answer_rq1(spec, prompt, prompt_fp, &mut rng)
    } else {
        let parsed = engine.caches.classify_fp(prompt, prompt_fp);
        match parsed.as_ref() {
            Some(p) => engine.answer_classify(spec, p, prompt, &mut rng),
            None => ("Bandwidth".to_string(), None),
        }
    };
    text
}

/// Clip a response body for embedding in an error message.
fn truncate_for_error(text: &str) -> &str {
    let mut end = text.len().min(40);
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    &text[..end]
}

/// Whether the prompt's example section carries *real* code (RQ3) rather
/// than pseudo-code (RQ2): real examples contain actual kernel syntax
/// before the "Now, analyze" marker.
fn prompt_has_real_examples(prompt: &str) -> bool {
    let example_section = match prompt.find("Now, analyze") {
        Some(at) => &prompt[..at],
        None => prompt,
    };
    example_section.contains("__global__") || example_section.contains("#pragma omp")
}

/// Deterministic noise stream: FNV-1a over the request identity, then
/// xorshift64*. Sampling parameters are folded into the seed so different
/// temperatures give different-but-statistically-identical streams — the
/// behaviour behind the paper's chi-squared insensitivity result (§3.2).
///
/// The prompt enters through [`prompt_fingerprint`], the same word-wise
/// digest that keys the parse caches: the stream stays a pure function of
/// (model, prompt bytes, seed, sampling), but an 11 KB prompt is digested
/// once per request instead of byte-at-a-time here (the byte-serial FNV
/// chain was two thirds of a warm completion's cost).
struct NoiseStream {
    state: u64,
}

impl NoiseStream {
    /// Stream-selection salt. The surrogate's *statistical* behaviour is
    /// salt-invariant (every salt is an equally valid realization of the
    /// hosted models' run-to-run variance); this value pins the
    /// realization the smoke-scale acceptance bands were verified on.
    const STREAM_SALT: u64 = 0xa5a5_0010;

    fn new(model: &str, prompt_fp: u64, seed: u64, sampling: SamplingParams) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(model.as_bytes());
        eat(&(prompt_fp ^ Self::STREAM_SALT).to_le_bytes());
        eat(&seed.to_le_bytes());
        eat(&sampling.temperature.to_bits().to_le_bytes());
        eat(&sampling.top_p.to_bits().to_le_bytes());
        NoiseStream { state: h | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64* — plenty for Bernoulli draws.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pce_prompt::{generate_rq1_suite, render_rq1_prompt};

    fn rq1_accuracy(model_name: &str, shots: usize, cot: bool) -> f64 {
        let suite = generate_rq1_suite(120, 99);
        let engine = SurrogateEngine::new();
        let mut correct = 0;
        for (i, item) in suite.items.iter().enumerate() {
            let prompt = render_rq1_prompt(&suite, i, shots, cot);
            let resp = engine
                .complete(&ChatRequest::new(model_name, prompt).with_seed(i as u64))
                .unwrap();
            if Boundedness::parse(&resp.text) == Some(item.truth) {
                correct += 1;
            }
        }
        correct as f64 / suite.items.len() as f64
    }

    #[test]
    fn reasoning_models_score_100_on_rq1() {
        for name in ["o3-mini-high", "o3-mini", "o1-mini-2024-09-12"] {
            assert_eq!(rq1_accuracy(name, 2, false), 1.0, "{name}");
            assert_eq!(rq1_accuracy(name, 2, true), 1.0, "{name} CoT");
        }
    }

    #[test]
    fn standard_models_score_90ish_and_improve_with_cot() {
        let plain = rq1_accuracy("gpt-4o-mini", 4, false);
        let cot = rq1_accuracy("gpt-4o-mini", 4, true);
        assert!(plain > 0.82 && plain < 0.97, "plain accuracy {plain}");
        assert!(cot > plain, "CoT must help: {cot} vs {plain}");
        assert!(cot > 0.97, "CoT accuracy {cot}");
    }

    #[test]
    fn analysis_cache_carries_hazard_diagnostics() {
        // The surrogate's mental model sees the lint diagnostics through
        // the same memoized analysis it uses for op/byte tallies.
        let racy = r#"
__global__ void reduce(float* out, const float* in) {
    __shared__ float buf[256];
    buf[threadIdx.x] = in[threadIdx.x];
    for (int s = 128; s > 0; s >>= 1) {
        if (threadIdx.x < s) buf[threadIdx.x] += buf[threadIdx.x + s];
    }
    if (threadIdx.x == 0) out[0] = buf[0];
}
"#;
        let engine = SurrogateEngine::new();
        let a = engine.caches.analysis(racy, &BTreeMap::new(), 64.0, true);
        assert!(a.error_count() > 0, "race must surface as an error");
        // Recall hits the cache and sees the same diagnostics.
        let b = engine.caches.analysis(racy, &BTreeMap::new(), 64.0, true);
        assert_eq!(a.diagnostics, b.diagnostics);
    }

    #[test]
    fn responses_are_deterministic() {
        let suite = generate_rq1_suite(5, 1);
        let prompt = render_rq1_prompt(&suite, 0, 2, false);
        let engine = SurrogateEngine::new();
        let req = ChatRequest::new("gpt-4o-mini", prompt).with_seed(7);
        assert_eq!(
            engine.complete(&req).unwrap().text,
            engine.complete(&req).unwrap().text
        );
    }

    #[test]
    fn temperature_changes_stream_but_not_statistics() {
        let suite = generate_rq1_suite(200, 3);
        let engine = SurrogateEngine::new();
        let mut acc = vec![];
        for temp in [0.1, 1.0] {
            let sampling = SamplingParams {
                temperature: temp,
                top_p: 0.2,
            };
            let mut correct = 0;
            for (i, item) in suite.items.iter().enumerate() {
                let prompt = render_rq1_prompt(&suite, i, 2, false);
                let resp = engine
                    .complete(
                        &ChatRequest::new("gemini-2.0-flash-001", prompt)
                            .with_sampling(sampling)
                            .with_seed(i as u64),
                    )
                    .unwrap();
                if Boundedness::parse(&resp.text) == Some(item.truth) {
                    correct += 1;
                }
            }
            acc.push(correct as f64 / suite.items.len() as f64);
        }
        // Different streams, statistically indistinguishable accuracy.
        assert!((acc[0] - acc[1]).abs() < 0.05, "{acc:?}");
    }

    #[test]
    fn usage_is_metered_with_reasoning_tokens() {
        let engine = SurrogateEngine::new();
        let suite = generate_rq1_suite(5, 1);
        let prompt = render_rq1_prompt(&suite, 0, 2, false);
        engine
            .complete(&ChatRequest::new("o1", prompt.clone()))
            .unwrap();
        engine
            .complete(&ChatRequest::new("gpt-4o-mini", prompt))
            .unwrap();
        let snap = engine.meter().snapshot();
        assert!(
            snap["o1"].0.completion_tokens > 1000,
            "o-series bills thinking tokens"
        );
        assert_eq!(snap["gpt-4o-mini"].0.completion_tokens, 1);
        assert!(snap["o1"].1 > snap["gpt-4o-mini"].1, "o1 costs more");
    }

    #[test]
    fn cached_engines_answer_bit_identically_to_fresh_ones() {
        use pce_prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
        let hw = pce_roofline::HardwareSpec::rtx_3080();
        let src = "__global__ void scale(long n, const float* a, float* b) {\n\
                   \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
                   \x20 if (i < n) b[i] = 2.0f * a[i];\n}\n";
        let shared = LlmCaches::new();
        let suite = generate_rq1_suite(8, 5);
        for style in [ShotStyle::ZeroShot, ShotStyle::FewShot] {
            let prompt = render_classify_prompt(
                &ClassifyRequest {
                    language: "CUDA".into(),
                    kernel_name: "scale".into(),
                    hardware: hw.clone(),
                    geometry: "(4096,1,1) and (256,1,1)".into(),
                    args: vec!["1048576".into()],
                    source: src.into(),
                },
                style,
            );
            for model_name in ["o3-mini", "gpt-4o-mini", "o1", "gemini-2.0-flash-001"] {
                for seed in 0..8 {
                    let req = ChatRequest::new(model_name, prompt.clone()).with_seed(seed);
                    let fresh = SurrogateEngine::new().complete(&req).unwrap();
                    let warm = SurrogateEngine::with_caches(shared.clone())
                        .complete(&req)
                        .unwrap();
                    assert_eq!(fresh, warm, "{model_name} seed {seed}");
                }
            }
        }
        // RQ1 prompts round through the rq1 parse cache identically.
        let prompt = render_rq1_prompt(&suite, 3, 2, true);
        let req = ChatRequest::new("gpt-4o-mini", prompt).with_seed(11);
        assert_eq!(
            SurrogateEngine::new().complete(&req).unwrap(),
            SurrogateEngine::with_caches(shared.clone())
                .complete(&req)
                .unwrap()
        );
        // The shared bundle actually collapsed work across those engines.
        assert!(shared.analysis_counters().hits > 0);
        assert!(shared.classify_counters().hits > 0);
    }

    #[test]
    fn complete_prompt_matches_complete() {
        let suite = generate_rq1_suite(5, 1);
        let prompt = render_rq1_prompt(&suite, 0, 2, false);
        let engine = SurrogateEngine::new();
        let via_req = engine
            .complete(
                &ChatRequest::new("o3-mini", prompt.clone())
                    .with_sampling(SamplingParams::default())
                    .with_seed(3),
            )
            .unwrap();
        let via_parts = engine
            .complete_prompt("o3-mini", &prompt, Some(SamplingParams::default()), 3)
            .unwrap();
        assert_eq!(via_req, via_parts);
        // Both billed.
        assert_eq!(
            engine.meter().snapshot()["o3-mini"].0.prompt_tokens,
            2 * via_req.usage.prompt_tokens
        );
    }

    #[test]
    fn unparseable_prompt_falls_back_to_prior() {
        let engine = SurrogateEngine::new();
        let resp = engine
            .complete(&ChatRequest::new("gpt-4o-mini", "hello there"))
            .unwrap();
        assert!(Boundedness::parse(&resp.text).is_some());
        assert_eq!(resp.trace.as_deref(), Some("prior-only guess"));
    }

    #[test]
    fn unknown_model_is_a_spec_error() {
        let err = SurrogateEngine::new()
            .complete(&ChatRequest::new("gpt-6", "hi"))
            .unwrap_err();
        assert_eq!(
            err.to_string(),
            "invalid spec: model 'gpt-6' is not in the zoo"
        );
        assert!(!err.retryable());
    }

    #[test]
    fn classification_consults_the_source() {
        use pce_prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
        let hw = pce_roofline::HardwareSpec::rtx_3080();
        // A transparently compute-bound kernel: huge iteration loop, one store.
        let cb_src = "__global__ void burn(long n, int iters, float* out) {\n\
                      \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
                      \x20 float x = 1.5f;\n\
                      \x20 for (int s = 0; s < 100000; s++) { x = x * 1.0001f + 0.1f; }\n\
                      \x20 out[i] = x;\n}\n";
        // A transparently streaming kernel.
        let bb_src = "__global__ void copy(long n, const float* a, float* b) {\n\
                      \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
                      \x20 if (i < n) b[i] = a[i];\n}\n";
        let engine = SurrogateEngine::new();
        let mk = |name: &str, src: &str| {
            let req = ClassifyRequest {
                language: "CUDA".into(),
                kernel_name: name.into(),
                hardware: hw.clone(),
                geometry: "(4096,1,1) and (256,1,1)".into(),
                args: vec!["1048576".into()],
                source: src.into(),
            };
            render_classify_prompt(&req, ShotStyle::ZeroShot)
        };
        let cb = engine
            .complete(&ChatRequest::new("o3-mini-high", mk("burn", cb_src)))
            .unwrap();
        let bb = engine
            .complete(&ChatRequest::new("o3-mini-high", mk("copy", bb_src)))
            .unwrap();
        assert_eq!(cb.text, "Compute");
        assert_eq!(bb.text, "Bandwidth");
    }

    #[test]
    fn chaos_free_retry_matches_single_shot() {
        let suite = generate_rq1_suite(6, 1);
        let engine = SurrogateEngine::new();
        for i in 0..suite.items.len() {
            let prompt = render_rq1_prompt(&suite, i, 2, false);
            let single = engine
                .complete_prompt("gpt-4o-mini", &prompt, None, i as u64)
                .unwrap();
            let retried = engine.complete_with_retry(
                "gpt-4o-mini",
                &prompt,
                None,
                i as u64,
                &RetryPolicy::default(),
            );
            assert_eq!(retried.response.as_ref().unwrap().text, single.text);
            assert_eq!(retried.verdict, Boundedness::parse(&single.text));
            assert_eq!(retried.accounting.valid, 1);
            assert!(!retried.accounting.faulted());
            assert!(retried.accounting.balanced());
        }
    }

    #[test]
    fn inactive_plan_is_billing_identical_to_no_plan() {
        let suite = generate_rq1_suite(4, 2);
        let prompt = render_rq1_prompt(&suite, 0, 2, false);
        let clean = SurrogateEngine::new();
        let zeroed = SurrogateEngine::with_caches_and_faults(
            LlmCaches::new(),
            Some(FaultPlan::uniform(42, 0.0)),
        );
        let a = clean.complete_prompt("o3-mini", &prompt, None, 5).unwrap();
        let b = zeroed.complete_prompt("o3-mini", &prompt, None, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(clean.meter().snapshot(), zeroed.meter().snapshot());
    }

    #[test]
    fn injected_faults_balance_and_recover() {
        let suite = generate_rq1_suite(80, 7);
        let plan = FaultPlan::uniform(42, 0.3);
        let engine = SurrogateEngine::with_caches_and_faults(LlmCaches::new(), Some(plan));
        let mut acc = ResponseAccounting::new();
        for i in 0..suite.items.len() {
            let prompt = render_rq1_prompt(&suite, i, 2, false);
            let out = engine.complete_with_retry(
                "gpt-4o-mini",
                &prompt,
                None,
                i as u64,
                &RetryPolicy::default(),
            );
            assert!(out.accounting.balanced(), "{:?}", out.accounting);
            acc.merge(&out.accounting);
        }
        assert_eq!(acc.total(), suite.items.len() as u64);
        assert!(acc.injected > 0, "{acc:?}");
        assert!(acc.recovered() > 0, "{acc:?}");
        assert!(acc.balanced(), "{acc:?}");
        // Recorded backoff accompanies every retry burst.
        assert!(acc.retries > 0 && acc.backoff_ms > 0, "{acc:?}");
    }

    #[test]
    fn chaos_outcomes_are_deterministic() {
        let suite = generate_rq1_suite(20, 3);
        let run = || {
            let plan = FaultPlan::uniform(9, 0.4);
            let engine = SurrogateEngine::with_caches_and_faults(LlmCaches::new(), Some(plan));
            (0..suite.items.len())
                .map(|i| {
                    let prompt = render_rq1_prompt(&suite, i, 2, false);
                    engine.complete_with_retry(
                        "o3-mini",
                        &prompt,
                        None,
                        i as u64,
                        &RetryPolicy::default(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn certain_timeouts_exhaust_retries_into_invalid() {
        let plan = FaultPlan {
            seed: 1,
            rates: pce_fault::FaultRates {
                timeout: 1.0,
                ..pce_fault::FaultRates::zero()
            },
            wire: pce_fault::WireRates::zero(),
        };
        let engine = SurrogateEngine::with_caches_and_faults(LlmCaches::new(), Some(plan));
        let err = engine.complete_prompt("o1", "hello", None, 0).unwrap_err();
        assert_eq!(err.to_string(), "request timed out after 30000 ms");
        let out = engine.complete_with_retry("o1", "hello", None, 0, &RetryPolicy::default());
        assert_eq!(out.accounting.invalid, 1);
        assert_eq!(out.accounting.injected, 1);
        assert_eq!(
            out.accounting.retries,
            RetryPolicy::default().max_retries as u64
        );
        assert!(out.verdict.is_none());
        assert!(out.accounting.balanced());
        // Timeouts are transport-level: nothing was billed.
        assert!(engine.meter().snapshot().is_empty());
    }

    #[test]
    fn backoff_budget_caps_recorded_delay_and_stops_retrying() {
        let plan = FaultPlan {
            seed: 1,
            rates: pce_fault::FaultRates {
                timeout: 1.0,
                ..pce_fault::FaultRates::zero()
            },
            wire: pce_fault::WireRates::zero(),
        };
        let engine = SurrogateEngine::with_caches_and_faults(LlmCaches::new(), Some(plan));
        let unbudgeted =
            engine.complete_with_retry("o1", "hello", None, 0, &RetryPolicy::default());
        assert!(unbudgeted.accounting.backoff_ms > 0);

        // A budget below the unbudgeted total must cut retries short, pin
        // the recorded backoff at exactly the budget, and surface a
        // deadline timeout.
        let budget = unbudgeted.accounting.backoff_ms / 2;
        let policy = RetryPolicy::default().with_budget(budget);
        let out = engine.complete_with_retry("o1", "hello", None, 0, &policy);
        assert!(out.accounting.retries < unbudgeted.accounting.retries);
        assert_eq!(out.accounting.backoff_ms, budget);
        assert_eq!(out.accounting.invalid, 1);
        assert!(out.accounting.balanced());
        assert_eq!(
            out.error.unwrap().to_string(),
            format!("request timed out after {budget} ms")
        );

        // A roomy budget changes nothing.
        let roomy = RetryPolicy::default().with_budget(u64::MAX);
        let same = engine.complete_with_retry("o1", "hello", None, 0, &roomy);
        assert_eq!(same.accounting, unbudgeted.accounting);
    }

    #[test]
    fn refusals_terminate_without_retry() {
        let plan = FaultPlan {
            seed: 1,
            rates: pce_fault::FaultRates {
                refuse: 1.0,
                ..pce_fault::FaultRates::zero()
            },
            wire: pce_fault::WireRates::zero(),
        };
        let engine = SurrogateEngine::with_caches_and_faults(LlmCaches::new(), Some(plan));
        let out = engine.complete_with_retry("o1", "hello", None, 0, &RetryPolicy::default());
        assert_eq!(out.accounting.refused, 1);
        assert_eq!(out.accounting.retries, 0);
        assert_eq!(
            out.error.as_ref().unwrap().to_string(),
            "model 'o1' refused to answer"
        );
        assert!(out.accounting.balanced());
    }
}
