//! # pce-llm
//!
//! The surrogate LLM substrate: a hermetic, deterministic stand-in for the
//! hosted OpenAI / Gemini models the paper queries.
//!
//! Every model in the [`zoo`] is characterised by *capability parameters*
//! (reasoning vs. non-reasoning, arithmetic slip rates, code-insight depth,
//! cache-reuse awareness, answer bias) rather than canned outputs. An
//! [`engine`] genuinely **processes the prompt text**:
//!
//! * RQ1 prompts — it parses the bandwidth/peak/AI numbers back out of the
//!   prose and computes the balance point, with arithmetic slips whose rate
//!   is governed by the model's reliability (and reduced by the presence of
//!   chain-of-thought examples),
//! * RQ2/RQ3 prompts — it recovers the hardware spec, kernel name, CLI
//!   arguments and source code from the prompt, binds arguments to source
//!   variables by reading the program's `argv` parsing, runs the
//!   `pce-static-analysis` estimator at a fidelity set by the model's
//!   insight, optionally applies a reuse correction (reasoning models
//!   only), and classifies against the three parsed rooflines.
//!
//! The *structure* of the paper's findings — reasoning ≫ non-reasoning in
//! zero-shot, ~100 % with profiled values, fine-tuning collapse — emerges
//! from these mechanisms, not from lookup tables.
//!
//! [`finetune`] implements an actual SGD-trained logistic head over hashed
//! token features to reproduce the RQ4 collapse.

#![forbid(unsafe_code)]

pub mod api;
pub mod cache;
pub mod engine;
pub mod finetune;
pub mod parse;
pub mod zoo;

pub use api::{ChatRequest, ChatResponse, SamplingParams, Usage, UsageMeter};
pub use cache::{CacheCounters, LlmBudget, LlmCaches};
pub use engine::{CompletionOutcome, SurrogateEngine};
pub use finetune::{FineTuneConfig, FineTuneJob, FineTunedModel};
pub use zoo::{model_zoo, Capability, ModelSpec};
