//! The model zoo: the nine models of the paper's Table 1, characterised by
//! capability parameters.
//!
//! Parameters are *calibrated data* (see DESIGN.md): they set mechanism
//! strengths — how often arithmetic slips, how deeply source is analysed,
//! whether cache reuse is anticipated — and the evaluation measures
//! whatever accuracy emerges. Costs are the paper's April-2025 prices.

use serde::{Deserialize, Serialize};

/// Mechanism strengths of one surrogate model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Capability {
    /// Probability of an arithmetic slip on a borderline RQ1 item
    /// (margin below [`Capability::SLIP_MARGIN_DECADES`]).
    pub arith_slip: f64,
    /// Same, when chain-of-thought examples are present in the prompt.
    pub arith_slip_cot: f64,
    /// Source-analysis depth in `[0, 1]`: scales classification noise on
    /// borderline kernels (1 = reads code perfectly).
    pub insight: f64,
    /// Whether the model anticipates cache reuse when estimating AI from
    /// source (reasoning models reason about data locality; pattern-matching
    /// models do not).
    pub reuse_aware: f64,
    /// Class-prior bias: probability of emitting the biased class
    /// regardless of analysis (captures gpt-4o's skewed F1).
    pub bias_strength: f64,
    /// Biased class is Bandwidth when true (the majority class in GPU
    /// folklore), Compute when false.
    pub bias_bandwidth: bool,
}

impl Capability {
    /// Items closer to the balance point than this many decades are
    /// vulnerable to arithmetic slips.
    pub const SLIP_MARGIN_DECADES: f64 = 0.30;
}

/// One zoo entry: identity, pricing, and capability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as it appears in Table 1.
    pub name: String,
    /// Reasoning-capable (o-series style)?
    pub reasoning: bool,
    /// $ per 1M input tokens (April 2025).
    pub input_cost: f64,
    /// $ per 1M output tokens.
    pub output_cost: f64,
    /// Mechanism strengths.
    pub caps: Capability,
    /// Hidden reasoning tokens billed per query (o-series bills thinking
    /// tokens as output; 0 for standard models).
    pub reasoning_tokens: u64,
}

/// The nine Table-1 models, in the paper's row order.
///
/// Built once and memoized: the engine resolves a model on every
/// completion, and a suite issues hundreds of thousands of completions —
/// re-allocating nine spec structs per request was measurable against the
/// cached hot path.
pub fn model_zoo() -> &'static [ModelSpec] {
    static ZOO: std::sync::OnceLock<Vec<ModelSpec>> = std::sync::OnceLock::new();
    ZOO.get_or_init(build_model_zoo)
}

fn build_model_zoo() -> Vec<ModelSpec> {
    let reasoning = |name: &str, input: f64, output: f64, insight: f64, tokens: u64| ModelSpec {
        name: name.into(),
        reasoning: true,
        input_cost: input,
        output_cost: output,
        caps: Capability {
            arith_slip: 0.0,
            arith_slip_cot: 0.0,
            insight,
            reuse_aware: insight * 0.9,
            bias_strength: 0.0,
            bias_bandwidth: true,
        },
        reasoning_tokens: tokens,
    };
    let standard = |name: &str,
                    input: f64,
                    output: f64,
                    slip: f64,
                    slip_cot: f64,
                    insight: f64,
                    bias: f64,
                    bias_bw: bool| ModelSpec {
        name: name.into(),
        reasoning: false,
        input_cost: input,
        output_cost: output,
        caps: Capability {
            arith_slip: slip,
            arith_slip_cot: slip_cot,
            insight,
            reuse_aware: 0.0,
            bias_strength: bias,
            bias_bandwidth: bias_bw,
        },
        reasoning_tokens: 0,
    };
    vec![
        reasoning("o3-mini-high", 1.1, 4.4, 0.93, 2400),
        reasoning("o1", 15.0, 60.0, 0.92, 1800),
        reasoning("o3-mini", 1.1, 4.4, 0.82, 900),
        standard("gpt-4.5-preview", 75.0, 150.0, 0.20, 0.05, 0.68, 0.05, true),
        reasoning("o1-mini-2024-09-12", 1.1, 4.4, 0.62, 600),
        standard(
            "gemini-2.0-flash-001",
            0.1,
            0.4,
            0.39,
            0.33,
            0.42,
            0.10,
            true,
        ),
        standard("gpt-4o-2024-11-20", 2.5, 10.0, 0.39, 0.17, 0.30, 0.55, true),
        standard("gpt-4o-mini", 0.15, 0.6, 0.45, 0.02, 0.08, 0.15, true),
        standard(
            "gpt-4o-mini-2024-07-18",
            0.15,
            0.6,
            0.45,
            0.02,
            0.06,
            0.15,
            true,
        ),
    ]
}

/// Look up a model by exact name.
pub fn model(name: &str) -> Option<&'static ModelSpec> {
    model_zoo().iter().find(|m| m.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_nine_table1_models() {
        let zoo = model_zoo();
        assert_eq!(zoo.len(), 9);
        let names: Vec<_> = zoo.iter().map(|m| m.name.as_str()).collect();
        for expected in [
            "o3-mini-high",
            "o1",
            "o3-mini",
            "gpt-4.5-preview",
            "o1-mini-2024-09-12",
            "gemini-2.0-flash-001",
            "gpt-4o-2024-11-20",
            "gpt-4o-mini",
            "gpt-4o-mini-2024-07-18",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn four_reasoning_five_standard_as_in_table1() {
        let zoo = model_zoo();
        assert_eq!(zoo.iter().filter(|m| m.reasoning).count(), 4);
        assert_eq!(zoo.iter().filter(|m| !m.reasoning).count(), 5);
    }

    #[test]
    fn reasoning_models_never_slip_and_anticipate_reuse() {
        for m in model_zoo().iter().filter(|m| m.reasoning) {
            assert_eq!(m.caps.arith_slip, 0.0, "{}", m.name);
            assert!(m.caps.reuse_aware > 0.0, "{}", m.name);
            assert!(m.reasoning_tokens > 0, "{}", m.name);
        }
    }

    #[test]
    fn cot_never_hurts_standard_models() {
        for m in model_zoo() {
            assert!(
                m.caps.arith_slip_cot <= m.caps.arith_slip,
                "{}: CoT must not increase slips",
                m.name
            );
        }
    }

    #[test]
    fn costs_match_paper_table1() {
        assert_eq!(model("o1").unwrap().input_cost, 15.0);
        assert_eq!(model("o1").unwrap().output_cost, 60.0);
        assert_eq!(model("gpt-4.5-preview").unwrap().input_cost, 75.0);
        assert_eq!(model("gpt-4o-mini").unwrap().input_cost, 0.15);
        assert_eq!(model("gemini-2.0-flash-001").unwrap().output_cost, 0.4);
    }

    #[test]
    fn reasoning_insight_orders_like_table1() {
        // o3-mini-high and o1 lead; o1-mini trails the o3 family.
        let insight = |n: &str| model(n).unwrap().caps.insight;
        assert!(insight("o3-mini-high") >= insight("o3-mini"));
        assert!(insight("o3-mini") > insight("o1-mini-2024-09-12"));
        assert!(insight("gpt-4.5-preview") > insight("gpt-4o-2024-11-20"));
        assert!(insight("gpt-4o-2024-11-20") > insight("gpt-4o-mini"));
    }

    #[test]
    fn unknown_model_lookup_fails() {
        assert!(model("gpt-5-ultra").is_none());
    }
}
