//! RQ4: fine-tuning simulation.
//!
//! The paper fine-tunes gpt-4o-mini on its 272-sample training split and
//! observes total collapse: after two epochs the model answers the same
//! class for the whole validation set (§3.7).
//!
//! We reproduce the *mechanism*, not just the outcome: a generative model
//! fine-tuned on single-token answers is, at the answer head, a logistic
//! model over its text features plus an answer-token prior. We train
//! exactly that — an SGD logistic head over hashed bag-of-token features —
//! with the aggressive schedule small fine-tune jobs use. Two ingredients
//! produce the paper's collapse, robustly across seeds:
//!
//! 1. the answer-token *prior* (the bias) is updated on every step, far
//!    more often than any individual text feature, so it saturates and
//!    oscillates between all-Compute / all-Bandwidth states
//!    (`answer_prior_rate`), and
//! 2. per-occurrence weight decay (the sparse-SGD form, standard in
//!    fine-tune schedules) keeps class-informative lexical features from
//!    accumulating enough mass to counter the prior on a few hundred
//!    samples (`weight_decay`).
//!
//! Wherever the oscillation stops, the saturated head answers one class
//! for everything — the collapse the paper reports in §3.7.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use pce_roofline::Boundedness;

/// Fine-tuning hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Epochs over the training set (the paper ran 2).
    pub epochs: u32,
    /// SGD learning rate. Fine-tune-style schedules are aggressive; this
    /// is what drives saturation on tiny datasets.
    pub learning_rate: f64,
    /// Learning-rate multiplier on the bias (answer-token prior). A
    /// generative model fine-tuned on single-token completions updates the
    /// answer token's output prior on *every* step — far more often than
    /// any individual text feature — which is what makes small fine-tunes
    /// overfit the answer distribution itself.
    pub answer_prior_rate: f64,
    /// Multiplicative decay applied to a feature's weight on each update
    /// it participates in — i.e. lazy/per-occurrence decay, the cheap
    /// sparse-SGD form (the bias is exempt, as output priors are rarely
    /// regularised). On tiny datasets this caps how much mass lexical
    /// features can accumulate, so they cannot counter the prior.
    pub weight_decay: f64,
    /// Hashed feature dimensionality.
    pub hash_dim: usize,
    /// Shuffle/initialisation seed.
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            epochs: 2,
            learning_rate: 12.0,
            answer_prior_rate: 8.0,
            weight_decay: 0.02,
            hash_dim: 4096,
            seed: 0,
        }
    }
}

/// A fine-tuning job: training text/label pairs plus the schedule.
#[derive(Debug, Clone)]
pub struct FineTuneJob {
    samples: Vec<(String, Boundedness)>,
    config: FineTuneConfig,
}

/// The trained head.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FineTunedModel {
    /// Hashed-feature weights.
    pub weights: Vec<f64>,
    /// Bias term.
    pub bias: f64,
    /// Per-epoch training accuracy, for reporting.
    pub epoch_train_accuracy: Vec<f64>,
    /// Config the model was trained with.
    pub config: FineTuneConfig,
}

impl FineTuneJob {
    /// Create a job from (source text, label) pairs.
    pub fn new(samples: Vec<(String, Boundedness)>, config: FineTuneConfig) -> Self {
        assert!(!samples.is_empty(), "cannot fine-tune on an empty dataset");
        FineTuneJob { samples, config }
    }

    /// Run SGD and return the trained head.
    pub fn run(&self) -> FineTunedModel {
        let dim = self.config.hash_dim;
        let mut weights = vec![0.0f64; dim];
        let mut bias = 0.0f64;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        let features: Vec<(Vec<(usize, f64)>, f64)> = self
            .samples
            .iter()
            .map(|(text, label)| {
                let y = match label {
                    Boundedness::Compute => 1.0,
                    Boundedness::Bandwidth => 0.0,
                };
                (hash_features(text, dim), y)
            })
            .collect();

        let mut order: Vec<usize> = (0..features.len()).collect();
        let mut epoch_train_accuracy = Vec::with_capacity(self.config.epochs as usize);
        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                let (x, y) = &features[idx];
                let p = sigmoid(dot(&weights, bias, x));
                let grad = p - y;
                bias -= self.config.learning_rate * self.config.answer_prior_rate * grad;
                for &(f, v) in x {
                    weights[f] = weights[f] * (1.0 - self.config.weight_decay)
                        - self.config.learning_rate * grad * v;
                }
            }
            let correct = features
                .iter()
                .filter(|(x, y)| (sigmoid(dot(&weights, bias, x)) >= 0.5) == (*y >= 0.5))
                .count();
            epoch_train_accuracy.push(correct as f64 / features.len() as f64);
        }
        FineTunedModel {
            weights,
            bias,
            epoch_train_accuracy,
            config: self.config,
        }
    }
}

impl FineTunedModel {
    /// Predict the class of a source text.
    pub fn predict(&self, text: &str) -> Boundedness {
        let x = hash_features(text, self.config.hash_dim);
        if sigmoid(dot(&self.weights, self.bias, &x)) >= 0.5 {
            Boundedness::Compute
        } else {
            Boundedness::Bandwidth
        }
    }

    /// Fraction of `texts` answered with the majority predicted class —
    /// 1.0 means total collapse.
    pub fn prediction_concentration(&self, texts: &[String]) -> f64 {
        if texts.is_empty() {
            return 1.0;
        }
        let compute = texts
            .iter()
            .filter(|t| self.predict(t) == Boundedness::Compute)
            .count();
        let majority = compute.max(texts.len() - compute);
        majority as f64 / texts.len() as f64
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

fn dot(weights: &[f64], bias: f64, x: &[(usize, f64)]) -> f64 {
    bias + x.iter().map(|&(f, v)| weights[f] * v).sum::<f64>()
}

/// Hashed, L2-normalised bag-of-token features.
fn hash_features(text: &str, dim: usize) -> Vec<(usize, f64)> {
    let mut counts = std::collections::BTreeMap::new();
    for token in text.split(|c: char| !c.is_ascii_alphanumeric() && c != '_') {
        if token.is_empty() {
            continue;
        }
        let mut h: u64 = 0xcbf29ce484222325;
        for b in token.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        *counts.entry((h % dim as u64) as usize).or_insert(0.0f64) += 1.0;
    }
    let norm: f64 = counts.values().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        counts.iter_mut().for_each(|(_, v)| *v /= norm);
    }
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic "programs" shaped like the real corpus: heavy shared
    /// boilerplate, and — when `informative` is false — a label that
    /// depends only on *numeric parameter values* (loop trip counts,
    /// problem sizes), which bag-of-token features cannot represent. The
    /// real dataset is exactly like that: the same kernel family appears in
    /// both classes depending on its CLI arguments (§2.2), which is why the
    /// paper's fine-tune had nothing lexical to learn.
    fn synthetic_samples(n: usize, seed: u64, informative: bool) -> Vec<(String, Boundedness)> {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = if i % 2 == 0 {
                    Boundedness::Compute
                } else {
                    Boundedness::Bandwidth
                };
                let iters = match label {
                    Boundedness::Compute => rng.gen_range(500..100_000),
                    Boundedness::Bandwidth => rng.gen_range(1..40),
                };
                let marker = if informative {
                    match label {
                        Boundedness::Compute => "iterate burn flops unroll",
                        Boundedness::Bandwidth => "stream copy memcpy store",
                    }
                } else {
                    "kernel body"
                };
                // Programs share almost all of their text (headers, host
                // harness, helper calls) — like real benchmark suites. The
                // only sample-distinct tokens are numeric values and a
                // unique id, neither of which recurs in validation.
                let noise: String = (0..rng.gen_range(3..8))
                    .map(|_| format!("tok{} ", rng.gen_range(0..9)))
                    .collect();
                (
                    format!(
                        "#include <cstdio>\n#include <cuda.h>\n#include <cmath>\n\
                         static double wall_time() {{ return 0.0; }}\n\
                         int main(int argc, char* argv[]) {{ \
                         long n = atol(argv[1]); float* h_data; float* d_data; \
                         cudaMalloc cudaMemcpy cudaDeviceSynchronize cudaFree free malloc printf \
                         launch grid block threads {marker} uniq{i}x{iters} \
                         for (int s = 0; s < {iters}; s++) {noise} return 0; }}"
                    ),
                    label,
                )
            })
            .collect()
    }

    #[test]
    fn two_epoch_finetune_on_small_data_collapses() {
        // The paper's setting: ~272 training samples, 2 epochs, and labels
        // that lexical features cannot explain.
        let train = synthetic_samples(272, 11, false);
        let model = FineTuneJob::new(train, FineTuneConfig::default()).run();
        let val: Vec<String> = synthetic_samples(68, 99, false)
            .into_iter()
            .map(|(t, _)| t)
            .collect();
        let concentration = model.prediction_concentration(&val);
        assert!(
            concentration > 0.85,
            "expected near-total collapse, got concentration {concentration}"
        );
    }

    #[test]
    fn gentle_schedule_on_informative_data_does_not_collapse() {
        // The counterfactual the paper hypothesises: learnable signal (and
        // a sane learning rate) generalises instead of collapsing.
        let train = synthetic_samples(4000, 5, true);
        let cfg = FineTuneConfig {
            learning_rate: 0.3,
            epochs: 4,
            answer_prior_rate: 1.0,
            weight_decay: 0.0,
            ..Default::default()
        };
        let model = FineTuneJob::new(train, cfg).run();
        let val = synthetic_samples(400, 77, true);
        let correct = val
            .iter()
            .filter(|(t, label)| model.predict(t) == *label)
            .count();
        let acc = correct as f64 / val.len() as f64;
        assert!(
            acc > 0.8,
            "informative features should be learnable, got {acc}"
        );
        let texts: Vec<String> = val.into_iter().map(|(t, _)| t).collect();
        assert!(model.prediction_concentration(&texts) < 0.9);
    }

    #[test]
    fn training_accuracy_is_tracked_per_epoch() {
        let model =
            FineTuneJob::new(synthetic_samples(50, 3, true), FineTuneConfig::default()).run();
        assert_eq!(model.epoch_train_accuracy.len(), 2);
        for acc in &model.epoch_train_accuracy {
            assert!((0.0..=1.0).contains(acc));
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = FineTuneJob::new(synthetic_samples(40, 1, true), FineTuneConfig::default()).run();
        let b = FineTuneJob::new(synthetic_samples(40, 1, true), FineTuneConfig::default()).run();
        assert_eq!(a.weights, b.weights);
        assert_eq!(a.bias, b.bias);
    }

    #[test]
    fn feature_hashing_is_normalized_and_stable() {
        let x = hash_features("alpha beta alpha", 128);
        let norm: f64 = x.iter().map(|(_, v)| v * v).sum::<f64>();
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(x, hash_features("alpha beta alpha", 128));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_job_panics() {
        FineTuneJob::new(vec![], FineTuneConfig::default());
    }
}
