//! Structural recovery: find kernel entry points and loop nests in a token
//! stream.
//!
//! Two kinds of kernels are recognised, matching the paper's two corpus
//! languages (§2.1):
//!
//! * **CUDA** — functions declared `__global__ void name(args) { … }`,
//! * **OpenMP offload** — `#pragma omp target …` directives followed by a
//!   loop nest (possibly inside a function body).

use crate::lexer::{Token, TokenKind};

/// A recovered kernel region: name plus the token range of its body.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelRegion {
    /// Kernel name (`__global__` function name, or a synthesized
    /// `target_region_N` for anonymous OMP target regions).
    pub name: String,
    /// Half-open token index range of the body (inside the braces).
    pub body: (usize, usize),
    /// Token index range of the parameter list, when present.
    pub params: Option<(usize, usize)>,
    /// True for OpenMP target regions.
    pub is_omp: bool,
}

/// Find the matching `}` for the `{` at `open` (token indices).
/// Returns the index of the closing brace, or `tokens.len()` if unbalanced.
pub fn match_brace(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is("{"));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.is("{") {
                depth += 1;
            } else if t.is("}") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    tokens.len()
}

/// Find the matching `)` for the `(` at `open`.
pub fn match_paren(tokens: &[Token], open: usize) -> usize {
    debug_assert!(tokens[open].is("("));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.is("(") {
                depth += 1;
            } else if t.is(")") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    tokens.len()
}

/// Find the matching closer for an arbitrary bracket pair starting at
/// `open` (e.g. `"["`/`"]"`). Returns `tokens.len()` if unbalanced.
pub fn match_paren_like(tokens: &[Token], open: usize, open_s: &str, close_s: &str) -> usize {
    debug_assert!(tokens[open].is(open_s));
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokenKind::Punct {
            if t.is(open_s) {
                depth += 1;
            } else if t.is(close_s) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
    }
    tokens.len()
}

/// Locate all kernel regions in a token stream.
pub fn find_kernels(tokens: &[Token]) -> Vec<KernelRegion> {
    let mut kernels = Vec::new();
    let mut omp_counter = 0usize;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        // CUDA: __global__ [launch_bounds...] void name ( ... ) { ... }
        if t.kind == TokenKind::Ident && t.text == "__global__" {
            if let Some(region) = parse_cuda_kernel(tokens, i) {
                i = region.body.1;
                kernels.push(region);
                continue;
            }
        }
        // OMP: #pragma omp target ... followed by a loop or block.
        if t.kind == TokenKind::Pragma && t.text.contains("omp") && t.text.contains("target") {
            if let Some(region) = parse_omp_region(tokens, i, omp_counter) {
                omp_counter += 1;
                i = region.body.1;
                kernels.push(region);
                continue;
            }
        }
        i += 1;
    }
    kernels
}

fn parse_cuda_kernel(tokens: &[Token], at: usize) -> Option<KernelRegion> {
    // Scan forward for the function name: the identifier immediately before
    // the first '(' after `__global__`.
    let mut j = at + 1;
    let mut name_idx = None;
    while j < tokens.len() && j < at + 16 {
        if tokens[j].is("(") {
            break;
        }
        if tokens[j].kind == TokenKind::Ident {
            name_idx = Some(j);
        }
        j += 1;
    }
    let name_idx = name_idx?;
    if j >= tokens.len() || !tokens[j].is("(") {
        return None;
    }
    let params_end = match_paren(tokens, j);
    // Body must open right after the parameter list (modulo qualifiers).
    let mut k = params_end + 1;
    while k < tokens.len() && !tokens[k].is("{") {
        if tokens[k].is(";") {
            return None; // forward declaration
        }
        k += 1;
    }
    if k >= tokens.len() {
        return None;
    }
    let body_end = match_brace(tokens, k);
    Some(KernelRegion {
        name: tokens[name_idx].text.clone(),
        body: (k + 1, body_end),
        params: Some((j + 1, params_end)),
        is_omp: false,
    })
}

fn parse_omp_region(tokens: &[Token], at: usize, counter: usize) -> Option<KernelRegion> {
    // The region body is either the following brace block or the following
    // `for` statement (take its body plus header).
    let mut j = at + 1;
    // Skip stacked pragmas (`#pragma omp target` + `#pragma omp parallel for`).
    while j < tokens.len() && tokens[j].kind == TokenKind::Pragma {
        j += 1;
    }
    if j >= tokens.len() {
        return None;
    }
    if tokens[j].is("{") {
        let end = match_brace(tokens, j);
        return Some(KernelRegion {
            name: format!("target_region_{counter}"),
            body: (j + 1, end),
            params: None,
            is_omp: true,
        });
    }
    if tokens[j].kind == TokenKind::Ident && tokens[j].text == "for" {
        // Find the loop body: after the for(...) header.
        let paren = (j + 1 < tokens.len() && tokens[j + 1].is("(")).then_some(j + 1)?;
        let header_end = match_paren(tokens, paren);
        let mut k = header_end + 1;
        let end = if k < tokens.len() && tokens[k].is("{") {
            match_brace(tokens, k)
        } else {
            // Single-statement body: up to the next ';' (crude but safe).
            while k < tokens.len() && !tokens[k].is(";") {
                k += 1;
            }
            k + 1
        };
        return Some(KernelRegion {
            name: format!("target_region_{counter}"),
            // Include the for-header so trip counts are visible.
            body: (j, end),
            params: None,
            is_omp: true,
        });
    }
    None
}

/// A `for` loop found inside a kernel body.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// Token index of the `for` keyword.
    pub at: usize,
    /// Trip-count bound expression: `Some(ident-or-number)` when the loop
    /// looks like `for (… ; i < BOUND; …)`, else `None`.
    pub bound: Option<Token>,
    /// Half-open token range of the loop body.
    pub body: (usize, usize),
}

/// Find the top-level `for` loops within a token range.
pub fn find_loops(tokens: &[Token], range: (usize, usize)) -> Vec<LoopInfo> {
    let mut loops = Vec::new();
    let mut i = range.0;
    while i < range.1.min(tokens.len()) {
        if tokens[i].kind == TokenKind::Ident && tokens[i].text == "for" {
            if let Some(info) = parse_for(tokens, i, range.1) {
                i = info.body.1;
                loops.push(info);
                continue;
            }
        }
        i += 1;
    }
    loops
}

fn parse_for(tokens: &[Token], at: usize, limit: usize) -> Option<LoopInfo> {
    if at + 1 >= tokens.len() || !tokens[at + 1].is("(") {
        return None;
    }
    let header_end = match_paren(tokens, at + 1);
    if header_end >= limit {
        return None;
    }
    // Extract the bound: look for `< BOUND` or `<= BOUND` in the condition
    // (the second ;-separated clause).
    let mut bound = None;
    let mut semis = 0;
    let mut k = at + 2;
    while k < header_end {
        if tokens[k].is(";") {
            semis += 1;
        } else if semis == 1 && (tokens[k].is("<") || tokens[k].is("<=")) {
            // Bound is the next number/ident token; prefer the last token
            // before the ';' to catch simple `n` or `n_elems`.
            if k + 1 < header_end
                && matches!(tokens[k + 1].kind, TokenKind::Ident | TokenKind::Number)
            {
                bound = Some(tokens[k + 1].clone());
            }
        }
        k += 1;
    }
    let mut b = header_end + 1;
    let body = if b < tokens.len() && tokens[b].is("{") {
        let end = match_brace(tokens, b);
        (b + 1, end)
    } else {
        while b < tokens.len() && !tokens[b].is(";") && b < limit {
            b += 1;
        }
        (header_end + 1, (b + 1).min(limit))
    };
    Some(LoopInfo { at, bound, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_cuda_kernel_and_name() {
        let toks = lex("__global__ void saxpy(int n, float* x) { x[0] = 1.0f; }");
        let kernels = find_kernels(&toks);
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].name, "saxpy");
        assert!(!kernels[0].is_omp);
        assert!(kernels[0].params.is_some());
    }

    #[test]
    fn skips_forward_declarations() {
        let toks = lex("__global__ void decl(int n); __global__ void real(int n) { }");
        let kernels = find_kernels(&toks);
        assert_eq!(kernels.len(), 1);
        assert_eq!(kernels[0].name, "real");
    }

    #[test]
    fn finds_multiple_kernels() {
        let toks =
            lex("__global__ void a() { } __global__ void b() { int x = 0; } void host() { }");
        let names: Vec<_> = find_kernels(&toks).into_iter().map(|k| k.name).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn finds_omp_target_for_region() {
        let src = "#pragma omp target teams distribute parallel for\nfor (int i = 0; i < n; i++) y[i] += x[i];";
        let kernels = find_kernels(&lex(src));
        assert_eq!(kernels.len(), 1);
        assert!(kernels[0].is_omp);
        assert_eq!(kernels[0].name, "target_region_0");
    }

    #[test]
    fn finds_omp_target_block_region() {
        let src = "#pragma omp target\n{ a[0] = 1; }";
        let kernels = find_kernels(&lex(src));
        assert_eq!(kernels.len(), 1);
    }

    #[test]
    fn stacked_pragmas_are_skipped() {
        let src = "#pragma omp target data map(to: x)\n#pragma omp target teams\nfor (int i = 0; i < 10; ++i) s += x[i];";
        let kernels = find_kernels(&lex(src));
        assert_eq!(kernels.len(), 1);
    }

    #[test]
    fn brace_matching_is_balanced() {
        let toks = lex("{ { } { { } } }");
        assert_eq!(match_brace(&toks, 0), toks.len() - 1);
    }

    #[test]
    fn loop_bound_extraction() {
        let toks = lex("for (int i = 0; i < 128; i++) { x += 1; }");
        let loops = find_loops(&toks, (0, toks.len()));
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].bound.as_ref().unwrap().text, "128");
    }

    #[test]
    fn loop_bound_identifier() {
        let toks = lex("for (int i = 0; i < n; ++i) y[i] = 0;");
        let loops = find_loops(&toks, (0, toks.len()));
        assert_eq!(loops[0].bound.as_ref().unwrap().text, "n");
    }

    #[test]
    fn nested_loops_found_at_top_level_only() {
        let toks = lex("for (int i = 0; i < 4; i++) { for (int j = 0; j < 8; j++) { s += 1; } }");
        let outer = find_loops(&toks, (0, toks.len()));
        assert_eq!(outer.len(), 1);
        let inner = find_loops(&toks, outer[0].body);
        assert_eq!(inner.len(), 1);
        assert_eq!(inner[0].bound.as_ref().unwrap().text, "8");
    }

    #[test]
    fn loop_without_braces() {
        let toks = lex("for (int i = 0; i < 10; i++) s += a[i];");
        let loops = find_loops(&toks, (0, toks.len()));
        assert_eq!(loops.len(), 1);
        // Body covers the single statement.
        assert!(loops[0].body.1 > loops[0].body.0);
    }
}
