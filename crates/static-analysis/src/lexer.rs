//! A C-family lexer sufficient for CUDA and OpenMP-offload sources.
//!
//! Comments are dropped; preprocessor lines are kept as single
//! [`TokenKind::Pragma`] tokens (the OMP analyzer needs `#pragma omp
//! target` markers); everything else becomes identifiers, numbers, string
//! literals, or single/multi-character punctuation. Every token carries
//! its byte span in the original source so downstream diagnostics can
//! report stable locations.
//!
//! Pathological input degrades instead of mis-lexing: an unterminated
//! block comment swallows the rest of the file silently, an unterminated
//! string or char literal stops at the end of its line (it does not eat
//! the remainder of the file), and preprocessor continuations accept both
//! `\`+LF and `\`+CRLF line endings.

use serde::{Deserialize, Serialize};

/// Lexical category of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (integer or floating, with suffixes).
    Number,
    /// String or char literal (contents preserved).
    Str,
    /// A whole preprocessor line (`#include …`, `#pragma …`).
    Pragma,
    /// Punctuation / operator (1–3 chars, e.g. `+`, `+=`, `<<<`).
    Punct,
}

/// One lexed token: kind, its exact source text, and its byte span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// Lexical category.
    pub kind: TokenKind,
    /// Source text of the token.
    pub text: String,
    /// Half-open byte range `[start, end)` of the token in the source.
    /// For `Pragma` tokens the end excludes trailing trimmed whitespace.
    #[serde(default)]
    pub span: (usize, usize),
}

impl Token {
    /// Convenience check against literal text.
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Multi-character operators, longest-match-first.
const MULTI_PUNCT: [&str; 26] = [
    "<<<", ">>>", "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&",
    "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "::", "##",
];

/// Lex a source string into tokens.
///
/// The lexer never fails: unrecognized bytes become single-char `Punct`
/// tokens, unterminated literals produce partial tokens, and the worst
/// malformed input yields a shorter-than-ideal but well-formed token
/// stream — the right degradation for an estimator that must accept
/// arbitrary benchmark code.
pub fn lex(source: &str) -> Vec<Token> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::with_capacity(source.len() / 4);
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // Whitespace.
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment. An unterminated one swallows the rest of the
        // file — the partial token stream up to the `/*` is returned.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            continue;
        }
        // Preprocessor line (with backslash continuations, LF or CRLF).
        if b == b'#' {
            let start = i;
            while i < bytes.len() {
                if bytes[i] == b'\n' {
                    let continued = (i >= 1 && bytes[i - 1] == b'\\')
                        || (i >= 2 && bytes[i - 1] == b'\r' && bytes[i - 2] == b'\\');
                    if continued {
                        i += 1;
                        continue;
                    }
                    break;
                }
                i += 1;
            }
            let text = source[start..i].trim_end();
            tokens.push(Token {
                kind: TokenKind::Pragma,
                text: text.to_string(),
                span: (start, start + text.len()),
            });
            continue;
        }
        // Identifier.
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text: source[start..i].to_string(),
                span: (start, i),
            });
            continue;
        }
        // Number (ints, floats, hex, suffixes like f/u/l, exponents).
        if b.is_ascii_digit() || (b == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let start = i;
            let mut seen_exp = false;
            while i < bytes.len() {
                let c = bytes[i];
                let ok = c.is_ascii_alphanumeric()
                    || c == b'.'
                    || ((c == b'+' || c == b'-')
                        && seen_exp
                        && matches!(bytes[i - 1], b'e' | b'E' | b'p' | b'P'));
                if !ok {
                    break;
                }
                if matches!(c, b'e' | b'E' | b'p' | b'P') {
                    seen_exp = true;
                }
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Number,
                text: source[start..i].to_string(),
                span: (start, i),
            });
            continue;
        }
        // String / char literal. An unterminated literal stops at the end
        // of its line (escaped newlines continue it), so a lone stray
        // quote cannot swallow the remainder of the file.
        if b == b'"' || b == b'\'' {
            let quote = b;
            let start = i;
            i += 1;
            let mut closed = false;
            while i < bytes.len() {
                let c = bytes[i];
                if c == quote {
                    closed = true;
                    break;
                }
                if c == b'\n' {
                    break; // unterminated: stop at the line end
                }
                if c == b'\\' && i + 1 < bytes.len() {
                    i += 1; // skip the escaped char (incl. escaped newline)
                }
                i += 1;
            }
            if closed {
                i += 1; // consume the closing quote
            }
            let end = i.min(bytes.len());
            tokens.push(Token {
                kind: TokenKind::Str,
                text: source[start..end].to_string(),
                span: (start, end),
            });
            i = end;
            continue;
        }
        // Multi-char punctuation, longest first.
        let rest = &source[i..];
        if let Some(op) = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: (*op).to_string(),
                span: (i, i + op.len()),
            });
            i += op.len();
            continue;
        }
        // Single char (UTF-8 aware).
        let ch_len = rest.chars().next().map(char::len_utf8).unwrap_or(1);
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: rest[..ch_len].to_string(),
            span: (i, i + ch_len),
        });
        i += ch_len;
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn basic_statement_lexes() {
        let toks = texts("y[i] = a * x[i] + y[i];");
        assert_eq!(
            toks,
            vec![
                "y", "[", "i", "]", "=", "a", "*", "x", "[", "i", "]", "+", "y", "[", "i", "]", ";"
            ]
        );
    }

    #[test]
    fn comments_are_dropped() {
        let toks = texts("a // line\n/* block\nstill */ b");
        assert_eq!(toks, vec!["a", "b"]);
    }

    #[test]
    fn pragma_lines_are_single_tokens() {
        let toks = lex("#pragma omp target teams\nint x;");
        assert_eq!(toks[0].kind, TokenKind::Pragma);
        assert!(toks[0].text.contains("omp target teams"));
        assert_eq!(toks[1].text, "int");
    }

    #[test]
    fn pragma_continuation_lines_join() {
        let toks = lex("#pragma omp target \\\n  map(to: a)\nx");
        assert_eq!(toks[0].kind, TokenKind::Pragma);
        assert!(toks[0].text.contains("map(to: a)"));
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn pragma_crlf_continuation_lines_join() {
        let toks = lex("#pragma omp target \\\r\n  map(to: a)\r\nx");
        assert_eq!(toks[0].kind, TokenKind::Pragma);
        assert!(toks[0].text.contains("map(to: a)"), "{:?}", toks[0].text);
        assert_eq!(toks[1].text, "x");
    }

    #[test]
    fn float_literals_keep_suffixes_and_exponents() {
        let toks = texts("1.0f 2.5e-3 0x1Fu 3.0");
        assert_eq!(toks, vec!["1.0f", "2.5e-3", "0x1Fu", "3.0"]);
    }

    #[test]
    fn cuda_launch_chevrons_lex_as_one_token() {
        let toks = texts("k<<<grid, block>>>(a);");
        assert!(toks.contains(&"<<<".to_string()));
        assert!(toks.contains(&">>>".to_string()));
    }

    #[test]
    fn compound_assignment_operators() {
        let toks = texts("a += b; c <<= 2;");
        assert!(toks.contains(&"+=".to_string()));
        assert!(toks.contains(&"<<=".to_string()));
    }

    #[test]
    fn string_literals_survive_with_escapes() {
        let toks = lex(r#"printf("%d \"quoted\"\n", x);"#);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("quoted"));
    }

    #[test]
    fn leading_dot_floats_lex_as_numbers() {
        let toks = lex("x = .5f;");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Number && t.text == ".5f"));
    }

    #[test]
    fn empty_and_whitespace_sources() {
        assert!(lex("").is_empty());
        assert!(lex("   \n\t  ").is_empty());
    }

    #[test]
    fn spans_index_back_into_the_source() {
        let src = "y[i] = a * x[i];\n#pragma omp simd\ncall(\"str\", 1.5f);";
        for t in lex(src) {
            let (s, e) = t.span;
            assert!(
                s <= e && e <= src.len(),
                "bad span {:?} for {:?}",
                t.span,
                t
            );
            assert_eq!(&src[s..e], t.text, "span must reproduce the text");
        }
    }

    #[test]
    fn unterminated_string_stops_at_line_end() {
        // The stray quote must not swallow the next line.
        let toks = lex("s = \"oops;\nint next = 1;");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Str));
        assert!(toks.iter().any(|t| t.is("next")), "{toks:?}");
        // Same for char literals (e.g. a lone apostrophe in text).
        let toks = lex("int a; ' stray\nint b;");
        assert!(toks.iter().any(|t| t.is("b")), "{toks:?}");
    }

    #[test]
    fn escaped_newline_continues_a_string() {
        let toks = lex("s = \"one \\\ntwo\"; x");
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("two"));
        assert!(toks.iter().any(|t| t.is("x")));
    }

    #[test]
    fn unterminated_block_comment_and_trailing_backslash_degrade() {
        // Unterminated block comment: everything after `/*` is dropped,
        // the tokens before it survive.
        let toks = lex("int a; /* never closed\nint b;");
        assert!(toks.iter().any(|t| t.is("a")));
        assert!(!toks.iter().any(|t| t.is("b")));
        // Trailing backslash at EOF inside a literal must not panic or
        // run past the buffer.
        let toks = lex("\"abc\\");
        assert_eq!(toks.len(), 1);
        let toks = lex("#define X \\");
        assert_eq!(toks.len(), 1);
    }
}
