//! The operation/byte estimator: from a token stream to per-thread FLOP,
//! INTOP, and byte tallies.
//!
//! The estimator is deliberately the kind of analysis a careful reader (or
//! a reasoning LLM) can do from source alone: type-resolve operands through
//! a declaration symbol table, weight statements by loop trip counts
//! (resolving bounds against known launch parameters, guessing otherwise),
//! and count *requested* memory traffic from subscript expressions. It has
//! no cache model and no coalescing model — matching the information
//! actually present in the prompt.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::lexer::{lex, Token, TokenKind};
use crate::structure::{find_kernels, find_loops, KernelRegion};

/// Numeric type lattice used for operand resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum NumType {
    Unknown,
    Int,
    Float,
    Double,
}

/// Estimated per-thread operation/byte tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OpTally {
    /// Single-precision FLOPs.
    pub flops_sp: f64,
    /// Double-precision FLOPs.
    pub flops_dp: f64,
    /// Integer operations.
    pub intops: f64,
    /// Bytes read (requested, pre-cache).
    pub read_bytes: f64,
    /// Bytes written.
    pub write_bytes: f64,
}

impl OpTally {
    /// Total requested bytes.
    pub fn total_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }

    /// Static arithmetic intensity for an op class
    /// (`0` = SP, `1` = DP, `2` = INT ordering follows
    /// `pce_roofline::OpClass::ALL`).
    pub fn ai(&self, class_index: usize) -> f64 {
        let ops = match class_index {
            0 => self.flops_sp,
            1 => self.flops_dp,
            _ => self.intops,
        };
        let bytes = self.total_bytes();
        if bytes <= 0.0 {
            if ops > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            ops / bytes
        }
    }

    fn add_scaled(&mut self, other: &OpTally, w: f64) {
        self.flops_sp += other.flops_sp * w;
        self.flops_dp += other.flops_dp * w;
        self.intops += other.intops * w;
        self.read_bytes += other.read_bytes * w;
        self.write_bytes += other.write_bytes * w;
    }
}

/// Analysis result for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelAnalysis {
    /// Kernel name.
    pub name: String,
    /// True for OpenMP target regions.
    pub is_omp: bool,
    /// Per-thread (CUDA) or per-iteration (OMP) tally.
    pub tally: OpTally,
    /// Deepest loop nesting observed.
    pub max_loop_depth: u32,
    /// Product of resolved trip counts along the deepest nest (an
    /// iteration-weight indicator the surrogate models use as a
    /// compute-heaviness signal).
    pub trip_weight: f64,
}

/// Whole-file analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceAnalysis {
    /// Per-kernel analyses, in source order.
    pub kernels: Vec<KernelAnalysis>,
    /// Flat whole-file tally (used by shallow/non-reasoning analysis).
    pub file_tally: OpTally,
    /// Hazard diagnostics from the lint rules ([`crate::diagnostics`]),
    /// sorted by span then rule. Empty for clean source.
    #[serde(default)]
    pub diagnostics: Vec<crate::diagnostics::Diagnostic>,
}

impl SourceAnalysis {
    /// The analysis for a kernel by name, or the first kernel, or `None`.
    pub fn kernel(&self, name: &str) -> Option<&KernelAnalysis> {
        self.kernels
            .iter()
            .find(|k| k.name == name)
            .or_else(|| self.kernels.first())
    }

    /// Number of error-severity diagnostics (correctness hazards).
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == crate::diagnostics::Severity::Error)
            .count()
    }
}

/// Options controlling the analysis.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Known launch parameters (problem sizes from CLI args) used to
    /// resolve identifier loop bounds.
    pub params: BTreeMap<String, u64>,
    /// Trip count assumed for loops whose bound cannot be resolved.
    pub default_trip: f64,
    /// When false, loop weighting is disabled (every statement counts
    /// once) — the "shallow reader" mode of non-reasoning surrogates.
    pub loop_aware: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions {
            params: BTreeMap::new(),
            default_trip: 64.0,
            loop_aware: true,
        }
    }
}

/// Analyze a source file.
pub fn analyze(source: &str, opts: &AnalyzeOptions) -> SourceAnalysis {
    let tokens = lex(source);
    let regions = find_kernels(&tokens);

    let kernels = regions
        .iter()
        .map(|region| analyze_kernel(&tokens, region, opts))
        .collect();

    // Shallow whole-file tally: no loop weighting, whole token stream.
    let file_symbols = collect_symbols(&tokens, 0, tokens.len());
    let mut file_tally = OpTally::default();
    tally_flat(&tokens, (0, tokens.len()), &file_symbols, &mut file_tally);

    SourceAnalysis {
        kernels,
        file_tally,
        diagnostics: crate::diagnostics::diagnose_tokens(source, &tokens, &regions),
    }
}

fn analyze_kernel(
    tokens: &[Token],
    region: &KernelRegion,
    opts: &AnalyzeOptions,
) -> KernelAnalysis {
    // Symbol table: parameters + body declarations.
    let mut symbols = BTreeMap::new();
    if let Some((ps, pe)) = region.params {
        collect_symbols_into(tokens, ps, pe, &mut symbols);
    }
    collect_symbols_into(tokens, region.body.0, region.body.1, &mut symbols);

    let mut tally = OpTally::default();
    let mut max_depth = 0u32;
    let mut trip_weight = 1.0f64;
    walk(
        tokens,
        region.body,
        &symbols,
        opts,
        1.0,
        0,
        region.is_omp,
        &mut tally,
        &mut max_depth,
        &mut trip_weight,
    );

    KernelAnalysis {
        name: region.name.clone(),
        is_omp: region.is_omp,
        tally,
        max_loop_depth: max_depth,
        trip_weight,
    }
}

/// Recursive region walk: statements outside loops count at `weight`;
/// loop bodies multiply by trip count (unless the *outermost* OMP loop,
/// which is the parallel dimension and counts once per "thread").
#[allow(clippy::too_many_arguments)]
fn walk(
    tokens: &[Token],
    range: (usize, usize),
    symbols: &BTreeMap<String, NumType>,
    opts: &AnalyzeOptions,
    weight: f64,
    depth: u32,
    omp_outer: bool,
    tally: &mut OpTally,
    max_depth: &mut u32,
    trip_weight: &mut f64,
) {
    *max_depth = (*max_depth).max(depth);
    let loops = find_loops(tokens, range);
    let mut cursor = range.0;
    for lp in &loops {
        // Flat stretch before this loop.
        let mut flat = OpTally::default();
        tally_flat(tokens, (cursor, lp.at), symbols, &mut flat);
        tally.add_scaled(&flat, weight);

        // The parallel dimension of an OMP outer loop contributes one
        // iteration per thread; loop-unaware analysis flattens every loop.
        let trip = if (omp_outer && depth == 0) || !opts.loop_aware {
            1.0
        } else {
            resolve_trip(lp.bound.as_ref(), opts)
        };
        if trip > 1.0 {
            *trip_weight *= trip;
        }
        // Loop-header overhead: one int compare + one increment per trip.
        tally.intops += 2.0 * trip * weight;
        walk(
            tokens,
            lp.body,
            symbols,
            opts,
            weight * trip,
            depth + 1,
            false,
            tally,
            max_depth,
            trip_weight,
        );
        cursor = lp.body.1;
    }
    let mut flat = OpTally::default();
    tally_flat(tokens, (cursor, range.1), symbols, &mut flat);
    tally.add_scaled(&flat, weight);
}

fn resolve_trip(bound: Option<&Token>, opts: &AnalyzeOptions) -> f64 {
    match bound {
        Some(t) if t.kind == TokenKind::Number => {
            parse_number(&t.text).unwrap_or(opts.default_trip)
        }
        Some(t) if t.kind == TokenKind::Ident => opts
            .params
            .get(&t.text)
            .map(|&v| v as f64)
            .unwrap_or(opts.default_trip),
        _ => opts.default_trip,
    }
}

fn parse_number(text: &str) -> Option<f64> {
    // Check for a hex prefix *before* stripping suffix letters: hex digits
    // are alphabetic, so trimming first would eat them (0xFF -> "0").
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        let digits = hex.trim_end_matches(['u', 'U', 'l', 'L']);
        return u64::from_str_radix(digits, 16).ok().map(|v| v as f64);
    }
    let clean = text.trim_end_matches(|c: char| c.is_ascii_alphabetic());
    clean.parse::<f64>().ok()
}

/// Count ops and memory accesses in a flat token stretch (no loop logic).
fn tally_flat(
    tokens: &[Token],
    range: (usize, usize),
    symbols: &BTreeMap<String, NumType>,
    tally: &mut OpTally,
) {
    let (start, end) = (range.0, range.1.min(tokens.len()));
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Punct => {
                let text = t.text.as_str();
                match text {
                    "+" | "-" | "*" | "/"
                        // Skip unary/pointer contexts: previous token must be
                        // an operand terminator.
                        if is_operand_end(tokens, i) => {
                            let ty = op_type(tokens, i, symbols);
                            charge_arith(tally, ty, 1.0);
                        }
                    "+=" | "-=" | "*=" | "/=" => {
                        let ty = op_type(tokens, i, symbols);
                        charge_arith(tally, ty, 1.0);
                    }
                    "%" | "&" | "|" | "^" | "<<" | ">>" | "%=" | "&=" | "|=" | "^=" | "<<="
                    | ">>="
                        if (is_operand_end(tokens, i) || text.ends_with('=')) => {
                            tally.intops += 1.0;
                        }
                    "++" | "--" => tally.intops += 1.0,
                    "<" | ">" | "<=" | ">=" | "==" | "!="
                        if is_operand_end(tokens, i) => {
                            tally.intops += 1.0;
                        }
                    "["
                        // Subscript on an identifier: a memory access.
                        if i > start && tokens[i - 1].kind == TokenKind::Ident => {
                            let array = &tokens[i - 1].text;
                            if !is_builtin_index(array) {
                                let elem = elem_bytes(symbols.get(array).copied());
                                let close = crate::structure::match_paren_like(tokens, i, "[", "]");
                                let is_write = close + 1 < end
                                    && tokens[close + 1].kind == TokenKind::Punct
                                    && matches!(
                                        tokens[close + 1].text.as_str(),
                                        "=" | "+=" | "-=" | "*=" | "/="
                                    );
                                if is_write {
                                    tally.write_bytes += elem;
                                    // Compound assignment also reads.
                                    if tokens[close + 1].text != "=" {
                                        tally.read_bytes += elem;
                                    }
                                } else {
                                    tally.read_bytes += elem;
                                }
                                // Index arithmetic.
                                tally.intops += 1.0;
                            }
                        }
                    _ => {}
                }
            }
            TokenKind::Ident
                // Intrinsic math calls.
                if i + 1 < end && tokens[i + 1].is("(") => {
                    if let Some((flops, ty)) = intrinsic_cost(&t.text) {
                        charge_arith_n(tally, ty, flops);
                    }
                }
            _ => {}
        }
        i += 1;
    }
}

fn is_operand_end(tokens: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    let prev = &tokens[i - 1];
    matches!(prev.kind, TokenKind::Ident | TokenKind::Number) || prev.is(")") || prev.is("]")
}

fn is_builtin_index(name: &str) -> bool {
    matches!(name, "threadIdx" | "blockIdx" | "blockDim" | "gridDim")
}

fn elem_bytes(ty: Option<NumType>) -> f64 {
    match ty {
        Some(NumType::Double) => 8.0,
        Some(NumType::Float) => 4.0,
        Some(NumType::Int) => 4.0,
        _ => 4.0,
    }
}

fn charge_arith(tally: &mut OpTally, ty: NumType, n: f64) {
    charge_arith_n(tally, ty, n)
}

fn charge_arith_n(tally: &mut OpTally, ty: NumType, n: f64) {
    match ty {
        NumType::Double => tally.flops_dp += n,
        NumType::Float => tally.flops_sp += n,
        NumType::Int | NumType::Unknown => tally.intops += n,
    }
}

/// Resolve the numeric type of the operation at punct index `i`.
fn op_type(tokens: &[Token], i: usize, symbols: &BTreeMap<String, NumType>) -> NumType {
    let left = operand_type(tokens, i, -1, symbols);
    let right = operand_type(tokens, i, 1, symbols);
    left.max(right)
}

fn operand_type(
    tokens: &[Token],
    op_at: usize,
    dir: isize,
    symbols: &BTreeMap<String, NumType>,
) -> NumType {
    let mut j = op_at as isize + dir;
    // Hop over one bracket group toward the operand's head.
    if j >= 0 && (j as usize) < tokens.len() {
        let t = &tokens[j as usize];
        if dir < 0 && (t.is("]") || t.is(")")) {
            // Walk back to the opener, then the ident before it.
            let (open, close) = if t.is("]") { ("[", "]") } else { ("(", ")") };
            let mut depth = 0;
            while j >= 0 {
                let tt = &tokens[j as usize];
                if tt.is(close) {
                    depth += 1;
                } else if tt.is(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j -= 1;
            }
            j -= 1; // the ident before '[' or '('
        }
    }
    if j < 0 || (j as usize) >= tokens.len() {
        return NumType::Unknown;
    }
    let t = &tokens[j as usize];
    match t.kind {
        TokenKind::Number => number_type(&t.text),
        TokenKind::Ident => {
            // Member access (`obj.x`, `ptr->x`): the member name must not
            // be confused with a like-named variable. Builtin thread-index
            // members are integers; anything else is unknown.
            if j >= 1 {
                let prev = &tokens[(j - 1) as usize];
                if prev.is(".") || prev.is("->") {
                    if j >= 2 && is_builtin_index(&tokens[(j - 2) as usize].text) {
                        return NumType::Int;
                    }
                    return NumType::Unknown;
                }
            }
            if let Some((_, ty)) = intrinsic_cost(&t.text) {
                return ty;
            }
            symbols.get(&t.text).copied().unwrap_or(NumType::Unknown)
        }
        _ => NumType::Unknown,
    }
}

fn number_type(text: &str) -> NumType {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") {
        return NumType::Int;
    }
    let is_floaty = lower.contains('.') || (lower.contains('e') && !lower.contains('x'));
    if !is_floaty {
        NumType::Int
    } else if lower.ends_with('f') {
        NumType::Float
    } else {
        NumType::Double
    }
}

/// (equivalent FLOPs, result type) of math intrinsics.
fn intrinsic_cost(name: &str) -> Option<(f64, NumType)> {
    let (flops, ty) = match name {
        "sqrtf" | "rsqrtf" | "__fsqrt_rn" | "fabsf" => (4.0, NumType::Float),
        "sqrt" | "rsqrt" | "fabs" => (4.0, NumType::Double),
        "expf" | "logf" | "__expf" | "__logf" | "exp2f" | "powf" => (8.0, NumType::Float),
        "exp" | "log" | "pow" | "exp2" => (8.0, NumType::Double),
        "sinf" | "cosf" | "tanf" | "__sinf" | "__cosf" | "atan2f" | "sincosf" => {
            (12.0, NumType::Float)
        }
        "sin" | "cos" | "tan" | "atan2" | "sincos" => (12.0, NumType::Double),
        "fmaf" | "__fmaf_rn" => (2.0, NumType::Float),
        "fma" => (2.0, NumType::Double),
        "fminf" | "fmaxf" => (1.0, NumType::Float),
        "fmin" | "fmax" => (1.0, NumType::Double),
        _ => return None,
    };
    Some((flops, ty))
}

fn collect_symbols(tokens: &[Token], start: usize, end: usize) -> BTreeMap<String, NumType> {
    let mut map = BTreeMap::new();
    collect_symbols_into(tokens, start, end, &mut map);
    map
}

/// Harvest `type ident` declarations (including pointers and qualifiers).
fn collect_symbols_into(
    tokens: &[Token],
    start: usize,
    end: usize,
    map: &mut BTreeMap<String, NumType>,
) {
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident {
            let ty = match t.text.as_str() {
                "float" => Some(NumType::Float),
                "double" => Some(NumType::Double),
                "int" | "unsigned" | "long" | "short" | "size_t" | "uint32_t" | "int32_t"
                | "uint64_t" | "int64_t" | "char" => Some(NumType::Int),
                _ => None,
            };
            if let Some(ty) = ty {
                // Bind every identifier in the declarator list up to ; or )
                // or = (skip over *, &, const).
                let mut j = i + 1;
                while j < end {
                    let tj = &tokens[j];
                    if tj.is(";") || tj.is(")") || tj.is("=") || tj.is("{") {
                        break;
                    }
                    if tj.kind == TokenKind::Ident
                        && !matches!(tj.text.as_str(), "const" | "restrict" | "__restrict__")
                    {
                        map.entry(tj.text.clone()).or_insert(ty);
                        // Only the first identifier after the type keyword:
                        // `float* a, float b` style lists re-enter via the
                        // next type keyword; `float a, b` is rare in kernels.
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_default(src: &str) -> SourceAnalysis {
        analyze(src, &AnalyzeOptions::default())
    }

    #[test]
    fn parse_number_handles_hex_decimal_and_suffixes() {
        assert_eq!(parse_number("0xFF"), Some(255.0));
        assert_eq!(parse_number("0X1F"), Some(31.0));
        assert_eq!(parse_number("0xFFu"), Some(255.0));
        assert_eq!(parse_number("100"), Some(100.0));
        assert_eq!(parse_number("1024u"), Some(1024.0));
        assert_eq!(parse_number("2.5f"), Some(2.5));
        assert_eq!(parse_number("abc"), None);
    }

    const SAXPY: &str = r#"
__global__ void saxpy(int n, float a, const float* x, float* y) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = a * x[i] + y[i];
    }
}
"#;

    #[test]
    fn saxpy_counts_two_sp_flops_and_twelve_bytes() {
        let a = analyze_default(SAXPY);
        let k = &a.kernels[0];
        assert_eq!(k.name, "saxpy");
        // a * x[i] and + y[i]: two SP flops.
        assert!(
            (k.tally.flops_sp - 2.0).abs() < 1e-9,
            "sp={}",
            k.tally.flops_sp
        );
        assert_eq!(k.tally.flops_dp, 0.0);
        // Reads x[i], y[i]; writes y[i]: 8 read + 4 written.
        assert!(
            (k.tally.read_bytes - 8.0).abs() < 1e-9,
            "rd={}",
            k.tally.read_bytes
        );
        assert!((k.tally.write_bytes - 4.0).abs() < 1e-9);
    }

    #[test]
    fn double_kernel_counts_dp() {
        let src = r#"
__global__ void daxpy(int n, double a, const double* x, double* y) {
    int i = threadIdx.x;
    y[i] = a * x[i] + y[i];
}
"#;
        let a = analyze_default(src);
        let k = &a.kernels[0];
        assert!((k.tally.flops_dp - 2.0).abs() < 1e-9);
        assert_eq!(k.tally.flops_sp, 0.0);
        assert!((k.tally.read_bytes - 16.0).abs() < 1e-9);
        assert!((k.tally.write_bytes - 8.0).abs() < 1e-9);
    }

    #[test]
    fn constant_loop_bounds_multiply_work() {
        let src = r#"
__global__ void iterate(float* out) {
    float acc = 0.0f;
    for (int it = 0; it < 100; it++) {
        acc = acc * 1.5f + 2.0f;
    }
    out[threadIdx.x] = acc;
}
"#;
        let a = analyze_default(src);
        let k = &a.kernels[0];
        // 2 SP flops per iteration × 100.
        assert!(
            (k.tally.flops_sp - 200.0).abs() < 1e-9,
            "sp={}",
            k.tally.flops_sp
        );
        assert_eq!(k.max_loop_depth, 1);
        assert!((k.trip_weight - 100.0).abs() < 1e-9);
    }

    #[test]
    fn param_loop_bounds_resolve_from_options() {
        let src = r#"
__global__ void iters(float* out, int steps) {
    float acc = 1.0f;
    for (int s = 0; s < steps; ++s) { acc += 3.0f; }
    out[threadIdx.x] = acc;
}
"#;
        let mut opts = AnalyzeOptions::default();
        opts.params.insert("steps".into(), 1000);
        let a = analyze(src, &opts);
        assert!((a.kernels[0].tally.flops_sp - 1000.0).abs() < 1e-9);
        // Unresolved: falls back to default_trip.
        let fallback = analyze_default(src);
        assert!((fallback.kernels[0].tally.flops_sp - 64.0).abs() < 1e-9);
    }

    #[test]
    fn shallow_mode_ignores_loops() {
        let src = r#"
__global__ void heavy(float* out) {
    for (int i = 0; i < 100000; i++) { out[0] += 1.0f; }
}
"#;
        let opts = AnalyzeOptions {
            loop_aware: false,
            ..Default::default()
        };
        let a = analyze(src, &opts);
        assert!(a.kernels[0].tally.flops_sp <= 2.0);
    }

    #[test]
    fn intrinsics_are_weighted() {
        let src = r#"
__global__ void trig(float* out) {
    out[threadIdx.x] = sinf(0.5f) + sqrtf(2.0f);
}
"#;
        let a = analyze_default(src);
        // sinf 12 + sqrtf 4 + the '+' 1 = 17 SP flops.
        assert!((a.kernels[0].tally.flops_sp - 17.0).abs() < 1e-9);
    }

    #[test]
    fn omp_outer_loop_is_the_parallel_dimension() {
        let src = r#"
#pragma omp target teams distribute parallel for map(tofrom: y[0:n])
for (int i = 0; i < n; i++) {
    y[i] = a * y[i] + x[i];
}
"#;
        let mut opts = AnalyzeOptions::default();
        opts.params.insert("n".into(), 1_000_000);
        let a = analyze(src, &opts);
        let k = &a.kernels[0];
        assert!(k.is_omp);
        // Per-iteration, not ×1M: 2 unknown-type flops -> counted somewhere,
        // bytes from two reads + one write of unknown arrays (4B default).
        assert!(k.tally.total_bytes() <= 16.0);
    }

    #[test]
    fn nested_loops_compose() {
        let src = r#"
__global__ void mm(const float* a, const float* b, float* c) {
    float s = 0.0f;
    for (int i = 0; i < 16; i++) {
        for (int j = 0; j < 8; j++) {
            s += a[i] * b[j];
        }
    }
    c[threadIdx.x] = s;
}
"#;
        let a = analyze_default(src);
        let k = &a.kernels[0];
        // 2 SP flops × 128 iterations.
        assert!(
            (k.tally.flops_sp - 256.0).abs() < 1e-9,
            "sp={}",
            k.tally.flops_sp
        );
        assert_eq!(k.max_loop_depth, 2);
        assert!((k.trip_weight - 128.0).abs() < 1e-9);
    }

    #[test]
    fn compound_assignment_reads_and_writes() {
        let src = r#"
__global__ void acc(float* y) {
    y[threadIdx.x] += 1.0f;
}
"#;
        let a = analyze_default(src);
        let k = &a.kernels[0];
        assert!((k.tally.read_bytes - 4.0).abs() < 1e-9);
        assert!((k.tally.write_bytes - 4.0).abs() < 1e-9);
        assert!((k.tally.flops_sp - 1.0).abs() < 1e-9);
    }

    #[test]
    fn builtin_indices_are_not_memory() {
        let src = r#"
__global__ void idx(int* out) {
    out[threadIdx.x] = blockIdx.x;
}
"#;
        let a = analyze_default(src);
        // Only the out[] write counts as traffic.
        assert_eq!(a.kernels[0].tally.read_bytes, 0.0);
        assert!((a.kernels[0].tally.write_bytes - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ai_estimates_are_consistent() {
        let a = analyze_default(SAXPY);
        let t = &a.kernels[0].tally;
        assert!((t.ai(0) - t.flops_sp / t.total_bytes()).abs() < 1e-12);
        // No DP ops: zero AI.
        assert_eq!(t.ai(1), 0.0);
    }

    #[test]
    fn file_tally_covers_host_code_too() {
        let src = format!("float host_helper(float v) {{ return v * 2.0f; }}\n{SAXPY}");
        let a = analyze_default(&src);
        assert!(a.file_tally.flops_sp > a.kernels[0].tally.flops_sp);
    }

    #[test]
    fn empty_source_yields_empty_analysis() {
        let a = analyze_default("");
        assert!(a.kernels.is_empty());
        assert_eq!(a.file_tally, OpTally::default());
    }
}
