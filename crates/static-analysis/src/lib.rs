//! # pce-static-analysis
//!
//! Source-level static analysis of CUDA / OpenMP-offload kernels: estimate
//! per-thread FLOP (SP/DP), integer-op, and byte counts — and from them a
//! *static* arithmetic-intensity estimate — from source text alone.
//!
//! This crate is the "mental model" of the surrogate reasoning LLMs in
//! `pce-llm`: when the paper's zero-/few-shot prompts hand an LLM nothing
//! but source code and hardware specs (Fig. 4), the best any reader can do
//! is exactly this kind of analysis. It is *structurally* imperfect in the
//! same ways a careful human reader is:
//!
//! * it counts **requested** bytes, not post-cache DRAM traffic, so
//!   reuse-heavy kernels look more bandwidth-hungry than they profile,
//! * it cannot see coalescing, so strided kernels look cheaper than they
//!   profile,
//! * loop trip counts that depend on runtime values must be guessed.
//!
//! Those systematic gaps — not injected randomness — are what hold the
//! simulated reasoning models near the paper's observed 64 % ceiling.
//!
//! ```
//! use pce_static_analysis::{analyze, AnalyzeOptions};
//!
//! let src = r#"
//! __global__ void saxpy(int n, float a, const float* x, float* y) {
//!     int i = blockIdx.x * blockDim.x + threadIdx.x;
//!     if (i < n) { y[i] = a * x[i] + y[i]; }
//! }
//! "#;
//! let analysis = analyze(src, &AnalyzeOptions::default());
//! let kernel = &analysis.kernels[0];
//! assert_eq!(kernel.name, "saxpy");
//! assert!(kernel.tally.flops_sp > 0.0);
//! assert!(kernel.tally.read_bytes > 0.0);
//! ```

#![forbid(unsafe_code)]

pub mod diagnostics;
pub mod estimate;
pub mod lexer;
pub mod structure;

pub use diagnostics::{diagnose, diagnose_tokens, Diagnostic, RuleId, Severity, Span};
pub use estimate::{analyze, AnalyzeOptions, KernelAnalysis, OpTally, SourceAnalysis};
pub use lexer::{lex, Token, TokenKind};
