//! Rule-based hazard diagnostics over kernel source.
//!
//! The estimator in [`crate::estimate`] counts ops and bytes; this module
//! reads the same token stream for the *hazards* that distinguish parallel
//! kernels: data races, missing barriers, serialized accumulator chains,
//! and uncoalesced access. Each finding is a typed [`Diagnostic`] with a
//! stable byte [`Span`] into the original source.
//!
//! The rules are deliberately token-level (no real dataflow): they mirror
//! what a careful human reviewer — or the paper's "LLM as static analyst"
//! — can conclude from source text alone, and they degrade safely on
//! malformed input because the lexer and structural recovery never fail.
//!
//! Severity policy: rules that diagnose *incorrect* parallel code
//! (races, missing reductions, divergent barriers) are
//! [`Severity::Error`]; rules that diagnose *slow but correct* code
//! (serialized accumulators, strided subscripts) are
//! [`Severity::Warning`]. The shipped corpus is error-clean by
//! construction; warnings are expected and informative.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::lexer::{lex, Token, TokenKind};
use crate::structure::{find_kernels, match_paren, match_paren_like, KernelRegion};

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Likely-slow but correct code (performance hazard).
    Warning,
    /// Likely-incorrect parallel code (correctness hazard).
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The registered lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RuleId {
    /// Shared-memory write→read across threads without `__syncthreads()`.
    SharedRace,
    /// Accumulation into a global array with a thread-independent index
    /// and no `atomicAdd`.
    GlobalRace,
    /// OMP parallel-for accumulation into a scalar declared outside the
    /// region without a `reduction(...)` clause.
    OmpReduction,
    /// `__syncthreads()` inside a thread-divergent branch.
    BarrierDivergence,
    /// Loop-carried scalar accumulator chain (serialized FMA chain).
    LoopCarriedDep,
    /// Thread- or innermost-loop-index multiplied inside a subscript:
    /// strided, uncoalesced access.
    StridedAccess,
}

impl RuleId {
    /// Stable kebab-case rule name (used in reports, CSV, and tests).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::SharedRace => "shared-race",
            RuleId::GlobalRace => "global-race",
            RuleId::OmpReduction => "omp-reduction",
            RuleId::BarrierDivergence => "barrier-divergence",
            RuleId::LoopCarriedDep => "loop-carried-dep",
            RuleId::StridedAccess => "strided-access",
        }
    }

    /// The severity this rule always reports at.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::SharedRace
            | RuleId::GlobalRace
            | RuleId::OmpReduction
            | RuleId::BarrierDivergence => Severity::Error,
            RuleId::LoopCarriedDep | RuleId::StridedAccess => Severity::Warning,
        }
    }

    /// One-line description of what the rule catches.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::SharedRace => {
                "shared-memory write then cross-thread read without __syncthreads()"
            }
            RuleId::GlobalRace => {
                "global accumulation with a thread-independent index and no atomicAdd"
            }
            RuleId::OmpReduction => {
                "OMP parallel-for accumulates into a shared scalar without reduction(...)"
            }
            RuleId::BarrierDivergence => "__syncthreads() inside a thread-divergent branch",
            RuleId::LoopCarriedDep => "loop-carried scalar accumulator serializes the loop",
            RuleId::StridedAccess => "index multiplied inside a subscript: strided access",
        }
    }

    /// Every registered rule, in report order.
    pub fn all() -> [RuleId; 6] {
        [
            RuleId::SharedRace,
            RuleId::GlobalRace,
            RuleId::OmpReduction,
            RuleId::BarrierDivergence,
            RuleId::LoopCarriedDep,
            RuleId::StridedAccess,
        ]
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// A resolved source location: byte offsets plus 1-based line / column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the start of the flagged token(s).
    pub start: usize,
    /// Byte offset one past the end.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start` within its line.
    pub col: u32,
}

impl Span {
    /// Resolve a byte range against the source it indexes.
    pub fn locate(source: &str, start: usize, end: usize) -> Span {
        let mut line = 1u32;
        let mut col = 1u32;
        for b in source.as_bytes().iter().take(start.min(source.len())) {
            if *b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Span {
            start,
            end,
            line,
            col,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity (always `rule.severity()`).
    pub severity: Severity,
    /// Stable location of the offending token(s).
    pub span: Span,
    /// Human-readable explanation, deterministic for a given source.
    pub message: String,
    /// The kernel the finding is in.
    pub kernel: String,
}

/// Diagnose a source string: lex, recover kernels, run every rule.
///
/// Deterministic and total: any input produces a (possibly empty) list,
/// ordered by span start then rule.
pub fn diagnose(source: &str) -> Vec<Diagnostic> {
    let tokens = lex(source);
    let kernels = find_kernels(&tokens);
    diagnose_tokens(source, &tokens, &kernels)
}

/// [`diagnose`] against an existing token stream and kernel set, so
/// callers that already ran the estimator don't lex twice.
pub fn diagnose_tokens(
    source: &str,
    tokens: &[Token],
    kernels: &[KernelRegion],
) -> Vec<Diagnostic> {
    let mut sink = Sink::default();
    for kernel in kernels {
        if kernel.is_omp {
            check_omp_reduction(source, tokens, kernel, &mut sink);
            check_strided_omp(source, tokens, kernel, &mut sink);
        } else {
            let ctx = CudaCtx::new(tokens, kernel);
            let mut state = RaceState::default();
            walk_range(source, &ctx, kernel.body, false, &mut state, &mut sink);
            check_global_race(source, &ctx, kernel, &mut sink);
            check_strided_cuda(source, &ctx, kernel, &mut sink);
        }
        check_loop_carried(source, tokens, kernel, &mut sink);
    }
    let mut out = sink.diags;
    out.sort_by_key(|d| (d.span.start, d.rule));
    out
}

/// Collects diagnostics, deduplicating by (rule, span start).
#[derive(Default)]
struct Sink {
    diags: Vec<Diagnostic>,
    seen: BTreeSet<(RuleId, usize)>,
}

impl Sink {
    fn emit(&mut self, source: &str, rule: RuleId, tok: &Token, kernel: &str, message: String) {
        if !self.seen.insert((rule, tok.span.0)) {
            return;
        }
        self.diags.push(Diagnostic {
            rule,
            severity: rule.severity(),
            span: Span::locate(source, tok.span.0, tok.span.1),
            message,
            kernel: kernel.to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Shared context for the CUDA rules.
// ---------------------------------------------------------------------------

struct CudaCtx<'a> {
    tokens: &'a [Token],
    kernel: &'a KernelRegion,
    /// `__shared__` array names declared in the kernel body.
    shared: BTreeSet<String>,
    /// Pointer/array parameter names (global memory).
    params: BTreeSet<String>,
    /// Idents derived (transitively) from any threadIdx/blockIdx component.
    thread_taint: BTreeSet<String>,
    /// Idents derived (transitively) from `threadIdx.x` specifically —
    /// the coalescing-relevant lane index.
    lane_taint: BTreeSet<String>,
}

impl<'a> CudaCtx<'a> {
    fn new(tokens: &'a [Token], kernel: &'a KernelRegion) -> Self {
        let shared = find_shared_arrays(tokens, kernel.body);
        let params = kernel
            .params
            .map(|range| find_param_names(tokens, range))
            .unwrap_or_default();
        let (thread_taint, lane_taint) = compute_taint(tokens, kernel.body);
        CudaCtx {
            tokens,
            kernel,
            shared,
            params,
            thread_taint,
            lane_taint,
        }
    }
}

/// Names of `__shared__` arrays declared within a token range.
fn find_shared_arrays(tokens: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i < hi {
        if tokens[i].is("__shared__") {
            // Scan forward for the first ident immediately followed by '['.
            let mut j = i + 1;
            while j + 1 < hi && !tokens[j].is(";") {
                if tokens[j].kind == TokenKind::Ident && tokens[j + 1].is("[") {
                    out.insert(tokens[j].text.clone());
                }
                j += 1;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// Parameter names from a parameter-list token range: the last ident of
/// each comma-separated declarator.
fn find_param_names(tokens: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    let mut last_ident: Option<&str> = None;
    let mut i = range.0;
    while i < hi {
        let t = &tokens[i];
        if t.is(",") {
            if let Some(name) = last_ident.take() {
                out.insert(name.to_string());
            }
        } else if t.kind == TokenKind::Ident {
            last_ident = Some(&t.text);
        }
        i += 1;
    }
    if let Some(name) = last_ident {
        out.insert(name.to_string());
    }
    out
}

/// Whether the token at `i` starts a `threadIdx.x` component reference;
/// returns the matched component (`"x"`, `"y"`, `"z"`) when it does.
fn thread_component(tokens: &[Token], i: usize, base: &str) -> Option<&'static str> {
    if !tokens[i].is(base) {
        return None;
    }
    if i + 2 < tokens.len() && tokens[i + 1].is(".") {
        for c in ["x", "y", "z"] {
            if tokens[i + 2].is(c) {
                return Some(c);
            }
        }
    }
    None
}

/// Two-pass taint propagation over simple assignments: an ident assigned
/// from an expression mentioning threadIdx/blockIdx (or an already-tainted
/// ident) becomes tainted. The second set tracks `threadIdx.x` only — the
/// lane index whose scaling breaks coalescing.
fn compute_taint(tokens: &[Token], range: (usize, usize)) -> (BTreeSet<String>, BTreeSet<String>) {
    let mut thread: BTreeSet<String> = BTreeSet::new();
    let mut lane: BTreeSet<String> = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    for _pass in 0..2 {
        let mut i = range.0;
        while i + 1 < hi {
            // LHS: plain ident followed by '=' (not '==', not an array store).
            let is_assign = tokens[i].kind == TokenKind::Ident
                && tokens[i + 1].is("=")
                && (i == range.0 || !tokens[i - 1].is("]"));
            if is_assign {
                let lhs = &tokens[i].text;
                let mut j = i + 2;
                let mut rhs_thread = false;
                let mut rhs_lane = false;
                while j < hi && !tokens[j].is(";") {
                    if tokens[j].kind == TokenKind::Ident {
                        if tokens[j].is("threadIdx") || tokens[j].is("blockIdx") {
                            rhs_thread = true;
                            if thread_component(tokens, j, "threadIdx") == Some("x") {
                                rhs_lane = true;
                            }
                        } else {
                            rhs_thread |= thread.contains(&tokens[j].text);
                            rhs_lane |= lane.contains(&tokens[j].text);
                        }
                    }
                    j += 1;
                }
                if rhs_thread {
                    thread.insert(lhs.clone());
                }
                if rhs_lane {
                    lane.insert(lhs.clone());
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
    (thread, lane)
}

// ---------------------------------------------------------------------------
// Statement walker: shared-memory races and divergent barriers.
// ---------------------------------------------------------------------------

/// Pending unsynchronized accesses per shared array: index-expression
/// text → token index of the access.
#[derive(Default, Clone)]
struct RaceState {
    writes: BTreeMap<String, BTreeMap<String, usize>>,
    reads: BTreeMap<String, BTreeMap<String, usize>>,
}

impl RaceState {
    fn clear(&mut self) {
        self.writes.clear();
        self.reads.clear();
    }
}

/// One extracted shared-array access within a statement.
struct Access {
    /// Token index of the array ident.
    at: usize,
    array: String,
    /// Concatenated text of every subscript group, e.g. `[tid][k]`.
    index: String,
    is_write: bool,
}

/// Walk the statements of `range`, simulating barrier/race state.
fn walk_range(
    source: &str,
    ctx: &CudaCtx<'_>,
    range: (usize, usize),
    divergent: bool,
    state: &mut RaceState,
    sink: &mut Sink,
) {
    let hi = range.1.min(ctx.tokens.len());
    let mut i = range.0;
    while i < hi {
        let next = walk_stmt(source, ctx, i, hi, divergent, state, sink);
        i = next.max(i + 1);
    }
}

/// Walk one statement starting at `i`; returns the resume index.
#[allow(clippy::too_many_arguments)]
fn walk_stmt(
    source: &str,
    ctx: &CudaCtx<'_>,
    i: usize,
    limit: usize,
    divergent: bool,
    state: &mut RaceState,
    sink: &mut Sink,
) -> usize {
    let tokens = ctx.tokens;
    let t = &tokens[i];
    if t.kind == TokenKind::Pragma {
        return i + 1;
    }
    if t.is("{") {
        let end = match_paren_like(tokens, i, "{", "}");
        walk_range(source, ctx, (i + 1, end.min(limit)), divergent, state, sink);
        return end + 1;
    }
    if t.is("for") || t.is("while") {
        let Some(header_end) = paren_after(tokens, i, limit) else {
            return i + 1;
        };
        let (body, resume) = stmt_or_block(tokens, header_end + 1, limit);
        // Virtual unrolling: two passes over the loop body expose hazards
        // that only manifest across iterations (the dedup sink keeps each
        // finding single).
        for _pass in 0..2 {
            walk_range(source, ctx, body, divergent, state, sink);
        }
        return resume;
    }
    if t.is("do") {
        let (body, resume) = stmt_or_block(tokens, i + 1, limit);
        for _pass in 0..2 {
            walk_range(source, ctx, body, divergent, state, sink);
        }
        // Skip the trailing `while (...)` condition.
        let mut j = resume;
        while j < limit && !tokens[j].is(";") {
            j += 1;
        }
        return j + 1;
    }
    if t.is("if") {
        let Some(header_end) = paren_after(tokens, i, limit) else {
            return i + 1;
        };
        let cond_divergent = cond_is_thread_divergent(ctx, (i + 2, header_end));
        let (body, mut resume) = stmt_or_block(tokens, header_end + 1, limit);
        walk_range(source, ctx, body, divergent || cond_divergent, state, sink);
        if resume < limit && tokens[resume].is("else") {
            if resume + 1 < limit && tokens[resume + 1].is("if") {
                // `else if`: recurse on the nested if at the same level.
                return walk_stmt(
                    source,
                    ctx,
                    resume + 1,
                    limit,
                    divergent || cond_divergent,
                    state,
                    sink,
                );
            }
            let (else_body, else_resume) = stmt_or_block(tokens, resume + 1, limit);
            walk_range(
                source,
                ctx,
                else_body,
                divergent || cond_divergent,
                state,
                sink,
            );
            resume = else_resume;
        }
        return resume;
    }
    if t.is("__syncthreads") {
        if divergent {
            sink.emit(
                source,
                RuleId::BarrierDivergence,
                t,
                &ctx.kernel.name,
                format!(
                    "__syncthreads() inside a thread-divergent branch in '{}': \
                     threads that skip the branch never reach the barrier (deadlock)",
                    ctx.kernel.name
                ),
            );
        }
        state.clear();
        let mut j = i + 1;
        while j < limit && !tokens[j].is(";") {
            j += 1;
        }
        return j + 1;
    }
    // Plain statement: scan to the `;` (or a `{`, which we hand back to
    // the range walker) and process shared-memory accesses.
    let mut j = i;
    while j < limit && !tokens[j].is(";") && !tokens[j].is("{") {
        j += 1;
    }
    process_statement(source, ctx, (i, j), state, sink);
    if j < limit && tokens[j].is("{") {
        return j; // let walk_stmt treat the block
    }
    j + 1
}

/// The token index of the `)` matching the `(` right after `i`, if any.
fn paren_after(tokens: &[Token], i: usize, limit: usize) -> Option<usize> {
    if i + 1 < limit && tokens[i + 1].is("(") {
        let end = match_paren(tokens, i + 1);
        (end < limit).then_some(end)
    } else {
        None
    }
}

/// Body range of the statement-or-block starting at `start`, plus the
/// resume index after it.
fn stmt_or_block(tokens: &[Token], start: usize, limit: usize) -> ((usize, usize), usize) {
    if start < limit && tokens[start].is("{") {
        let end = match_paren_like(tokens, start, "{", "}");
        ((start + 1, end.min(limit)), (end + 1).min(limit + 1))
    } else {
        let mut j = start;
        while j < limit && !tokens[j].is(";") {
            j += 1;
        }
        ((start, (j + 1).min(limit)), (j + 1).min(limit + 1))
    }
}

/// Whether a condition token range mentions threadIdx (any component) or
/// a thread-tainted ident. blockIdx is uniform within a block, so it
/// cannot diverge a `__syncthreads()`.
fn cond_is_thread_divergent(ctx: &CudaCtx<'_>, range: (usize, usize)) -> bool {
    let hi = range.1.min(ctx.tokens.len());
    ctx.tokens[range.0..hi].iter().any(|t| {
        t.kind == TokenKind::Ident && (t.is("threadIdx") || ctx.thread_taint.contains(&t.text))
    })
}

/// Extract shared-array accesses from one statement and update race state.
fn process_statement(
    source: &str,
    ctx: &CudaCtx<'_>,
    range: (usize, usize),
    state: &mut RaceState,
    sink: &mut Sink,
) {
    // Declarations (`__shared__ float buf[256];`) are not accesses.
    let hi = range.1.min(ctx.tokens.len());
    if ctx.tokens[range.0..hi].iter().any(|t| t.is("__shared__")) {
        return;
    }
    let accesses = extract_accesses(ctx.tokens, range, &ctx.shared);
    if accesses.is_empty() {
        return;
    }
    // Reads committed before this statement (intra-statement read/write
    // pairs like `cache[t] += cache[t+s]` are same-thread, not races).
    let prior_reads = state.reads.clone();
    for a in accesses.iter().filter(|a| !a.is_write) {
        if let Some(pending) = state.writes.get(&a.array) {
            if let Some((other, _)) = pending.iter().find(|(idx, _)| **idx != a.index) {
                sink.emit(
                    source,
                    RuleId::SharedRace,
                    &ctx.tokens[a.at],
                    &ctx.kernel.name,
                    format!(
                        "read of {}{} may race with the write of {}{} \
                         pending since before the last __syncthreads()",
                        a.array, a.index, a.array, other
                    ),
                );
            }
        }
        state
            .reads
            .entry(a.array.clone())
            .or_default()
            .insert(a.index.clone(), a.at);
    }
    for a in accesses.iter().filter(|a| a.is_write) {
        if let Some(pending) = prior_reads.get(&a.array) {
            if let Some((other, _)) = pending.iter().find(|(idx, _)| **idx != a.index) {
                sink.emit(
                    source,
                    RuleId::SharedRace,
                    &ctx.tokens[a.at],
                    &ctx.kernel.name,
                    format!(
                        "write of {}{} may race with the unsynchronized read of {}{}",
                        a.array, a.index, a.array, other
                    ),
                );
            }
        }
        state
            .writes
            .entry(a.array.clone())
            .or_default()
            .insert(a.index.clone(), a.at);
    }
}

/// Find every `name[...]...` access in a statement range for arrays in
/// `names`, classifying each as read or write.
fn extract_accesses(
    tokens: &[Token],
    range: (usize, usize),
    names: &BTreeSet<String>,
) -> Vec<Access> {
    let mut out = Vec::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i < hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && names.contains(&t.text) && i + 1 < hi {
            if let Some((index, after)) = subscript_group(tokens, i + 1, hi) {
                let pre_incr = i > range.0 && (tokens[i - 1].is("++") || tokens[i - 1].is("--"));
                let is_write = pre_incr
                    || (after < hi
                        && matches!(
                            tokens[after].text.as_str(),
                            "=" | "+="
                                | "-="
                                | "*="
                                | "/="
                                | "%="
                                | "&="
                                | "|="
                                | "^="
                                | "++"
                                | "--"
                                | "<<="
                                | ">>="
                        ));
                out.push(Access {
                    at: i,
                    array: t.text.clone(),
                    index,
                    is_write,
                });
                i = after;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Concatenated text of the consecutive `[...]` groups starting at `i`;
/// returns `(text, index_after_last_bracket)` or `None` when `i` is not
/// a `[`.
fn subscript_group(tokens: &[Token], i: usize, limit: usize) -> Option<(String, usize)> {
    if i >= limit || !tokens[i].is("[") {
        return None;
    }
    let mut text = String::new();
    let mut j = i;
    while j < limit && tokens[j].is("[") {
        let close = match_paren_like(tokens, j, "[", "]");
        if close >= limit {
            // Unbalanced subscript: take what's there and stop.
            for t in &tokens[j..limit] {
                text.push_str(&t.text);
            }
            return Some((text, limit));
        }
        for t in &tokens[j..=close] {
            text.push_str(&t.text);
        }
        j = close + 1;
    }
    Some((text, j))
}

// ---------------------------------------------------------------------------
// Global-accumulation race (CUDA).
// ---------------------------------------------------------------------------

/// Compound accumulation into a parameter array whose subscript is
/// uniform across threads — every thread hammers the same element.
fn check_global_race(source: &str, ctx: &CudaCtx<'_>, kernel: &KernelRegion, sink: &mut Sink) {
    let tokens = ctx.tokens;
    let hi = kernel.body.1.min(tokens.len());
    let mut i = kernel.body.0;
    while i < hi {
        let t = &tokens[i];
        let is_target = t.kind == TokenKind::Ident
            && ctx.params.contains(&t.text)
            && !ctx.shared.contains(&t.text);
        if is_target {
            if let Some((index_text, after)) = subscript_group(tokens, i + 1, hi) {
                let accumulates = after < hi
                    && matches!(
                        tokens[after].text.as_str(),
                        "+=" | "-=" | "*=" | "/=" | "++" | "--"
                    );
                if accumulates && !index_mentions_thread(ctx, (i + 1, after)) {
                    sink.emit(
                        source,
                        RuleId::GlobalRace,
                        t,
                        &kernel.name,
                        format!(
                            "'{}{}' accumulates into global memory with a \
                             thread-independent index and no atomicAdd: \
                             every thread races on the same element",
                            t.text, index_text
                        ),
                    );
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
}

/// Whether a subscript token range mentions threadIdx/blockIdx or any
/// thread-tainted ident (if it does, threads hit distinct elements).
/// Idents inside *nested* subscripts don't count: in `bins[data[i]]` the
/// bin index is a loaded value, not a thread-distinct coordinate.
fn index_mentions_thread(ctx: &CudaCtx<'_>, range: (usize, usize)) -> bool {
    let hi = range.1.min(ctx.tokens.len());
    let mut depth = 0i32;
    for t in &ctx.tokens[range.0..hi] {
        if t.is("[") {
            depth += 1;
            continue;
        }
        if t.is("]") {
            depth -= 1;
            continue;
        }
        if depth == 1
            && t.kind == TokenKind::Ident
            && (t.is("threadIdx") || t.is("blockIdx") || ctx.thread_taint.contains(&t.text))
        {
            return true;
        }
    }
    false
}

// ---------------------------------------------------------------------------
// OMP reduction rule.
// ---------------------------------------------------------------------------

/// Pragma text lines immediately preceding an OMP region body.
fn region_pragmas(tokens: &[Token], kernel: &KernelRegion) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = kernel.body.0;
    while i > 0 {
        i -= 1;
        if tokens[i].kind == TokenKind::Pragma {
            out.push(tokens[i].text.clone());
        } else if tokens[i].is("{") || out.is_empty() {
            // Walk past the opening brace / `for` header tokens that sit
            // between the pragma stack and the body start.
            continue;
        } else {
            break;
        }
        if out.len() >= 8 {
            break;
        }
    }
    out
}

/// Variable names listed in `reduction(op: a, b)` clauses.
fn reduction_vars(pragmas: &[String]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for p in pragmas {
        let mut rest = p.as_str();
        while let Some(at) = rest.find("reduction") {
            rest = &rest[at + "reduction".len()..];
            let Some(open) = rest.find('(') else { break };
            let Some(close) = rest[open..].find(')') else {
                break;
            };
            let clause = &rest[open + 1..open + close];
            if let Some(colon) = clause.find(':') {
                for name in clause[colon + 1..].split(',') {
                    let name = name.trim();
                    if !name.is_empty() {
                        out.insert(name.to_string());
                    }
                }
            }
            rest = &rest[open + close..];
        }
    }
    out
}

/// C type-ish keywords that begin a declaration.
fn is_type_keyword(text: &str) -> bool {
    matches!(
        text,
        "int"
            | "long"
            | "short"
            | "char"
            | "float"
            | "double"
            | "unsigned"
            | "signed"
            | "bool"
            | "size_t"
            | "auto"
            | "const"
    )
}

/// Idents declared inside a token range (`type name ...`), including
/// for-header inductions and comma-separated declarators.
fn declared_idents(tokens: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i + 1 < hi {
        if tokens[i].kind == TokenKind::Ident && is_type_keyword(&tokens[i].text) {
            // Consume the declarator list: idents separated by ',' until
            // ';', '=', or anything that ends a simple declaration.
            let mut j = i + 1;
            let mut expecting_name = true;
            while j < hi {
                let t = &tokens[j];
                if t.kind == TokenKind::Ident {
                    if is_type_keyword(&t.text) || t.is("omp") {
                        j += 1;
                        continue;
                    }
                    if expecting_name {
                        out.insert(t.text.clone());
                        expecting_name = false;
                        j += 1;
                        continue;
                    }
                    break;
                }
                if t.is("*") {
                    j += 1;
                    continue;
                }
                if t.is(",") {
                    expecting_name = true;
                    j += 1;
                    continue;
                }
                if t.is("=") {
                    // Skip the initializer up to ',' or ';'.
                    let mut depth = 0i32;
                    while j < hi {
                        let u = &tokens[j];
                        if u.is("(") || u.is("[") {
                            depth += 1;
                        } else if u.is(")") || u.is("]") {
                            depth -= 1;
                        } else if depth == 0 && (u.is(",") || u.is(";")) {
                            break;
                        }
                        j += 1;
                    }
                    continue;
                }
                if t.is("[") {
                    let close = match_paren_like(tokens, j, "[", "]");
                    j = close + 1;
                    continue;
                }
                break;
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// Induction variables of every `for` header in a range.
fn loop_vars(tokens: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i < hi {
        if tokens[i].is("for") && i + 1 < hi && tokens[i + 1].is("(") {
            let header_end = match_paren(tokens, i + 1).min(hi);
            // `for (type? var = ...` — the ident right before the first '='.
            let mut j = i + 2;
            while j + 1 < header_end {
                if tokens[j].kind == TokenKind::Ident && tokens[j + 1].is("=") {
                    out.insert(tokens[j].text.clone());
                    break;
                }
                j += 1;
            }
        }
        i += 1;
    }
    out
}

/// Scalar accumulation in a parallel OMP region without a matching
/// `reduction` clause, declared-inside privatization, or atomic guard.
fn check_omp_reduction(source: &str, tokens: &[Token], kernel: &KernelRegion, sink: &mut Sink) {
    let pragmas = region_pragmas(tokens, kernel);
    let parallel = pragmas
        .iter()
        .any(|p| p.contains("parallel") || p.contains("distribute"));
    if !parallel {
        return;
    }
    let reductions = reduction_vars(&pragmas);
    let declared = declared_idents(tokens, kernel.body);
    let inductions = loop_vars(tokens, kernel.body);
    let hi = kernel.body.1.min(tokens.len());
    let mut i = kernel.body.0;
    while i + 1 < hi {
        let t = &tokens[i];
        if t.kind == TokenKind::Ident && !is_type_keyword(&t.text) {
            let prev_subscripted = i > 0 && tokens[i - 1].is("]");
            let compound = matches!(
                tokens[i + 1].text.as_str(),
                "+=" | "-=" | "*=" | "/=" | "++" | "--"
            );
            // `x = x + ...` self-accumulation, same hazard as `x += ...`.
            let self_assign = tokens[i + 1].is("=") && {
                let mut j = i + 2;
                let mut found = false;
                while j < hi && !tokens[j].is(";") {
                    if tokens[j].is(&t.text) {
                        found = true;
                        break;
                    }
                    j += 1;
                }
                found
            };
            let scalar = i + 1 < hi && !tokens[i + 1].is("[") && !prev_subscripted;
            if scalar
                && (compound || self_assign)
                && !reductions.contains(&t.text)
                && !declared.contains(&t.text)
                && !inductions.contains(&t.text)
                && !atomic_guarded(tokens, kernel.body.0, i)
            {
                sink.emit(
                    source,
                    RuleId::OmpReduction,
                    t,
                    &kernel.name,
                    format!(
                        "'{}' accumulates across parallel iterations without a \
                         reduction(...) clause (and is not privatized in the region)",
                        t.text
                    ),
                );
            }
        }
        i += 1;
    }
}

/// Whether the statement containing token `i` is immediately preceded by
/// an `#pragma omp atomic` / `critical` guard.
fn atomic_guarded(tokens: &[Token], lo: usize, i: usize) -> bool {
    let mut j = i;
    while j > lo {
        j -= 1;
        if tokens[j].is(";") || tokens[j].is("{") || tokens[j].is("}") {
            // Statement boundary: look just before it too (pragma tokens
            // sit between statements).
            break;
        }
        if tokens[j].kind == TokenKind::Pragma {
            return tokens[j].text.contains("atomic") || tokens[j].text.contains("critical");
        }
    }
    // The token right after the boundary may be the pragma itself.
    while j > lo {
        if tokens[j].kind == TokenKind::Pragma {
            return tokens[j].text.contains("atomic") || tokens[j].text.contains("critical");
        }
        if !(tokens[j].is(";") || tokens[j].is("{") || tokens[j].is("}")) {
            break;
        }
        j -= 1;
    }
    false
}

// ---------------------------------------------------------------------------
// Loop-carried dependency chains.
// ---------------------------------------------------------------------------

/// Scalar compound accumulation inside a loop body: each iteration waits
/// on the previous one's result (a serialized FMA chain).
fn check_loop_carried(source: &str, tokens: &[Token], kernel: &KernelRegion, sink: &mut Sink) {
    let inductions = loop_vars(tokens, kernel.body);
    let hi = kernel.body.1.min(tokens.len());
    // Token ranges covered by some loop body.
    let loop_bodies = all_loop_bodies(tokens, kernel.body);
    for (lo, body_hi) in loop_bodies {
        let mut i = lo;
        let body_hi = body_hi.min(hi);
        while i + 1 < body_hi {
            let t = &tokens[i];
            let prev_subscripted = i > 0 && tokens[i - 1].is("]");
            if t.kind == TokenKind::Ident
                && !prev_subscripted
                && !tokens[i + 1].is("[")
                && matches!(tokens[i + 1].text.as_str(), "+=" | "-=" | "*=")
                && !inductions.contains(&t.text)
                && !t.is("threadIdx")
                && !t.is("blockIdx")
            {
                sink.emit(
                    source,
                    RuleId::LoopCarriedDep,
                    t,
                    &kernel.name,
                    format!(
                        "'{}' forms a loop-carried dependency chain: each iteration \
                         waits on the previous accumulation (consider multiple \
                         accumulators or a tree reduction)",
                        t.text
                    ),
                );
            }
            i += 1;
        }
    }
}

/// Every loop body range (at any nesting depth) within `range`.
fn all_loop_bodies(tokens: &[Token], range: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i < hi {
        if tokens[i].is("for") && i + 1 < hi && tokens[i + 1].is("(") {
            let header_end = match_paren(tokens, i + 1);
            if header_end < hi {
                let (body, _) = stmt_or_block(tokens, header_end + 1, hi);
                out.push(body);
            }
            i = header_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Strided / uncoalesced subscripts.
// ---------------------------------------------------------------------------

/// CUDA: a lane-index-derived ident (from `threadIdx.x`) scaled by a
/// multiplication inside a global-array subscript — adjacent threads
/// touch elements a stride apart.
fn check_strided_cuda(source: &str, ctx: &CudaCtx<'_>, kernel: &KernelRegion, sink: &mut Sink) {
    let tokens = ctx.tokens;
    let hi = kernel.body.1.min(tokens.len());
    let mut i = kernel.body.0;
    while i < hi {
        let t = &tokens[i];
        let global_array = t.kind == TokenKind::Ident
            && ctx.params.contains(&t.text)
            && !ctx.shared.contains(&t.text);
        if global_array {
            if let Some((_, after)) = subscript_group(tokens, i + 1, hi) {
                if let Some(scaled) = find_scaled_ident(tokens, (i + 1, after), |name, k| {
                    ctx.lane_taint.contains(name)
                        || (k > 0 && thread_component(tokens, k, "threadIdx") == Some("x"))
                }) {
                    sink.emit(
                        source,
                        RuleId::StridedAccess,
                        t,
                        &kernel.name,
                        format!(
                            "subscript of '{}' multiplies the lane index '{}': adjacent \
                             threads access elements a stride apart (uncoalesced)",
                            t.text, scaled
                        ),
                    );
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
}

/// OMP: the innermost loop's induction variable scaled by a
/// multiplication inside a subscript — consecutive iterations touch
/// elements a stride apart (defeats vectorized/contiguous access).
fn check_strided_omp(source: &str, tokens: &[Token], kernel: &KernelRegion, sink: &mut Sink) {
    let innermost = innermost_loop_vars(tokens, kernel.body);
    if innermost.is_empty() {
        return;
    }
    let hi = kernel.body.1.min(tokens.len());
    let mut i = kernel.body.0;
    while i < hi {
        if tokens[i].kind == TokenKind::Ident && i + 1 < hi {
            if let Some((_, after)) = subscript_group(tokens, i + 1, hi) {
                if let Some(scaled) =
                    find_scaled_ident(tokens, (i + 1, after), |name, _| innermost.contains(name))
                {
                    let t = &tokens[i];
                    sink.emit(
                        source,
                        RuleId::StridedAccess,
                        t,
                        &kernel.name,
                        format!(
                            "subscript of '{}' multiplies the innermost loop index \
                             '{}': consecutive iterations access elements a stride \
                             apart (uncoalesced / unvectorizable)",
                            t.text, scaled
                        ),
                    );
                }
                i = after;
                continue;
            }
        }
        i += 1;
    }
}

/// Induction variables of loops that contain no nested loop.
fn innermost_loop_vars(tokens: &[Token], range: (usize, usize)) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let hi = range.1.min(tokens.len());
    let mut i = range.0;
    while i < hi {
        if tokens[i].is("for") && i + 1 < hi && tokens[i + 1].is("(") {
            let header_end = match_paren(tokens, i + 1);
            if header_end >= hi {
                i += 1;
                continue;
            }
            let (body, _) = stmt_or_block(tokens, header_end + 1, hi);
            let has_nested = tokens[body.0..body.1.min(hi)].iter().any(|t| t.is("for"));
            if !has_nested {
                let mut j = i + 2;
                while j + 1 < header_end {
                    if tokens[j].kind == TokenKind::Ident && tokens[j + 1].is("=") {
                        out.insert(tokens[j].text.clone());
                        break;
                    }
                    j += 1;
                }
            }
            i = header_end + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// An ident inside `range` that is adjacent to a `*` (either side) and
/// satisfies `pred(name, token_index)`; returns the ident's text.
fn find_scaled_ident<F>(tokens: &[Token], range: (usize, usize), pred: F) -> Option<String>
where
    F: Fn(&str, usize) -> bool,
{
    let hi = range.1.min(tokens.len());
    for k in range.0..hi {
        let t = &tokens[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `threadIdx . x * e` — the `*` sits after the component.
        let after = if t.is("threadIdx") && k + 2 < hi && tokens[k + 1].is(".") {
            k + 3
        } else {
            k + 1
        };
        let mul_after = after < hi && tokens[after].is("*");
        let mul_before = k > range.0 && tokens[k - 1].is("*")
            // `(cast)* x` or `a ** b` don't occur; `e * x` is what we want,
            // so require an expression token before the `*`.
            && k >= 2
            && (tokens[k - 2].kind != TokenKind::Punct
                || tokens[k - 2].is(")")
                || tokens[k - 2].is("]"));
        if (mul_after || mul_before) && pred(&t.text, k) {
            let name = if t.is("threadIdx") && k + 2 < hi && tokens[k + 1].is(".") {
                format!("threadIdx.{}", tokens[k + 2].text)
            } else {
                t.text.clone()
            };
            return Some(name);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> BTreeSet<&'static str> {
        diagnose(src).into_iter().map(|d| d.rule.id()).collect()
    }

    fn cuda_reduction_kernel(with_loop_sync: bool) -> String {
        format!(
            "__global__ void reduce_sum(long n, const float* in, float* out) {{\n\
             \x20 __shared__ float buf[256];\n\
             \x20 long i = blockIdx.x * (long)blockDim.x + threadIdx.x;\n\
             \x20 buf[threadIdx.x] = (i < n) ? in[i] : 0;\n\
             \x20 __syncthreads();\n\
             \x20 for (int s = 128; s > 0; s >>= 1) {{\n\
             \x20   if (threadIdx.x < s) buf[threadIdx.x] += buf[threadIdx.x + s];\n\
             {}\
             \x20 }}\n\
             \x20 if (threadIdx.x == 0) out[blockIdx.x] = buf[0];\n}}\n",
            if with_loop_sync {
                " \x20  __syncthreads();\n"
            } else {
                ""
            }
        )
    }

    #[test]
    fn well_formed_tree_reduction_is_error_clean() {
        let diags = diagnose(&cuda_reduction_kernel(true));
        assert!(
            diags.iter().all(|d| d.severity < Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn deleting_the_loop_sync_fires_shared_race() {
        let src = cuda_reduction_kernel(false);
        let diags = diagnose(&src);
        let race: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::SharedRace)
            .collect();
        assert!(!race.is_empty(), "{diags:?}");
        // The span lands on a `buf` access inside the loop.
        let d = race[0];
        assert_eq!(&src[d.span.start..d.span.end], "buf");
        assert!(d.span.line >= 6, "span {:?} should be in the loop", d.span);
        assert_eq!(d.kernel, "reduce_sum");
    }

    #[test]
    fn deleting_the_store_sync_fires_shared_race() {
        let src = "__global__ void k(const float* in, float* out) {\n\
                   \x20 __shared__ float c[256];\n\
                   \x20 c[threadIdx.x] = in[threadIdx.x];\n\
                   \x20 out[threadIdx.x] = c[255 - threadIdx.x];\n}\n";
        assert!(rules_hit(src).contains("shared-race"));
    }

    #[test]
    fn tiled_gemm_with_both_syncs_is_error_clean() {
        let src = "__global__ void gemm_tiled(int dim, const float* A, const float* B, float* C) {\n\
                   \x20 __shared__ float As[16][16];\n\
                   \x20 __shared__ float Bs[16][16];\n\
                   \x20 int row = blockIdx.y * 16 + threadIdx.y;\n\
                   \x20 int col = blockIdx.x * 16 + threadIdx.x;\n\
                   \x20 float acc = 0;\n\
                   \x20 for (int t = 0; t < dim / 16; t++) {\n\
                   \x20   As[threadIdx.y][threadIdx.x] = A[row * dim + t * 16 + threadIdx.x];\n\
                   \x20   Bs[threadIdx.y][threadIdx.x] = B[(t * 16 + threadIdx.y) * dim + col];\n\
                   \x20   __syncthreads();\n\
                   \x20   for (int k = 0; k < 16; k++) acc += As[threadIdx.y][k] * Bs[k][threadIdx.x];\n\
                   \x20   __syncthreads();\n\
                   \x20 }\n\
                   \x20 if (row < dim && col < dim) C[row * dim + col] = acc;\n}\n";
        let errors: Vec<_> = diagnose(src)
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn deleting_either_gemm_sync_fires_shared_race() {
        for cut in 0..2 {
            let mut src = String::from(
                "__global__ void gemm_tiled(int dim, const float* A, float* C) {\n\
                 \x20 __shared__ float As[16][16];\n\
                 \x20 int row = blockIdx.y * 16 + threadIdx.y;\n\
                 \x20 float acc = 0;\n\
                 \x20 for (int t = 0; t < dim / 16; t++) {\n",
            );
            if cut != 0 {
                src.push_str("   As[threadIdx.y][threadIdx.x] = A[row * dim + t];\n");
                src.push_str("   __syncthreads();\n");
            } else {
                src.push_str("   As[threadIdx.y][threadIdx.x] = A[row * dim + t];\n");
            }
            src.push_str("   for (int k = 0; k < 16; k++) acc += As[threadIdx.y][k];\n");
            if cut != 1 {
                src.push_str("   __syncthreads();\n");
            }
            src.push_str(" }\n C[row] = acc;\n}\n");
            assert!(
                rules_hit(&src).contains("shared-race"),
                "cut {cut} must fire"
            );
        }
    }

    #[test]
    fn barrier_in_divergent_branch_fires() {
        let src = "__global__ void k(float* x) {\n\
                   \x20 __shared__ float c[32];\n\
                   \x20 int tid = threadIdx.x;\n\
                   \x20 if (tid < 16) {\n\
                   \x20   c[tid] = x[tid];\n\
                   \x20   __syncthreads();\n\
                   \x20 }\n\
                   \x20 x[tid] = c[tid];\n}\n";
        let diags = diagnose(src);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::BarrierDivergence)
            .collect();
        assert_eq!(hit.len(), 1, "{diags:?}");
        assert_eq!(&src[hit[0].span.start..hit[0].span.end], "__syncthreads");
    }

    #[test]
    fn uniform_barrier_is_clean() {
        // Barrier under a blockIdx condition (uniform per block) is fine.
        let src = "__global__ void k(float* x) {\n\
                   \x20 if (blockIdx.x == 0) { __syncthreads(); }\n\
                   \x20 __syncthreads();\n}\n";
        assert!(!rules_hit(src).contains("barrier-divergence"));
    }

    #[test]
    fn global_accumulation_without_atomic_fires() {
        let src = "__global__ void hist(long n, const int* data, int* bins) {\n\
                   \x20 long i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   \x20 if (i < n) bins[data[i] & 255] += 1;\n}\n";
        // data[i]&255 mentions no thread-derived ident → every thread can
        // collide on the same bin.
        assert!(rules_hit(src).contains("global-race"));
    }

    #[test]
    fn thread_indexed_accumulation_is_clean() {
        let src = "__global__ void k(long n, float* y, const float* x) {\n\
                   \x20 long i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   \x20 if (i < n) y[i] += x[i];\n}\n";
        assert!(!rules_hit(src).contains("global-race"));
    }

    #[test]
    fn omp_accumulation_without_reduction_fires() {
        let src = "float sum = 0;\n\
                   #pragma omp target teams distribute parallel for map(to: x[0:n])\n\
                   for (long i = 0; i < n; i++) sum += x[i];\n";
        let diags = diagnose(src);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::OmpReduction)
            .collect();
        assert_eq!(hit.len(), 1, "{diags:?}");
        assert_eq!(&src[hit[0].span.start..hit[0].span.end], "sum");
    }

    #[test]
    fn omp_reduction_clause_silences_the_rule() {
        let src = "float sum = 0;\n\
                   #pragma omp target teams distribute parallel for reduction(+:sum) map(to: x[0:n])\n\
                   for (long i = 0; i < n; i++) sum += x[i];\n";
        assert!(!rules_hit(src).contains("omp-reduction"));
    }

    #[test]
    fn omp_privatized_accumulator_is_clean() {
        // Accumulator declared inside the parallel body is per-iteration
        // private — the corpus gemm/gemv OMP ports use this shape.
        let src = "#pragma omp target teams distribute parallel for map(from: y[0:n])\n\
                   for (long i = 0; i < n; i++) {\n\
                   \x20 float acc = 0;\n\
                   \x20 for (long j = 0; j < n; j++) acc += j;\n\
                   \x20 y[i] = acc;\n}\n";
        assert!(!rules_hit(src).contains("omp-reduction"));
    }

    #[test]
    fn loop_carried_accumulator_warns() {
        let src = "__global__ void dot(long n, const float* x, float* out) {\n\
                   \x20 float acc = 0;\n\
                   \x20 for (long j = 0; j < n; j++) acc += x[j];\n\
                   \x20 out[0] = acc;\n}\n";
        let diags = diagnose(src);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::LoopCarriedDep)
            .collect();
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].severity, Severity::Warning);
        assert_eq!(&src[hit[0].span.start..hit[0].span.end], "acc");
    }

    #[test]
    fn strided_cuda_subscript_warns() {
        // Transposed store: the lane index is row-scaled.
        let src = "__global__ void transpose(int dim, const float* in, float* out) {\n\
                   \x20 int x = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   \x20 int y = blockIdx.y * blockDim.y + threadIdx.y;\n\
                   \x20 out[x * dim + y] = in[y * dim + x];\n}\n";
        let diags = diagnose(src);
        let hit: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == RuleId::StridedAccess)
            .collect();
        assert_eq!(hit.len(), 1, "{diags:?}");
        assert_eq!(hit[0].severity, Severity::Warning);
        assert_eq!(&src[hit[0].span.start..hit[0].span.end], "out");
    }

    #[test]
    fn coalesced_cuda_subscript_is_clean() {
        let src = "__global__ void saxpy(long n, float a, const float* x, float* y) {\n\
                   \x20 long i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   \x20 if (i < n) y[i] = a * x[i] + y[i];\n}\n";
        assert!(!rules_hit(src).contains("strided-access"));
    }

    #[test]
    fn strided_omp_subscript_warns() {
        let src = "#pragma omp target teams distribute parallel for collapse(2)\n\
                   for (int y = 0; y < dim; y++) {\n\
                   \x20 for (int x = 0; x < dim; x++) {\n\
                   \x20   out[x * dim + y] = in[y * dim + x];\n\
                   \x20 }\n}\n";
        assert!(rules_hit(src).contains("strided-access"));
    }

    #[test]
    fn diagnostics_are_sorted_and_deduplicated() {
        let src = cuda_reduction_kernel(false);
        let diags = diagnose(&src);
        let mut sorted = diags.clone();
        sorted.sort_by_key(|d| (d.span.start, d.rule));
        assert_eq!(diags, sorted);
        let mut keys: Vec<_> = diags.iter().map(|d| (d.rule, d.span.start)).collect();
        keys.dedup();
        assert_eq!(keys.len(), diags.len(), "no duplicate findings");
    }

    #[test]
    fn diagnose_is_total_on_junk() {
        for src in [
            "",
            "{{{{",
            "__global__ void k(",
            "__global__ void k() { for (;;) ",
            "#pragma omp target\n",
            "__shared__ int x[4]; x[0] = 1;",
            "\"unterminated\n__global__ void k() { }",
        ] {
            let _ = diagnose(src);
        }
    }

    #[test]
    fn rule_registry_is_consistent() {
        let all = RuleId::all();
        let ids: BTreeSet<_> = all.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), all.len(), "rule ids are unique");
        for r in all {
            assert!(!r.summary().is_empty());
            // Display matches the id.
            assert_eq!(format!("{r}"), r.id());
        }
    }

    #[test]
    fn span_locate_reports_line_and_column() {
        let src = "abc\ndef ghi\n";
        let s = Span::locate(src, 8, 11);
        assert_eq!((s.line, s.col), (2, 5));
        assert_eq!(&src[s.start..s.end], "ghi");
    }
}
