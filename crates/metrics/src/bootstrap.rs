//! Seeded bootstrap confidence intervals for any statistic over paired
//! (truth, prediction) outcomes.
//!
//! With only 340 evaluation samples, point metrics deserve uncertainty
//! bars; the harness uses these to report, e.g., a 95 % CI on each Table-1
//! accuracy cell.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A percentile bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BootstrapInterval {
    /// Point estimate on the full sample.
    pub estimate: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Number of bootstrap resamples drawn.
    pub resamples: usize,
    /// Confidence level, e.g. 0.95.
    pub level: f64,
}

impl BootstrapInterval {
    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Whether a hypothesised value lies inside the interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// Percentile-bootstrap a statistic over a sample of outcomes.
///
/// `statistic` maps a resampled set of items (as references into the
/// original sample) to a scalar. Resampling shuffles *indices* only — no
/// item is ever cloned, so bootstrapping owns-a-`String` outcomes costs
/// the same as bootstrapping `bool`s. The RNG stream is fully determined
/// by `seed`.
///
/// Returns `None` when `items` has fewer than two elements: an empty
/// sample has no statistic at all, and a singleton resamples to itself on
/// every draw, producing a zero-width interval that carries no
/// uncertainty information — both are caller bugs better surfaced as an
/// absent interval than as a panic (empty) or a confident-looking lie
/// (singleton). Also returns `None` when the statistic produces NaN on
/// the full sample or any resample (e.g. a ratio whose bucket the
/// invalid-response filter emptied) — a NaN bound is not an interval.
///
/// # Panics
/// Panics on zero resamples or a level outside (0, 1) — those are
/// misconfigurations, not data conditions.
pub fn bootstrap_ci<T, F: Fn(&[&T]) -> f64>(
    items: &[T],
    statistic: F,
    resamples: usize,
    level: f64,
    seed: u64,
) -> Option<BootstrapInterval> {
    assert!(resamples > 0, "need at least one resample");
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0,1)"
    );
    if items.len() < 2 {
        return None;
    }

    let full: Vec<&T> = items.iter().collect();
    let estimate = statistic(&full);
    if estimate.is_nan() {
        return None;
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut stats = Vec::with_capacity(resamples);
    let mut scratch: Vec<&T> = Vec::with_capacity(items.len());
    for _ in 0..resamples {
        scratch.clear();
        for _ in 0..items.len() {
            let idx = rng.gen_range(0..items.len());
            scratch.push(&items[idx]);
        }
        let stat = statistic(&scratch);
        if stat.is_nan() {
            return None;
        }
        stats.push(stat);
    }
    stats.sort_by(|a, b| a.total_cmp(b));

    let alpha = 1.0 - level;
    let lo_idx = ((alpha / 2.0) * resamples as f64).floor() as usize;
    let hi_idx = (((1.0 - alpha / 2.0) * resamples as f64).ceil() as usize)
        .saturating_sub(1)
        .min(resamples - 1);
    Some(BootstrapInterval {
        estimate,
        lo: stats[lo_idx],
        hi: stats[hi_idx],
        resamples,
        level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(items: &[&bool]) -> f64 {
        items.iter().filter(|&&&x| x).count() as f64 / items.len() as f64
    }

    #[test]
    fn degenerate_sample_has_zero_width() {
        let items = vec![true; 100];
        let ci = bootstrap_ci(&items, accuracy, 200, 0.95, 7).unwrap();
        assert_eq!(ci.estimate, 1.0);
        assert_eq!(ci.lo, 1.0);
        assert_eq!(ci.hi, 1.0);
        assert_eq!(ci.width(), 0.0);
    }

    #[test]
    fn interval_brackets_the_estimate() {
        let items: Vec<bool> = (0..200).map(|i| i % 3 != 0).collect();
        let ci = bootstrap_ci(&items, accuracy, 500, 0.95, 42).unwrap();
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
        assert!(ci.contains(ci.estimate));
        // ~66% accuracy; CI should be within a plausible band.
        assert!(ci.lo > 0.5 && ci.hi < 0.8);
    }

    #[test]
    fn same_seed_reproduces_same_interval() {
        let items: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let a = bootstrap_ci(&items, accuracy, 300, 0.9, 123).unwrap();
        let b = bootstrap_ci(&items, accuracy, 300, 0.9, 123).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_usually_differ() {
        let items: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let a = bootstrap_ci(&items, accuracy, 300, 0.9, 1).unwrap();
        let b = bootstrap_ci(&items, accuracy, 300, 0.9, 2).unwrap();
        // Same estimate (deterministic), but resampled bounds differ.
        assert_eq!(a.estimate, b.estimate);
        assert!(a.lo != b.lo || a.hi != b.hi);
    }

    #[test]
    fn wider_level_gives_wider_interval() {
        let items: Vec<bool> = (0..150).map(|i| i % 4 != 0).collect();
        let narrow = bootstrap_ci(&items, accuracy, 800, 0.8, 5).unwrap();
        let wide = bootstrap_ci(&items, accuracy, 800, 0.99, 5).unwrap();
        assert!(wide.width() >= narrow.width());
    }

    #[test]
    fn empty_and_singleton_samples_return_none() {
        // Both degenerate edges: no data at all, and a single outcome
        // whose every resample is itself (a zero-width non-interval).
        assert_eq!(bootstrap_ci(&[] as &[bool], accuracy, 10, 0.95, 0), None);
        assert_eq!(bootstrap_ci(&[true], accuracy, 10, 0.95, 0), None);
        // Two items is the smallest sample that bootstraps.
        assert!(bootstrap_ci(&[true, false], accuracy, 10, 0.95, 0).is_some());
    }

    #[test]
    #[should_panic(expected = "at least one resample")]
    fn zero_resamples_still_panics() {
        bootstrap_ci(&[true, false], accuracy, 0, 0.95, 0);
    }

    #[test]
    fn nan_statistic_returns_none_instead_of_panicking() {
        // A ratio over a bucket the invalid-response filter can empty:
        // resamples drawing only `false` items divide zero by zero.
        let ratio = |xs: &[&bool]| {
            let hits = xs.iter().filter(|&&&x| x).count() as f64;
            hits / hits // NaN whenever the resample has no `true` item
        };
        let mostly_false: Vec<bool> = (0..20).map(|i| i == 0).collect();
        assert_eq!(bootstrap_ci(&mostly_false, ratio, 400, 0.95, 3), None);
        // NaN on the full-sample estimate alone is also absorbed.
        let all_false = vec![false; 20];
        assert_eq!(bootstrap_ci(&all_false, ratio, 10, 0.95, 3), None);
    }

    #[test]
    fn unclonable_items_bootstrap_fine() {
        // T needs no Clone bound: resampling is by reference.
        struct Outcome(bool);
        let items: Vec<Outcome> = (0..64).map(|i| Outcome(i % 4 != 0)).collect();
        let ci = bootstrap_ci(
            &items,
            |xs| xs.iter().filter(|o| o.0).count() as f64 / xs.len() as f64,
            200,
            0.95,
            9,
        )
        .unwrap();
        assert!((ci.estimate - 0.75).abs() < 1e-12);
        assert!(ci.lo <= ci.estimate && ci.estimate <= ci.hi);
    }
}
