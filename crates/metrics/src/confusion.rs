//! Binary confusion matrix and the paper's three reported metrics.
//!
//! The matrix is *label-symmetric*: the paper deliberately picks accuracy,
//! macro-F1 and MCC because neither CB nor BB is a natural "positive"
//! class (§3.1). We arbitrarily map one class to `true` at the call site;
//! every metric here is invariant (accuracy, macro-F1) or equivariant (MCC
//! keeps its sign structure) under that choice.

use serde::{Deserialize, Serialize};

/// A 2×2 confusion matrix over an arbitrary binary labeling.
///
/// `truth=true, pred=true` increments `tp`, etc. Unparseable model answers
/// should be recorded with [`ConfusionMatrix::record_invalid`], which counts
/// them as errors against the true class (matching the paper's automation,
/// which marks any non-singleton answer wrong).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// truth=true predicted true.
    pub tp: u64,
    /// truth=false predicted true.
    pub fp: u64,
    /// truth=false predicted false.
    pub tn: u64,
    /// truth=true predicted false.
    pub fn_: u64,
    /// truth=true with an unparseable prediction.
    pub invalid_pos: u64,
    /// truth=false with an unparseable prediction.
    pub invalid_neg: u64,
}

impl ConfusionMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one (truth, prediction) pair.
    #[inline]
    pub fn record(&mut self, truth: bool, pred: bool) {
        match (truth, pred) {
            (true, true) => self.tp += 1,
            (true, false) => self.fn_ += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Record a sample whose prediction could not be parsed into a class.
    #[inline]
    pub fn record_invalid(&mut self, truth: bool) {
        if truth {
            self.invalid_pos += 1;
        } else {
            self.invalid_neg += 1;
        }
    }

    /// Record an optional prediction (`None` = unparseable).
    #[inline]
    pub fn record_opt(&mut self, truth: bool, pred: Option<bool>) {
        match pred {
            Some(p) => self.record(truth, p),
            None => self.record_invalid(truth),
        }
    }

    /// Merge another matrix into this one.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
        self.invalid_pos += other.invalid_pos;
        self.invalid_neg += other.invalid_neg;
    }

    /// Total number of recorded samples (including invalid answers).
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.tn + self.fn_ + self.invalid_pos + self.invalid_neg
    }

    /// Number of correct predictions.
    pub fn correct(&self) -> u64 {
        self.tp + self.tn
    }

    /// Accuracy in `[0, 1]`; 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.correct() as f64 / total as f64
        }
    }

    /// F1 of the `true` class. Invalid answers count as misses.
    pub fn f1_positive(&self) -> f64 {
        let tp = self.tp as f64;
        let denom = 2.0 * tp + self.fp as f64 + (self.fn_ + self.invalid_pos) as f64;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * tp / denom
        }
    }

    /// F1 of the `false` class.
    pub fn f1_negative(&self) -> f64 {
        let tn = self.tn as f64;
        let denom = 2.0 * tn + (self.fn_) as f64 + (self.fp + self.invalid_neg) as f64;
        if denom == 0.0 {
            0.0
        } else {
            2.0 * tn / denom
        }
    }

    /// Macro F1: the unweighted mean of both class F1 scores (§3.1).
    pub fn macro_f1(&self) -> f64 {
        0.5 * (self.f1_positive() + self.f1_negative())
    }

    /// Matthews Correlation Coefficient in `[-1, 1]`.
    ///
    /// +1 is perfect prediction, 0 matches a random predictor, −1 is
    /// perfect inverse prediction (§3.1). Invalid answers are folded into
    /// the miss counts of their true class. When any marginal is zero the
    /// coefficient is defined as 0 (the standard convention).
    pub fn mcc(&self) -> f64 {
        let tp = self.tp as f64;
        let tn = self.tn as f64;
        let fp = (self.fp + self.invalid_neg) as f64;
        let fn_ = (self.fn_ + self.invalid_pos) as f64;
        let denom = (tp + fp) * (tp + fn_) * (tn + fp) * (tn + fn_);
        if denom == 0.0 {
            0.0
        } else {
            (tp * tn - fp * fn_) / denom.sqrt()
        }
    }

    /// Accuracy as `Some(value)` — `None` for an empty matrix, so callers
    /// whose invalid-response filtering emptied a bucket can render "–"
    /// instead of a fabricated 0.
    pub fn accuracy_opt(&self) -> Option<f64> {
        if self.total() == 0 {
            None
        } else {
            Some(self.accuracy())
        }
    }

    /// The three Table-1 metrics, ×100.
    pub fn bundle(&self) -> MetricBundle {
        MetricBundle {
            accuracy: self.accuracy() * 100.0,
            macro_f1: self.macro_f1() * 100.0,
            mcc: self.mcc() * 100.0,
            n: self.total(),
        }
    }

    /// [`ConfusionMatrix::bundle`] as `Some(bundle)` — `None` for an empty
    /// matrix rather than an all-zero bundle that reads like a real score.
    pub fn bundle_opt(&self) -> Option<MetricBundle> {
        if self.total() == 0 {
            None
        } else {
            Some(self.bundle())
        }
    }
}

/// Accuracy / macro-F1 / MCC scaled ×100, as reported in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricBundle {
    /// Accuracy × 100.
    pub accuracy: f64,
    /// Macro F1 × 100.
    pub macro_f1: f64,
    /// MCC × 100.
    pub mcc: f64,
    /// Number of evaluated samples.
    pub n: u64,
}

impl std::fmt::Display for MetricBundle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "acc={:.2} f1={:.2} mcc={:.2} (n={})",
            self.accuracy, self.macro_f1, self.mcc, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(tp: u64, fp: u64, tn: u64, fn_: u64) -> ConfusionMatrix {
        ConfusionMatrix {
            tp,
            fp,
            tn,
            fn_,
            invalid_pos: 0,
            invalid_neg: 0,
        }
    }

    #[test]
    fn perfect_prediction_scores_ceiling_on_all_metrics() {
        let cm = matrix(50, 0, 50, 0);
        assert!((cm.accuracy() - 1.0).abs() < 1e-12);
        assert!((cm.macro_f1() - 1.0).abs() < 1e-12);
        assert!((cm.mcc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_prediction_has_mcc_minus_one() {
        let cm = matrix(0, 50, 0, 50);
        assert!((cm.mcc() + 1.0).abs() < 1e-12);
        assert_eq!(cm.accuracy(), 0.0);
    }

    #[test]
    fn random_balanced_prediction_has_mcc_zero() {
        let cm = matrix(25, 25, 25, 25);
        assert!(cm.mcc().abs() < 1e-12);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        assert!((cm.macro_f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn always_one_class_has_mcc_zero() {
        // The RQ4 collapse mode: model always answers the same class.
        let cm = matrix(50, 50, 0, 0);
        assert_eq!(cm.mcc(), 0.0);
        assert!((cm.accuracy() - 0.5).abs() < 1e-12);
        // Macro F1 is pulled below 0.5: one class has F1 2/3, the other 0.
        assert!((cm.macro_f1() - (2.0 / 3.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn known_sklearn_example_matches() {
        // sklearn: y_true=[1,1,1,0], y_pred=[1,0,1,0]
        // tp=2 fn=1 tn=1 fp=0 -> acc .75, f1_pos .8, f1_neg 2/3, mcc ~0.577
        let cm = matrix(2, 0, 1, 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.f1_positive() - 0.8).abs() < 1e-12);
        assert!((cm.f1_negative() - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.mcc() - 0.5773502691896258).abs() < 1e-9);
    }

    #[test]
    fn invalid_answers_penalize_accuracy_and_f1() {
        let mut cm = matrix(10, 0, 10, 0);
        let acc_before = cm.accuracy();
        cm.record_invalid(true);
        cm.record_invalid(false);
        assert!(cm.accuracy() < acc_before);
        assert_eq!(cm.total(), 22);
        assert!(cm.macro_f1() < 1.0);
        assert!(cm.mcc() < 1.0);
    }

    #[test]
    fn record_opt_routes_to_invalid() {
        let mut cm = ConfusionMatrix::new();
        cm.record_opt(true, Some(true));
        cm.record_opt(false, None);
        assert_eq!(cm.tp, 1);
        assert_eq!(cm.invalid_neg, 1);
    }

    #[test]
    fn merge_sums_all_cells() {
        let mut a = matrix(1, 2, 3, 4);
        let b = matrix(10, 20, 30, 40);
        a.merge(&b);
        assert_eq!(a, matrix(11, 22, 33, 44));
    }

    #[test]
    fn empty_matrix_is_all_zeros() {
        let cm = ConfusionMatrix::new();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.macro_f1(), 0.0);
        assert_eq!(cm.mcc(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    fn opt_accessors_distinguish_empty_from_zero_score() {
        let empty = ConfusionMatrix::new();
        assert_eq!(empty.accuracy_opt(), None);
        assert_eq!(empty.bundle_opt(), None);
        // A genuinely zero accuracy still reports as a value...
        let all_wrong = matrix(0, 5, 0, 5);
        assert_eq!(all_wrong.accuracy_opt(), Some(0.0));
        assert_eq!(all_wrong.bundle_opt(), Some(all_wrong.bundle()));
        // ...and so does a matrix holding only invalid answers.
        let mut only_invalid = ConfusionMatrix::new();
        only_invalid.record_invalid(true);
        assert_eq!(only_invalid.accuracy_opt(), Some(0.0));
    }

    #[test]
    fn bundle_scales_by_100() {
        let cm = matrix(25, 25, 25, 25);
        let b = cm.bundle();
        assert!((b.accuracy - 50.0).abs() < 1e-9);
        assert!((b.macro_f1 - 50.0).abs() < 1e-9);
        assert!(b.mcc.abs() < 1e-9);
        assert_eq!(b.n, 100);
    }

    #[test]
    fn metrics_are_label_flip_invariant() {
        // Swapping the arbitrary true/false assignment must not change
        // accuracy, macro-F1, or |MCC| — this is why the paper picked them.
        let cm = matrix(30, 10, 40, 20);
        let flipped = matrix(40, 20, 30, 10);
        assert!((cm.accuracy() - flipped.accuracy()).abs() < 1e-12);
        assert!((cm.macro_f1() - flipped.macro_f1()).abs() < 1e-12);
        assert!((cm.mcc() - flipped.mcc()).abs() < 1e-12);
    }
}
