//! McNemar's test for comparing two classifiers evaluated on the *same*
//! samples (paired design) — used by the harness to test whether, e.g., the
//! RQ3 few-shot run differs significantly from the RQ2 zero-shot run for a
//! given model, backing the paper's "not much of a difference" claims.

use serde::{Deserialize, Serialize};

use crate::chi2::chi2_sf;

/// Result of McNemar's test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McNemarResult {
    /// Samples classifier A got right and B got wrong.
    pub a_only: u64,
    /// Samples classifier B got right and A got wrong.
    pub b_only: u64,
    /// Continuity-corrected chi-squared statistic (1 dof).
    pub statistic: f64,
    /// Right-tail p-value.
    pub p_value: f64,
}

impl McNemarResult {
    /// Whether the paired difference is significant at `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Run McNemar's test (with Edwards' continuity correction) over paired
/// correctness indicators.
///
/// `a_correct[i]` / `b_correct[i]` state whether each classifier answered
/// sample `i` correctly.
///
/// # Panics
/// Panics when the slices have different lengths — that would mean the
/// design is not actually paired.
pub fn mcnemar_test(a_correct: &[bool], b_correct: &[bool]) -> McNemarResult {
    assert_eq!(
        a_correct.len(),
        b_correct.len(),
        "paired test requires equal-length outcome vectors"
    );
    let mut a_only = 0u64;
    let mut b_only = 0u64;
    for (&a, &b) in a_correct.iter().zip(b_correct) {
        match (a, b) {
            (true, false) => a_only += 1,
            (false, true) => b_only += 1,
            _ => {}
        }
    }
    let n = a_only + b_only;
    let (statistic, p_value) = if n == 0 {
        // Identical discordance pattern: no evidence of difference.
        (0.0, 1.0)
    } else {
        let diff = (a_only as f64 - b_only as f64).abs() - 1.0;
        let stat = (diff.max(0.0)).powi(2) / n as f64;
        (stat, chi2_sf(stat, 1))
    };
    McNemarResult {
        a_only,
        b_only,
        statistic,
        p_value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifiers_are_not_different() {
        let a = vec![true, false, true, true];
        let r = mcnemar_test(&a, &a);
        assert_eq!(r.a_only, 0);
        assert_eq!(r.b_only, 0);
        assert_eq!(r.p_value, 1.0);
    }

    #[test]
    fn symmetric_disagreement_is_not_significant() {
        let a = vec![true, false, true, false];
        let b = vec![false, true, false, true];
        let r = mcnemar_test(&a, &b);
        assert_eq!(r.a_only, 2);
        assert_eq!(r.b_only, 2);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn strong_one_sided_disagreement_is_significant() {
        // A right/B wrong on 30 samples, the reverse on 2.
        let mut a = vec![true; 32];
        let mut b = vec![false; 32];
        for item in b.iter_mut().take(2) {
            *item = true;
        }
        for item in a.iter_mut().take(2) {
            *item = false;
        }
        let r = mcnemar_test(&a, &b);
        assert_eq!(r.a_only, 30);
        assert_eq!(r.b_only, 2);
        assert!(r.significant_at(0.001));
    }

    #[test]
    fn known_textbook_example() {
        // Classic 10 vs 25 discordant pairs:
        // stat = (|10-25|-1)^2/35 = 196/35 = 5.6, p ~ 0.0180
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..10 {
            a.push(true);
            b.push(false);
        }
        for _ in 0..25 {
            a.push(false);
            b.push(true);
        }
        let r = mcnemar_test(&a, &b);
        assert!((r.statistic - 5.6).abs() < 1e-12);
        assert!((r.p_value - 0.0179712).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn unequal_lengths_panic() {
        mcnemar_test(&[true], &[true, false]);
    }
}
