//! # pce-metrics
//!
//! Evaluation metrics for the binary roofline-classification task, exactly
//! as defined in §3.1 of the paper:
//!
//! * **accuracy** — fraction of correct predictions,
//! * **macro F1** — unweighted mean of per-class F1 scores (chosen because
//!   it does not require designating a "positive" class),
//! * **MCC** — Matthews Correlation Coefficient in `[-1, +1]`,
//!
//! all scaled ×100 for readability, as in Table 1.
//!
//! Also provided: the chi-squared test of independence the paper uses to
//! show temperature/top_p insensitivity (§3.2), McNemar's test for paired
//! classifier comparison, and seeded bootstrap confidence intervals.
//!
//! ```
//! use pce_metrics::ConfusionMatrix;
//!
//! let mut cm = ConfusionMatrix::new();
//! for (truth, pred) in [(true, true), (true, false), (false, false), (false, false)] {
//!     cm.record(truth, pred);
//! }
//! assert_eq!(cm.total(), 4);
//! assert!((cm.accuracy() - 0.75).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]

pub mod bootstrap;
pub mod chi2;
pub mod confusion;
pub mod mcnemar;

pub use bootstrap::{bootstrap_ci, BootstrapInterval};
pub use chi2::{chi_squared_independence, Chi2Result};
pub use confusion::{ConfusionMatrix, MetricBundle};
pub use mcnemar::{mcnemar_test, McNemarResult};
