//! Pearson's chi-squared test of independence on r×c contingency tables,
//! with p-values computed through the regularised upper incomplete gamma
//! function (no external stats dependency).
//!
//! The paper uses this test to show that temperature/top_p changes have no
//! statistically significant effect on predicted outcomes (§3.2).

use pce_fault::PceError;
use serde::{Deserialize, Serialize};

/// Result of a chi-squared independence test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chi2Result {
    /// The chi-squared statistic.
    pub statistic: f64,
    /// Degrees of freedom `(r-1)(c-1)`.
    pub dof: u32,
    /// Right-tail p-value.
    pub p_value: f64,
}

impl Chi2Result {
    /// Whether the null hypothesis of independence is rejected at `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-squared test of independence.
///
/// `table[r][c]` holds observed counts. Rows/columns that sum to zero are
/// dropped (they carry no information and would divide by zero).
///
/// # Errors
/// Returns a [`PceError::Spec`] when fewer than two informative rows or
/// columns remain — a degenerate table is a study-design problem, not a
/// data condition worth panicking over.
pub fn chi_squared_independence(table: &[Vec<u64>]) -> Result<Chi2Result, PceError> {
    if table.is_empty() {
        return Err(PceError::spec("empty contingency table"));
    }
    let ncols = table[0].len();
    if table.iter().any(|row| row.len() != ncols) {
        return Err(PceError::spec("ragged contingency table"));
    }

    let row_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_sums: Vec<u64> = (0..ncols)
        .map(|c| table.iter().map(|r| r[c]).sum())
        .collect();
    let grand: u64 = row_sums.iter().sum();
    if grand == 0 {
        return Err(PceError::spec("all-zero contingency table"));
    }

    let live_rows: Vec<usize> = (0..table.len()).filter(|&r| row_sums[r] > 0).collect();
    let live_cols: Vec<usize> = (0..ncols).filter(|&c| col_sums[c] > 0).collect();
    if live_rows.len() < 2 || live_cols.len() < 2 {
        return Err(PceError::spec(
            "need at least a 2x2 contingency table with nonzero marginals",
        ));
    }

    let grand_f = grand as f64;
    let mut stat = 0.0;
    for &r in &live_rows {
        for &c in &live_cols {
            let expected = row_sums[r] as f64 * col_sums[c] as f64 / grand_f;
            let observed = table[r][c] as f64;
            stat += (observed - expected).powi(2) / expected;
        }
    }
    let dof = ((live_rows.len() - 1) * (live_cols.len() - 1)) as u32;
    let p_value = chi2_sf(stat, dof);
    Ok(Chi2Result {
        statistic: stat,
        dof,
        p_value,
    })
}

/// Survival function of the chi-squared distribution:
/// `P(X >= x)` with `k` degrees of freedom, i.e. `Q(k/2, x/2)` where `Q` is
/// the regularised upper incomplete gamma function.
pub fn chi2_sf(x: f64, k: u32) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    regularized_gamma_q(k as f64 / 2.0, x / 2.0)
}

/// Regularised upper incomplete gamma function `Q(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// otherwise — the classic Numerical-Recipes split, accurate to ~1e-12 over
/// the ranges a statistics test ever sees.
pub fn regularized_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "invalid gamma arguments a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_continued_fraction(a, x)
    }
}

/// Lower regularised gamma `P(a, x)` via its power series.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Upper regularised gamma `Q(a, x)` via Lentz's continued fraction.
fn gamma_q_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Natural log of the gamma function (Lanczos approximation, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires positive argument, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    let x = x - 1.0;
    let mut sum = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        sum += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + sum.ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // ln Γ(n) = ln (n-1)!
        let cases = [
            (1.0, 0.0),
            (2.0, 0.0),
            (5.0, 24f64.ln()),
            (10.0, 362880f64.ln()),
        ];
        for (x, expected) in cases {
            assert!(
                (ln_gamma(x) - expected).abs() < 1e-10,
                "ln_gamma({x}) = {} != {expected}",
                ln_gamma(x)
            );
        }
    }

    #[test]
    fn ln_gamma_half_is_log_sqrt_pi() {
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn chi2_sf_matches_known_critical_values() {
        // Critical values from standard chi-squared tables.
        // P(X >= 3.841) with 1 dof = 0.05
        assert!((chi2_sf(3.841458820694124, 1) - 0.05).abs() < 1e-6);
        // P(X >= 5.991) with 2 dof = 0.05
        assert!((chi2_sf(5.991464547107979, 2) - 0.05).abs() < 1e-6);
        // P(X >= 6.635) with 1 dof = 0.01
        assert!((chi2_sf(6.6348966010212145, 1) - 0.01).abs() < 1e-6);
        // sf at 0 is 1
        assert_eq!(chi2_sf(0.0, 3), 1.0);
    }

    #[test]
    fn independence_test_on_independent_table_is_not_significant() {
        // Perfectly proportional rows: statistic exactly 0.
        let table = vec![vec![20, 30], vec![40, 60]];
        let r = chi_squared_independence(&table).unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert_eq!(r.dof, 1);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert!(!r.significant_at(0.05));
    }

    #[test]
    fn independence_test_on_dependent_table_is_significant() {
        let table = vec![vec![50, 5], vec![5, 50]];
        let r = chi_squared_independence(&table).unwrap();
        assert!(r.statistic > 50.0);
        assert!(r.p_value < 1e-9);
        assert!(r.significant_at(0.01));
    }

    #[test]
    fn known_2x2_example_matches_scipy() {
        // scipy.stats.chi2_contingency([[10,20],[30,40]], correction=False)
        // -> statistic 0.7936..., p 0.37299848361348714
        let table = vec![vec![10, 20], vec![30, 40]];
        let r = chi_squared_independence(&table).unwrap();
        assert!((r.statistic - 0.7936507936507936).abs() < 1e-9);
        assert!((r.p_value - 0.37299848361348714).abs() < 1e-6);
    }

    #[test]
    fn zero_rows_and_columns_are_dropped() {
        let table = vec![vec![10, 0, 20], vec![0, 0, 0], vec![30, 0, 40]];
        let r = chi_squared_independence(&table).unwrap();
        assert_eq!(r.dof, 1); // collapses to 2x2
    }

    #[test]
    fn degenerate_tables_error() {
        assert!(chi_squared_independence(&[]).is_err());
        assert!(chi_squared_independence(&[vec![1, 2]]).is_err());
        assert!(chi_squared_independence(&[vec![0, 0], vec![0, 0]]).is_err());
        assert!(chi_squared_independence(&[vec![1], vec![2]]).is_err());
        assert!(chi_squared_independence(&[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn degenerate_tables_name_the_problem() {
        let cases: [(&[Vec<u64>], &str); 4] = [
            (&[], "invalid spec: empty contingency table"),
            (
                &[vec![1, 2], vec![3]],
                "invalid spec: ragged contingency table",
            ),
            (
                &[vec![0, 0], vec![0, 0]],
                "invalid spec: all-zero contingency table",
            ),
            (
                &[vec![1, 2]],
                "invalid spec: need at least a 2x2 contingency table with nonzero marginals",
            ),
        ];
        for (table, message) in cases {
            let err = chi_squared_independence(table).unwrap_err();
            assert_eq!(err.to_string(), message);
            assert_eq!(err.kind(), "spec");
            assert!(!err.retryable(), "a bad table never fixes itself");
        }
    }
}
