//! Rendering: markdown tables and CSV series for every regenerated
//! artifact.

use std::fmt::Write as _;

use pce_dataset::PipelineReport;
use pce_roofline::OpClass;

use crate::experiments::{HyperparamCheck, Rq4Outcome};
use crate::figures::{Fig1, Fig2};
use crate::suite::SuiteOutcome;
use crate::table1::Table1;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "–".to_string(),
    }
}

/// Render Table 1 as markdown, column-for-column like the paper.
pub fn render_table1(table: &Table1) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(
        "| Model Name | Reasoning | Cost (1M tokens) | RQ1 Acc. | RQ1 CoT Acc. | RQ2 Acc. | RQ2 F1 | RQ2 MCC | RQ3 Acc. | RQ3 F1 | RQ3 MCC |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in &table.rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.model,
            if r.reasoning { "✓" } else { "" },
            r.cost,
            fmt_opt(r.rq1_acc),
            fmt_opt(r.rq1_cot_acc),
            r.rq2.accuracy,
            r.rq2.macro_f1,
            r.rq2.mcc,
            r.rq3.accuracy,
            r.rq3.macro_f1,
            r.rq3.mcc,
        );
    }
    let _ = writeln!(out, "\nTotal simulated API spend: ${:.2}", table.total_cost);
    let acc = table.accounting();
    if acc.faulted() {
        out.push_str("\n### Response accounting\n\n");
        out.push_str(
            "| Model | Valid | Retried→valid | Invalid | Refused | Injected | Retries | Backoff (ms) |\n",
        );
        out.push_str("|---|---|---|---|---|---|---|---|\n");
        for r in &table.rows {
            let a = &r.accounting;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {} | {} |",
                r.model,
                a.valid,
                a.retried_valid,
                a.invalid,
                a.refused,
                a.injected,
                a.retries,
                a.backoff_ms,
            );
        }
        let _ = writeln!(
            out,
            "\nLedger: {} injected = {} recovered + {} invalid + {} refused ({}).",
            acc.injected,
            acc.retried_valid,
            acc.invalid,
            acc.refused,
            if acc.balanced() {
                "balanced"
            } else {
                "UNBALANCED"
            },
        );
    }
    out
}

/// Render the cross-hardware suite as markdown: the hardware catalog, a
/// per-cell summary, the language-split label-flip analysis, and one
/// Table-1 section per (GPU, CPU) cell.
pub fn render_suite(outcome: &SuiteOutcome) -> String {
    let completed = outcome.completed();
    let mut out = String::with_capacity(8192);
    let _ = writeln!(
        out,
        "# Cross-hardware suite — {} cells × {} models\n",
        outcome.cells.len(),
        completed.first().map_or(0, |s| s.table.rows.len()),
    );

    // Distinct specs on either axis, with their class and ridge points.
    // Failed cells keep their catalog entries so the matrix stays legible.
    out.push_str("| Hardware | Class | SP ridge | DP ridge | INT ridge |\n");
    out.push_str("|---|---|---|---|---|\n");
    let mut seen = std::collections::BTreeSet::new();
    for c in &outcome.cells {
        let (gpu, cpu) = c.specs();
        for hw in [gpu, cpu] {
            if seen.insert(hw.name.clone()) {
                let _ = writeln!(
                    out,
                    "| {} | {} | {:.2} | {:.2} | {:.2} |",
                    hw.name,
                    hw.class,
                    hw.ridge_point(OpClass::Sp),
                    hw.ridge_point(OpClass::Dp),
                    hw.ridge_point(OpClass::Int),
                );
            }
        }
    }

    out.push_str(
        "\n| GPU | CPU | Dataset | Best RQ2 model | Best RQ2 acc. | Spend |\n|---|---|---|---|---|---|\n",
    );
    for s in &completed {
        // Deterministic argmax: strictly-greater keeps the first (highest
        // RQ1-sorted) row on ties.
        let best = s
            .table
            .rows
            .iter()
            .fold(None::<&crate::table1::Table1Row>, |acc, r| match acc {
                Some(b) if b.rq2.accuracy >= r.rq2.accuracy => Some(b),
                _ => Some(r),
            })
            .expect("table has rows");
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.2} | ${:.2} |",
            s.spec.name,
            s.cpu_spec.name,
            s.funnel.final_size,
            best.model,
            best.rq2.accuracy,
            s.table.total_cost,
        );
    }

    let failures = outcome.failures();
    if !failures.is_empty() {
        out.push_str("\n## Failed cells\n\n");
        let _ = writeln!(
            out,
            "{} of {} cells failed; their results are omitted below.\n",
            failures.len(),
            outcome.cells.len(),
        );
        for (label, error) in &failures {
            let _ = writeln!(out, "- {label}: {error}");
        }
    }

    let flips = &outcome.flips;
    out.push_str("\n## Label-flip analysis\n\n");
    let total = flips.total_kernels();
    let _ = writeln!(
        out,
        "{} of {} corpus kernels ({:.1}%) change ground-truth boundedness \
         along their language's hardware axis.",
        flips.flipping,
        total,
        if total == 0 {
            0.0
        } else {
            100.0 * flips.flipping as f64 / total as f64
        },
    );
    for section in &flips.by_language {
        let _ = writeln!(
            out,
            "\n### {} kernels × {} specs\n",
            section.language, section.axis_class
        );
        let _ = writeln!(
            out,
            "{} of {} {} kernels flip across the {} axis.\n",
            section.flipping,
            section.kernels.len(),
            section.language,
            section.axis_class,
        );
        if let Some(reference) = section.spec_names.first() {
            let _ = writeln!(out, "Labels flipped vs the reference ({reference}):\n");
            for (name, n) in section.spec_names.iter().zip(&section.flips_vs_reference) {
                let _ = writeln!(out, "- {name}: {n}");
            }
            out.push('\n');
        }
        let _ = writeln!(
            out,
            "Pooled zero-shot accuracy — flipping kernels: {}, stable kernels: {}.",
            fmt_opt(section.accuracy_on_flipping),
            fmt_opt(section.accuracy_on_stable),
        );
    }

    for s in &completed {
        let _ = writeln!(out, "\n## Table 1 — {}\n", s.pair_label());
        out.push_str(&render_table1(&s.table));
    }
    out
}

/// Render the suite's ((GPU, CPU) × model) metric cells as CSV.
pub fn render_suite_csv(outcome: &SuiteOutcome) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str(
        "hardware,cpu_hardware,model,reasoning,rq1_acc,rq1_cot_acc,rq2_acc,rq2_f1,rq2_mcc,rq3_acc,rq3_f1,rq3_mcc\n",
    );
    let csv_opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.2}"));
    for s in outcome.completed() {
        for r in &s.table.rows {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2}",
                s.spec.name,
                s.cpu_spec.name,
                r.model,
                r.reasoning,
                csv_opt(r.rq1_acc),
                csv_opt(r.rq1_cot_acc),
                r.rq2.accuracy,
                r.rq2.macro_f1,
                r.rq2.mcc,
                r.rq3.accuracy,
                r.rq3.macro_f1,
                r.rq3.mcc,
            );
        }
    }
    out
}

/// Render the suite's per-(cell, model) response ledger as CSV, one row
/// per model per completed cell, using the workspace-shared
/// [`pce_fault::ACCOUNTING_CSV_COLUMNS`] schema — the same columns the
/// serve bin reports its per-model ledger with, serving counters
/// included (all-zero for the suite, which never queues jobs).
pub fn render_accounting_csv(outcome: &SuiteOutcome) -> String {
    let mut out = String::with_capacity(2048);
    let _ = writeln!(
        out,
        "hardware,cpu_hardware,model,{}",
        pce_fault::ACCOUNTING_CSV_COLUMNS
    );
    for s in outcome.completed() {
        for r in &s.table.rows {
            let _ = writeln!(
                out,
                "{},{},{},{}",
                s.spec.name,
                s.cpu_spec.name,
                r.model,
                r.accounting.csv_row(),
            );
        }
    }
    out
}

/// Render the per-kernel label matrix as CSV: one section per language
/// (`# language=CUDA axis=GPU`, `# language=OMP axis=CPU`), each with one
/// column per spec of that language's axis plus a `flips` marker.
pub fn render_flips_csv(outcome: &SuiteOutcome) -> String {
    let flips = &outcome.flips;
    let mut out = String::with_capacity(64 * (flips.total_kernels() + 2));
    for section in &flips.by_language {
        let _ = writeln!(
            out,
            "# language={} axis={}",
            section.language, section.axis_class
        );
        out.push_str("kernel,family,language");
        for name in &section.spec_names {
            let _ = write!(out, ",{name}");
        }
        out.push_str(",flips\n");
        for k in &section.kernels {
            let _ = write!(out, "{},{},{}", k.id, k.family, section.language);
            for label in &k.labels {
                let _ = write!(out, ",{}", label.short());
            }
            let _ = writeln!(out, ",{}", k.flips());
        }
    }
    out
}

/// Render the §2.2 dataset funnel.
pub fn render_funnel(report: &PipelineReport) -> String {
    let mut out = String::new();
    out.push_str("Dataset funnel (paper §2.1–2.2):\n");
    for (lang, n) in &report.built {
        let _ = writeln!(out, "  built {lang:5} programs: {n}");
    }
    for (lang, n) in &report.after_prune {
        let _ = writeln!(out, "  after 8e3-token pruning {lang:5}: {n}");
    }
    for (combo, n) in &report.combo_before_balance {
        let _ = writeln!(out, "  pre-balance cell {combo:8}: {n}");
    }
    let _ = writeln!(out, "  balanced per-cell size: {}", report.per_combo);
    let _ = writeln!(out, "  final dataset: {}", report.final_size);
    let _ = writeln!(
        out,
        "  train/validation: {}/{}",
        report.train_size, report.validation_size
    );
    let _ = writeln!(
        out,
        "  profile dedup: {} unique / {} duplicate ({:.1}% hit rate)",
        report.dedup.unique,
        report.dedup.duplicates,
        report.dedup.hit_rate() * 100.0
    );
    out
}

/// Render Figure 1 as CSV (series per roofline + per-class scatter).
pub fn render_fig1_csv(fig: &Fig1) -> String {
    fig.plot.to_csv()
}

/// Render Figure 1 headline statistics.
pub fn render_fig1_summary(fig: &Fig1) -> String {
    format!(
        "Figure 1 ({}): BB fractions — SP {:.1}%, DP {:.1}%, INT {:.1}%; {} scatter points\n",
        fig.plot.hardware,
        fig.sp_bb_fraction * 100.0,
        fig.dp_bb_fraction * 100.0,
        fig.int_bb_fraction * 100.0,
        fig.plot.scatter.len()
    )
}

/// Render Figure 2 as a markdown table of box-plot statistics.
pub fn render_fig2(fig: &Fig2) -> String {
    let mut out = String::new();
    out.push_str("| Split | Lang | Class | n | min | Q1 | median | Q3 | max | mean |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for r in &fig.rows {
        let s = &r.stats;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |",
            r.split, r.language, r.class, s.n, s.min, s.q1, s.median, s.q3, s.max, s.mean
        );
    }
    out
}

/// Render the RQ4 outcome.
pub fn render_rq4(out4: &Rq4Outcome) -> String {
    format!(
        "RQ4 fine-tuning on {} train / {} validation samples:\n\
         \x20 epoch train accuracy: {:?}\n\
         \x20 validation: acc {:.2}, macro-F1 {:.2}, MCC {:.2}\n\
         \x20 prediction concentration: {:.1}% (collapsed to '{}')\n",
        out4.train_size,
        out4.validation_size,
        out4.epoch_train_accuracy,
        out4.metrics.accuracy,
        out4.metrics.macro_f1,
        out4.metrics.mcc,
        out4.prediction_concentration * 100.0,
        out4.collapsed_to
    )
}

/// Render the hyperparameter chi-squared check.
pub fn render_hyperparams(check: &HyperparamCheck) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sampling-hyperparameter check for {}:", check.model);
    for (s, row) in check.settings.iter().zip(&check.table) {
        let _ = writeln!(
            out,
            "  temp {:.1} top_p {:.2}: Compute {} / Bandwidth {}",
            s.temperature, s.top_p, row[0], row[1]
        );
    }
    let _ = writeln!(
        out,
        "  chi2 = {:.4}, dof = {}, p = {:.4} -> {}",
        check.chi2.statistic,
        check.chi2.dof,
        check.chi2.p_value,
        if check.chi2.significant_at(0.05) {
            "SIGNIFICANT (unexpected)"
        } else {
            "not significant (matches §3.2)"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{build_fig1, build_fig2};
    use crate::study::{Study, StudyData};

    #[test]
    fn funnel_report_renders_all_stages() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let text = render_funnel(&data.report);
        for needle in ["built", "pruning", "balanced per-cell", "train/validation"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn suite_renderers_cover_every_spec_and_kernel() {
        let suite = crate::suite::Suite::smoke_with_specs(vec![
            pce_roofline::HardwareSpec::rtx_3080(),
            pce_roofline::HardwareSpec::a100(),
        ]);
        let outcome = crate::suite::run_suite(&suite).unwrap();

        let md = render_suite(&outcome);
        for s in outcome.completed() {
            assert!(
                md.contains(&format!("## Table 1 — {}", s.pair_label())),
                "missing per-cell table for {}",
                s.pair_label()
            );
        }
        assert!(md.contains("## Label-flip analysis"));
        assert!(md.contains("### CUDA kernels × GPU specs"));
        assert!(md.contains("### OMP kernels × CPU specs"));
        assert!(md.contains("Pooled zero-shot accuracy"));
        // Fault-free runs carry no accounting or failure sections.
        assert!(!md.contains("### Response accounting"));
        assert!(!md.contains("## Failed cells"));

        let csv = render_suite_csv(&outcome);
        assert!(csv.starts_with("hardware,cpu_hardware,model,reasoning"));
        // Header + (cells × 9 models) rows.
        assert_eq!(csv.lines().count(), 1 + outcome.completed().len() * 9);

        let acc_csv = render_accounting_csv(&outcome);
        assert!(acc_csv.starts_with("hardware,cpu_hardware,model,valid"));
        assert_eq!(acc_csv.lines().count(), 1 + outcome.completed().len() * 9);

        let flips = render_flips_csv(&outcome);
        assert!(flips.contains("# language=CUDA axis=GPU"));
        assert!(flips.contains("# language=OMP axis=CPU"));
        // Two section markers + two headers + one row per corpus kernel.
        assert_eq!(flips.lines().count(), 4 + outcome.flips.total_kernels());
        // Every data row carries one label column per axis spec.
        for section in &outcome.flips.by_language {
            let cols = 4 + section.spec_names.len();
            let header = format!("# language={}", section.language);
            let at = flips.find(&header).unwrap();
            for line in flips[at..].lines().skip(2).take(3) {
                assert_eq!(line.split(',').count(), cols, "{line}");
            }
        }
    }

    #[test]
    fn fig_renderers_produce_parseable_output() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let fig1 = build_fig1(&study, &data.corpus, true);
        let csv = render_fig1_csv(&fig1);
        assert!(csv.starts_with("series,id,ai,gops,verdict"));
        assert!(render_fig1_summary(&fig1).contains("BB fractions"));

        let fig2 = build_fig2(&data.split);
        let md = render_fig2(&fig2);
        assert_eq!(md.lines().count(), 2 + fig2.rows.len());
    }
}
