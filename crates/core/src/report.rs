//! Rendering: markdown tables and CSV series for every regenerated
//! artifact.

use std::fmt::Write as _;

use pce_dataset::PipelineReport;

use crate::experiments::{HyperparamCheck, Rq4Outcome};
use crate::figures::{Fig1, Fig2};
use crate::table1::Table1;

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.2}"),
        None => "–".to_string(),
    }
}

/// Render Table 1 as markdown, column-for-column like the paper.
pub fn render_table1(table: &Table1) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(
        "| Model Name | Reasoning | Cost (1M tokens) | RQ1 Acc. | RQ1 CoT Acc. | RQ2 Acc. | RQ2 F1 | RQ2 MCC | RQ3 Acc. | RQ3 F1 | RQ3 MCC |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in &table.rows {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} |",
            r.model,
            if r.reasoning { "✓" } else { "" },
            r.cost,
            fmt_opt(r.rq1_acc),
            fmt_opt(r.rq1_cot_acc),
            r.rq2.accuracy,
            r.rq2.macro_f1,
            r.rq2.mcc,
            r.rq3.accuracy,
            r.rq3.macro_f1,
            r.rq3.mcc,
        );
    }
    let _ = writeln!(out, "\nTotal simulated API spend: ${:.2}", table.total_cost);
    out
}

/// Render the §2.2 dataset funnel.
pub fn render_funnel(report: &PipelineReport) -> String {
    let mut out = String::new();
    out.push_str("Dataset funnel (paper §2.1–2.2):\n");
    for (lang, n) in &report.built {
        let _ = writeln!(out, "  built {lang:5} programs: {n}");
    }
    for (lang, n) in &report.after_prune {
        let _ = writeln!(out, "  after 8e3-token pruning {lang:5}: {n}");
    }
    for (combo, n) in &report.combo_before_balance {
        let _ = writeln!(out, "  pre-balance cell {combo:8}: {n}");
    }
    let _ = writeln!(out, "  balanced per-cell size: {}", report.per_combo);
    let _ = writeln!(out, "  final dataset: {}", report.final_size);
    let _ = writeln!(
        out,
        "  train/validation: {}/{}",
        report.train_size, report.validation_size
    );
    out
}

/// Render Figure 1 as CSV (series per roofline + per-class scatter).
pub fn render_fig1_csv(fig: &Fig1) -> String {
    fig.plot.to_csv()
}

/// Render Figure 1 headline statistics.
pub fn render_fig1_summary(fig: &Fig1) -> String {
    format!(
        "Figure 1 ({}): BB fractions — SP {:.1}%, DP {:.1}%, INT {:.1}%; {} scatter points\n",
        fig.plot.hardware,
        fig.sp_bb_fraction * 100.0,
        fig.dp_bb_fraction * 100.0,
        fig.int_bb_fraction * 100.0,
        fig.plot.scatter.len()
    )
}

/// Render Figure 2 as a markdown table of box-plot statistics.
pub fn render_fig2(fig: &Fig2) -> String {
    let mut out = String::new();
    out.push_str("| Split | Lang | Class | n | min | Q1 | median | Q3 | max | mean |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for r in &fig.rows {
        let s = &r.stats;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} | {:.0} |",
            r.split, r.language, r.class, s.n, s.min, s.q1, s.median, s.q3, s.max, s.mean
        );
    }
    out
}

/// Render the RQ4 outcome.
pub fn render_rq4(out4: &Rq4Outcome) -> String {
    format!(
        "RQ4 fine-tuning on {} train / {} validation samples:\n\
         \x20 epoch train accuracy: {:?}\n\
         \x20 validation: acc {:.2}, macro-F1 {:.2}, MCC {:.2}\n\
         \x20 prediction concentration: {:.1}% (collapsed to '{}')\n",
        out4.train_size,
        out4.validation_size,
        out4.epoch_train_accuracy,
        out4.metrics.accuracy,
        out4.metrics.macro_f1,
        out4.metrics.mcc,
        out4.prediction_concentration * 100.0,
        out4.collapsed_to
    )
}

/// Render the hyperparameter chi-squared check.
pub fn render_hyperparams(check: &HyperparamCheck) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Sampling-hyperparameter check for {}:", check.model);
    for (s, row) in check.settings.iter().zip(&check.table) {
        let _ = writeln!(
            out,
            "  temp {:.1} top_p {:.2}: Compute {} / Bandwidth {}",
            s.temperature, s.top_p, row[0], row[1]
        );
    }
    let _ = writeln!(
        out,
        "  chi2 = {:.4}, dof = {}, p = {:.4} -> {}",
        check.chi2.statistic,
        check.chi2.dof,
        check.chi2.p_value,
        if check.chi2.significant_at(0.05) {
            "SIGNIFICANT (unexpected)"
        } else {
            "not significant (matches §3.2)"
        }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::{build_fig1, build_fig2};
    use crate::study::{Study, StudyData};

    #[test]
    fn funnel_report_renders_all_stages() {
        let study = Study::smoke();
        let data = StudyData::build(&study);
        let text = render_funnel(&data.report);
        for needle in ["built", "pruning", "balanced per-cell", "train/validation"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn fig_renderers_produce_parseable_output() {
        let study = Study::smoke();
        let data = StudyData::build(&study);
        let fig1 = build_fig1(&study, &data.corpus, true);
        let csv = render_fig1_csv(&fig1);
        assert!(csv.starts_with("series,id,ai,gops,verdict"));
        assert!(render_fig1_summary(&fig1).contains("BB fractions"));

        let fig2 = build_fig2(&data.split);
        let md = render_fig2(&fig2);
        assert_eq!(md.lines().count(), 2 + fig2.rows.len());
    }
}
