//! The suite's cross-layer cache bundle.
//!
//! One [`SuiteCaches`] threads every memoization layer through the whole
//! experiment matrix:
//!
//! * the simulator's body-summary and profile memos
//!   ([`pce_gpu_sim::SimCaches`]) — shared by every hardware spec's
//!   pipeline pass and across repeated suite runs,
//! * the surrogate engine's analysis and prompt-parse caches
//!   ([`pce_llm::LlmCaches`]) — shared by every (spec, model, shot-style)
//!   cell,
//! * a prompt-render counter — [`crate::table1`] renders each
//!   (sample, shot-style) prompt once and shares it across the 9-model
//!   zoo, and the counter lets the bench harness report how many renders
//!   actually happened.
//!
//! `Clone` is shallow (clones share storage), and every cached function
//! is pure, so warm and cold bundles produce byte-identical artifacts —
//! the golden tests in `tests/cache_golden.rs` hold the suite to that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use pce_gpu_sim::{SimBudget, SimCaches};
use pce_llm::{LlmBudget, LlmCaches};
use pce_memo::CacheCounters;

/// Byte budgets for every memo layer a suite (or service) threads its
/// caches through. The default is fully unbounded — one-shot batch runs
/// cannot leak; long-lived services should bound everything (see
/// [`CacheBudget::uniform`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheBudget {
    /// Simulator layers (body summaries, profiles).
    pub sim: SimBudget,
    /// Engine layers (static analyses, prompt parses).
    pub llm: LlmBudget,
}

impl CacheBudget {
    /// Bound every layer to the same per-cache capacity in bytes.
    pub fn uniform(bytes_per_cache: u64) -> CacheBudget {
        CacheBudget {
            sim: SimBudget::uniform(bytes_per_cache),
            llm: LlmBudget::uniform(bytes_per_cache),
        }
    }
}

/// The shared cache bundle one suite run (or several) threads through
/// every layer.
#[derive(Debug, Clone, Default)]
pub struct SuiteCaches {
    /// Profiler memos (body summaries + whole profiles).
    pub sim: SimCaches,
    /// Engine memos (static analyses + prompt parses).
    pub llm: LlmCaches,
    prompt_renders: Arc<AtomicU64>,
}

impl SuiteCaches {
    /// A fresh, empty, unbounded bundle.
    pub fn new() -> SuiteCaches {
        SuiteCaches::default()
    }

    /// A fresh bundle with every layer bounded per `budget`. Purity makes
    /// evictions unobservable in the rendered artifacts — bounded and
    /// unbounded runs stay byte-identical; only the eviction and
    /// resident-byte counters differ.
    pub fn with_budget(budget: CacheBudget) -> SuiteCaches {
        SuiteCaches {
            sim: SimCaches::with_budget(budget.sim),
            llm: LlmCaches::with_budget(budget.llm),
            prompt_renders: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record `n` classification-prompt renders (called by the Table-1
    /// assembly, once per (sample, shot-style) — not per model).
    pub fn count_prompt_renders(&self, n: u64) {
        self.prompt_renders.fetch_add(n, Ordering::Relaxed);
    }

    /// Total classification prompts rendered through this bundle.
    pub fn prompt_renders(&self) -> u64 {
        self.prompt_renders.load(Ordering::Relaxed)
    }

    /// Snapshot every layer's counters for the bench report.
    pub fn report(&self) -> CacheReport {
        CacheReport {
            summary: self.sim.summaries().counters(),
            profile: self.sim.profiles().counters(),
            analysis: self.llm.analysis_counters(),
            classify_parse: self.llm.classify_counters(),
            rq1_parse: self.llm.rq1_counters(),
            prompt_renders: self.prompt_renders(),
        }
    }
}

/// Per-cache hit/miss counters across the bundle, serialized into
/// `BENCH_suite.json` by the `suite` bin. Every layer reports through the
/// shared [`CacheCounters`] type from `pce-memo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Hardware-independent body-summary folds (gpu-sim).
    pub summary: CacheCounters,
    /// Whole-profile memo (gpu-sim).
    pub profile: CacheCounters,
    /// Static-analysis cache (llm).
    pub analysis: CacheCounters,
    /// Classification prompt-parse cache (llm).
    pub classify_parse: CacheCounters,
    /// RQ1 prompt-parse cache (llm).
    pub rq1_parse: CacheCounters,
    /// Classification prompts rendered (once per (sample, shot-style),
    /// shared across the model zoo).
    pub prompt_renders: u64,
}

impl CacheReport {
    /// Every per-layer counter, paired with its layer name.
    pub fn layers(&self) -> [(&'static str, CacheCounters); 5] {
        [
            ("summary", self.summary),
            ("profile", self.profile),
            ("analysis", self.analysis),
            ("classify_parse", self.classify_parse),
            ("rq1_parse", self.rq1_parse),
        ]
    }

    /// Total evictions across every layer.
    pub fn total_evictions(&self) -> u64 {
        self.layers().iter().map(|(_, c)| c.evictions).sum()
    }

    /// Total resident bytes across every layer (0 for unbounded bundles,
    /// which do no size accounting).
    pub fn total_resident_bytes(&self) -> u64 {
        self.layers().iter().map(|(_, c)| c.resident_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_render_counter() {
        let caches = SuiteCaches::new();
        let alias = caches.clone();
        caches.count_prompt_renders(3);
        alias.count_prompt_renders(4);
        assert_eq!(caches.prompt_renders(), 7);
        assert_eq!(alias.report().prompt_renders, 7);
    }

    #[test]
    fn report_serializes_with_named_caches() {
        let json =
            serde_json::to_string_pretty(&SuiteCaches::new().report()).expect("report serializes");
        for needle in [
            "summary",
            "profile",
            "analysis",
            "classify_parse",
            "rq1_parse",
            "prompt_renders",
            "hits",
            "misses",
            "evictions",
            "resident_bytes",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
