//! Assembly of the paper's Table 1: nine models × (cost, RQ1, RQ2, RQ3).
//!
//! The model zoo is evaluated in parallel (rayon); results are collected
//! in zoo order and costs are derived from integer token totals, so the
//! assembled table is bit-identical regardless of thread count.

use std::collections::BTreeMap;

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_fault::ResponseAccounting;
use pce_llm::{model_zoo, LlmCaches, SurrogateEngine, UsageMeter};
use pce_metrics::MetricBundle;
use pce_prompt::ShotStyle;

use crate::caches::SuiteCaches;
use crate::experiments::rq23::{render_prompts, run_classification_prompted};
use crate::experiments::{run_rq1, Rq1Outcome};
use crate::study::{Study, StudyData};

/// One Table-1 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Reasoning-capable?
    pub reasoning: bool,
    /// Cost string, `"$in / $out"` per 1M tokens.
    pub cost: String,
    /// Best RQ1 accuracy (None for models the paper omitted: their smaller
    /// siblings already scored perfectly).
    pub rq1_acc: Option<f64>,
    /// Best RQ1 CoT accuracy.
    pub rq1_cot_acc: Option<f64>,
    /// RQ2 zero-shot metrics.
    pub rq2: MetricBundle,
    /// RQ3 few-shot metrics.
    pub rq3: MetricBundle,
    /// Response ledger over this model's RQ2+RQ3 requests (all-zero and
    /// report-invisible on chaos-free runs).
    pub accounting: ResponseAccounting,
}

/// The assembled table plus total spend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows sorted by RQ1 accuracy then RQ2 accuracy (the paper sorts by
    /// RQ1 accuracy).
    pub rows: Vec<Table1Row>,
    /// Total simulated API spend in dollars.
    pub total_cost: f64,
}

impl Table1 {
    /// The table-wide response ledger (all rows merged).
    pub fn accounting(&self) -> ResponseAccounting {
        self.rows
            .iter()
            .fold(ResponseAccounting::new(), |acc, row| {
                acc.merged(&row.accounting)
            })
    }
}

/// Models whose RQ1 runs the paper skipped (§3.4: "excluded because their
/// smaller counterparts already perform so well").
const RQ1_SKIP: [&str; 2] = ["o1", "gpt-4.5-preview"];

/// Hardware-independent RQ1 results for the whole zoo, plus the usage
/// they billed.
///
/// RQ1 prompts embed their own randomly drawn rooflines, so the outcomes
/// depend only on `study.rq1_rooflines` and `study.seed` — never on
/// `study.hardware`. The cross-hardware suite therefore computes the bank
/// once and reuses it for every spec; [`build_table1_from_bank`] absorbs
/// the bank's billed usage so per-spec costs match an inline run exactly.
#[derive(Debug, Clone)]
pub struct Rq1Bank {
    outcomes: BTreeMap<String, Rq1Outcome>,
    meter: UsageMeter,
}

impl Rq1Bank {
    /// Run RQ1 for every zoo model the paper evaluates (parallel over
    /// models).
    pub fn build(study: &Study) -> Rq1Bank {
        Rq1Bank::build_cached(study, &LlmCaches::new())
    }

    /// [`Rq1Bank::build`] against a shared engine cache bundle: the RQ1
    /// prompt-parse cache collapses the per-model re-parsing of the same
    /// few-shot prompts. Bit-identical to an uncached build.
    pub fn build_cached(study: &Study, caches: &LlmCaches) -> Rq1Bank {
        let engine = SurrogateEngine::with_caches(caches.clone());
        let names: Vec<String> = model_zoo()
            .iter()
            .filter(|m| !RQ1_SKIP.contains(&m.name.as_str()))
            .map(|m| m.name.clone())
            .collect();
        let outcomes: Vec<(String, Rq1Outcome)> = names
            .par_iter()
            .map(|name| (name.clone(), run_rq1(study, &engine, name)))
            .collect();
        Rq1Bank {
            outcomes: outcomes.into_iter().collect(),
            meter: engine.meter().clone(),
        }
    }

    /// The RQ1 outcome for one model (`None` for the paper-skipped pair).
    pub fn outcome(&self, model: &str) -> Option<&Rq1Outcome> {
        self.outcomes.get(model)
    }
}

/// The assembled table plus the per-model per-sample detail the
/// cross-hardware suite's flip-tracking accuracy consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Detail {
    /// The table as published.
    pub table: Table1,
    /// Zero-shot (RQ2) per-sample correctness per model, in zoo order,
    /// each vector aligned with the dataset order.
    pub zero_shot_correct: Vec<(String, Vec<bool>)>,
}

/// Run the full Table-1 evaluation.
pub fn build_table1(study: &Study, data: &StudyData) -> Table1 {
    build_table1_from_bank(study, &data.dataset.samples, &Rq1Bank::build(study)).table
}

/// Run the Table-1 evaluation over a balanced sample set against
/// precomputed RQ1 results.
///
/// The (hardware, model) cells run in parallel over the zoo; the bank's
/// billed usage is folded into the table's total spend, so the result is
/// bit-identical to an inline [`build_table1`] run.
pub fn build_table1_from_bank(
    study: &Study,
    samples: &[pce_dataset::Sample],
    bank: &Rq1Bank,
) -> Table1Detail {
    build_table1_from_bank_cached(study, samples, bank, &SuiteCaches::new())
}

/// [`build_table1_from_bank`] against a shared cache bundle.
///
/// Each (sample, shot-style) prompt is rendered **once** and fanned out
/// over the nine-model zoo, and the engine's analysis/parse caches are
/// shared with whatever else runs on the bundle (other hardware specs,
/// repeated runs). Bit-identical to the uncached assembly.
pub fn build_table1_from_bank_cached(
    study: &Study,
    samples: &[pce_dataset::Sample],
    bank: &Rq1Bank,
    caches: &SuiteCaches,
) -> Table1Detail {
    let engine = SurrogateEngine::with_caches_and_faults(
        caches.llm.clone(),
        study.chaos.as_ref().map(|c| c.plan.clone()),
    );
    let zoo = model_zoo();
    // One render pass per shot style, shared by every model below.
    let zero_prompts = render_prompts(study, samples, ShotStyle::ZeroShot);
    let few_prompts = render_prompts(study, samples, ShotStyle::FewShot);
    caches.count_prompt_renders((zero_prompts.len() + few_prompts.len()) as u64);
    let cells: Vec<(Table1Row, Vec<bool>)> = zoo
        .par_iter()
        .map(|spec| {
            let (rq1_acc, rq1_cot_acc) = match bank.outcome(&spec.name) {
                Some(out) => (Some(out.best_acc), Some(out.best_acc_cot)),
                None => (None, None),
            };
            let rq2 = run_classification_prompted(
                study,
                &engine,
                &spec.name,
                samples,
                &zero_prompts,
                ShotStyle::ZeroShot,
            );
            let rq3 = run_classification_prompted(
                study,
                &engine,
                &spec.name,
                samples,
                &few_prompts,
                ShotStyle::FewShot,
            );
            let row = Table1Row {
                model: spec.name.clone(),
                reasoning: spec.reasoning,
                cost: format!("${} / ${}", spec.input_cost, spec.output_cost),
                rq1_acc,
                rq1_cot_acc,
                accounting: rq2.accounting.merged(&rq3.accounting),
                rq2: rq2.metrics,
                rq3: rq3.metrics,
            };
            (row, rq2.correct)
        })
        .collect();
    engine.meter().absorb(&bank.meter);

    let mut rows = Vec::with_capacity(cells.len());
    let mut zero_shot_correct = Vec::with_capacity(cells.len());
    for (row, correct) in cells {
        zero_shot_correct.push((row.model.clone(), correct));
        rows.push(row);
    }
    // Sort like the paper: by RQ1 accuracy (missing entries ride on their
    // RQ2 accuracy), descending. The sort is stable over zoo order, so
    // ties break deterministically.
    rows.sort_by(|a, b| {
        let key = |r: &Table1Row| (r.rq1_acc.unwrap_or(0.0), r.rq2.accuracy);
        let (ka, kb) = (key(a), key(b));
        kb.0.total_cmp(&ka.0).then(kb.1.total_cmp(&ka.1))
    });
    Table1Detail {
        table: Table1 {
            rows,
            total_cost: engine.meter().total_cost(),
        },
        zero_shot_correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_nine_rows_with_paper_shape() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let table = build_table1(&study, &data);
        assert_eq!(table.rows.len(), 9);
        assert!(table.total_cost > 0.0);

        // The two omitted RQ1 cells.
        let omitted: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r.rq1_acc.is_none())
            .map(|r| r.model.as_str())
            .collect();
        assert_eq!(omitted.len(), 2);
        assert!(omitted.contains(&"o1"));
        assert!(omitted.contains(&"gpt-4.5-preview"));

        // Paper shape: every evaluated model scores >= 85 on RQ1; reasoning
        // models hit exactly 100 on both RQ1 columns.
        for row in &table.rows {
            if let Some(acc) = row.rq1_acc {
                assert!(acc >= 85.0, "{}: rq1 {acc}", row.model);
                if row.reasoning {
                    assert_eq!(acc, 100.0, "{}", row.model);
                    assert_eq!(row.rq1_cot_acc, Some(100.0), "{}", row.model);
                }
            }
        }

        // Reasoning models outclass non-reasoning on zero-shot accuracy
        // (group means, as in §3.5).
        let mean = |reasoning: bool| {
            let rows: Vec<_> = table
                .rows
                .iter()
                .filter(|r| r.reasoning == reasoning)
                .collect();
            rows.iter().map(|r| r.rq2.accuracy).sum::<f64>() / rows.len() as f64
        };
        assert!(
            mean(true) > mean(false) + 3.0,
            "reasoning {} vs standard {}",
            mean(true),
            mean(false)
        );
    }

    #[test]
    fn bank_reuse_matches_inline_build_including_cost() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let inline = build_table1(&study, &data);
        let bank = Rq1Bank::build(&study);
        let detail_a = build_table1_from_bank(&study, &data.dataset.samples, &bank);
        let detail_b = build_table1_from_bank(&study, &data.dataset.samples, &bank);
        // Exact equality, total_cost included: integer token accounting
        // makes the spend independent of evaluation order.
        assert_eq!(detail_a.table, inline);
        assert_eq!(detail_a, detail_b);
        // Detail covers the whole zoo in zoo order, aligned with the
        // dataset.
        let zoo_names: Vec<String> = model_zoo().iter().map(|m| m.name.clone()).collect();
        let detail_names: Vec<String> = detail_a
            .zero_shot_correct
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        assert_eq!(detail_names, zoo_names);
        for (model, correct) in &detail_a.zero_shot_correct {
            assert_eq!(correct.len(), data.dataset.len(), "{model}");
        }
    }

    #[test]
    fn cached_assembly_is_bit_identical_including_cost() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let caches = SuiteCaches::new();
        let bank = Rq1Bank::build_cached(&study, &caches.llm);
        assert_eq!(
            bank.outcome("o3-mini").map(|o| o.best_acc),
            Rq1Bank::build(&study)
                .outcome("o3-mini")
                .map(|o| o.best_acc)
        );
        let cold = build_table1_from_bank(&study, &data.dataset.samples, &bank);
        let warm = build_table1_from_bank_cached(&study, &data.dataset.samples, &bank, &caches);
        // Exact equality, total_cost included: billing derives from
        // integer token totals over byte-identical prompts.
        assert_eq!(cold, warm);
        // Run again on the warm bundle: still identical, and the shared
        // caches actually collapsed work.
        let warm2 = build_table1_from_bank_cached(&study, &data.dataset.samples, &bank, &caches);
        assert_eq!(cold, warm2);
        let report = caches.report();
        assert!(report.analysis.hits > 0, "{report:?}");
        assert!(report.classify_parse.hits > 0, "{report:?}");
        // Two assemblies × two styles × one render per sample each.
        assert_eq!(report.prompt_renders as usize, 4 * data.dataset.len());
    }

    #[test]
    fn rq1_bank_covers_exactly_the_evaluated_models() {
        let bank = Rq1Bank::build(&Study::smoke());
        for m in model_zoo() {
            let skipped = RQ1_SKIP.contains(&m.name.as_str());
            assert_eq!(bank.outcome(&m.name).is_none(), skipped, "{}", m.name);
        }
    }
}
