//! Assembly of the paper's Table 1: nine models × (cost, RQ1, RQ2, RQ3).

use serde::{Deserialize, Serialize};

use pce_llm::{model_zoo, SurrogateEngine};
use pce_metrics::MetricBundle;
use pce_prompt::ShotStyle;

use crate::experiments::{run_classification, run_rq1};
use crate::study::{Study, StudyData};

/// One Table-1 row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Reasoning-capable?
    pub reasoning: bool,
    /// Cost string, `"$in / $out"` per 1M tokens.
    pub cost: String,
    /// Best RQ1 accuracy (None for models the paper omitted: their smaller
    /// siblings already scored perfectly).
    pub rq1_acc: Option<f64>,
    /// Best RQ1 CoT accuracy.
    pub rq1_cot_acc: Option<f64>,
    /// RQ2 zero-shot metrics.
    pub rq2: MetricBundle,
    /// RQ3 few-shot metrics.
    pub rq3: MetricBundle,
}

/// The assembled table plus total spend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Rows sorted by RQ1 accuracy then RQ2 accuracy (the paper sorts by
    /// RQ1 accuracy).
    pub rows: Vec<Table1Row>,
    /// Total simulated API spend in dollars.
    pub total_cost: f64,
}

/// Models whose RQ1 runs the paper skipped (§3.4: "excluded because their
/// smaller counterparts already perform so well").
const RQ1_SKIP: [&str; 2] = ["o1", "gpt-4.5-preview"];

/// Run the full Table-1 evaluation.
pub fn build_table1(study: &Study, data: &StudyData) -> Table1 {
    let engine = SurrogateEngine::new();
    let mut rows = Vec::new();
    for spec in model_zoo() {
        let (rq1_acc, rq1_cot_acc) = if RQ1_SKIP.contains(&spec.name.as_str()) {
            (None, None)
        } else {
            let out = run_rq1(study, &engine, &spec.name);
            (Some(out.best_acc), Some(out.best_acc_cot))
        };
        let rq2 = run_classification(
            study,
            &engine,
            &spec.name,
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        let rq3 = run_classification(
            study,
            &engine,
            &spec.name,
            &data.dataset.samples,
            ShotStyle::FewShot,
        );
        rows.push(Table1Row {
            model: spec.name.clone(),
            reasoning: spec.reasoning,
            cost: format!("${} / ${}", spec.input_cost, spec.output_cost),
            rq1_acc,
            rq1_cot_acc,
            rq2: rq2.metrics,
            rq3: rq3.metrics,
        });
    }
    // Sort like the paper: by RQ1 accuracy (missing entries ride on their
    // RQ2 accuracy), descending.
    rows.sort_by(|a, b| {
        let key = |r: &Table1Row| (r.rq1_acc.unwrap_or(0.0), r.rq2.accuracy);
        key(b).partial_cmp(&key(a)).unwrap()
    });
    Table1 {
        rows,
        total_cost: engine.meter().total_cost(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_nine_rows_with_paper_shape() {
        let study = Study::smoke();
        let data = StudyData::build(&study);
        let table = build_table1(&study, &data);
        assert_eq!(table.rows.len(), 9);
        assert!(table.total_cost > 0.0);

        // The two omitted RQ1 cells.
        let omitted: Vec<_> = table
            .rows
            .iter()
            .filter(|r| r.rq1_acc.is_none())
            .map(|r| r.model.as_str())
            .collect();
        assert_eq!(omitted.len(), 2);
        assert!(omitted.contains(&"o1"));
        assert!(omitted.contains(&"gpt-4.5-preview"));

        // Paper shape: every evaluated model scores >= 85 on RQ1; reasoning
        // models hit exactly 100 on both RQ1 columns.
        for row in &table.rows {
            if let Some(acc) = row.rq1_acc {
                assert!(acc >= 85.0, "{}: rq1 {acc}", row.model);
                if row.reasoning {
                    assert_eq!(acc, 100.0, "{}", row.model);
                    assert_eq!(row.rq1_cot_acc, Some(100.0), "{}", row.model);
                }
            }
        }

        // Reasoning models outclass non-reasoning on zero-shot accuracy
        // (group means, as in §3.5).
        let mean = |reasoning: bool| {
            let rows: Vec<_> = table
                .rows
                .iter()
                .filter(|r| r.reasoning == reasoning)
                .collect();
            rows.iter().map(|r| r.rq2.accuracy).sum::<f64>() / rows.len() as f64
        };
        assert!(
            mean(true) > mean(false) + 3.0,
            "reasoning {} vs standard {}",
            mean(true),
            mean(false)
        );
    }
}
