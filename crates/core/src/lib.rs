//! # pce-core
//!
//! The experiment harness — the paper's primary artifact. It wires every
//! substrate together and reproduces each numbered result:
//!
//! * [`study`] — study configuration and the shared data build
//!   (corpus → profiles → balanced dataset → split),
//! * [`experiments`] — one runner per research question:
//!   RQ1 baseline roofline calculations, RQ2 zero-shot, RQ3 few-shot,
//!   RQ4 fine-tuning, plus the §3.2 sampling-hyperparameter chi-squared
//!   check,
//! * [`table1`] — assembles the paper's Table 1 across all nine models
//!   (rayon-parallel over the zoo),
//! * [`suite`] — the cross-hardware study matrix: every (hardware spec ×
//!   model × RQ) cell from one shared corpus/tokenizer/RQ1 build, plus
//!   the label-flip analysis,
//! * [`caches`] — the cross-layer memoization bundle ([`SuiteCaches`])
//!   the suite threads through the profiler, the surrogate engine, and
//!   the prompt renderer so each pure computation happens once,
//! * [`figures`] — the Figure 1 roofline scatter and Figure 2 token
//!   distributions,
//! * [`report`] — markdown/CSV rendering of all of the above.
//!
//! ```no_run
//! use pce_core::study::{Study, StudyData};
//! use pce_core::table1::build_table1;
//!
//! let study = Study::default();
//! let data = StudyData::build(&study).expect("study builds");
//! let table = build_table1(&study, &data);
//! println!("{}", pce_core::report::render_table1(&table));
//! ```

#![forbid(unsafe_code)]

pub mod caches;
pub mod experiments;
pub mod figures;
pub mod report;
pub mod serve;
pub mod study;
pub mod suite;
pub mod table1;

pub use caches::{CacheBudget, CacheReport, SuiteCaches};
pub use serve::{Command, Job, PredictionService};
pub use study::{ChaosConfig, Study, StudyData};
pub use suite::{
    run_suite, run_suite_cached, run_suite_timed, CellOutcome, Suite, SuiteBench, SuiteOutcome,
};
