//! Figure regeneration: Fig. 1 (roofline scatter) and Fig. 2 (token
//! distributions).

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_dataset::{fig2_stats, Fig2Row, Split};
use pce_gpu_sim::Profiler;
use pce_kernels::Program;
use pce_roofline::plot::{build_plot, RooflinePlot};
use pce_roofline::{KernelObservation, OpClass};

use crate::study::Study;

/// Figure-1 payload plus its headline statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// The plot data (curves + scatter).
    pub plot: RooflinePlot,
    /// Fraction of SP samples that are bandwidth-bound (the paper notes
    /// the majority are).
    pub sp_bb_fraction: f64,
    /// Fraction of INT samples that are bandwidth-bound.
    pub int_bb_fraction: f64,
    /// Fraction of DP samples that are bandwidth-bound.
    pub dp_bb_fraction: f64,
}

/// Profile the full corpus and build the Figure-1 roofline scatter.
///
/// Figure 1 is the *paper's* single-device view: every program (CUDA and
/// OMP alike) is profiled against the study's GPU spec and plotted on its
/// rooflines, reproducing the published figure verbatim. The
/// language-routed ground truth lives in the dataset pipeline and the
/// cross-hardware suite, not here.
///
/// `cache_enabled = false` reproduces the DESIGN.md ablation (static-like
/// traffic), collapsing the empirical-vs-static AI gap.
pub fn build_fig1(study: &Study, corpus: &[Program], cache_enabled: bool) -> Fig1 {
    let profiler = if cache_enabled {
        Profiler::new(study.specs.gpu.clone())
    } else {
        Profiler::new(study.specs.gpu.clone()).without_cache()
    };
    let observations: Vec<(String, KernelObservation)> = corpus
        .par_iter()
        .map(|p| {
            let profile = profiler.profile(&p.ir, &p.launch);
            (p.id.clone(), profile.observation())
        })
        .collect();
    let plot = build_plot(&study.specs.gpu, &observations, 96);
    Fig1 {
        sp_bb_fraction: plot.bandwidth_bound_fraction(OpClass::Sp),
        int_bb_fraction: plot.bandwidth_bound_fraction(OpClass::Int),
        dp_bb_fraction: plot.bandwidth_bound_fraction(OpClass::Dp),
        plot,
    }
}

/// Figure-2 payload: the eight box-plot rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2 {
    /// (split × language × class) token distributions.
    pub rows: Vec<Fig2Row>,
}

/// Build Figure 2 from the train/validation split.
pub fn build_fig2(split: &Split) -> Fig2 {
    Fig2 {
        rows: fig2_stats(split),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyData;

    #[test]
    fn fig1_shows_bb_majority_for_sp_and_int() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let fig = build_fig1(&study, &data.corpus, true);
        // §2.1: "the majority of the SP-FLOP and INT samples are BB".
        assert!(
            fig.sp_bb_fraction > 0.5,
            "SP BB fraction {}",
            fig.sp_bb_fraction
        );
        assert!(
            fig.int_bb_fraction > 0.5,
            "INT BB fraction {}",
            fig.int_bb_fraction
        );
        assert_eq!(fig.plot.curves.len(), 3);
        assert!(!fig.plot.scatter.is_empty());
    }

    #[test]
    fn cache_ablation_shifts_scatter_toward_bandwidth() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let cached = build_fig1(&study, &data.corpus, true);
        let uncached = build_fig1(&study, &data.corpus, false);
        // Without the cache model, DRAM traffic rises, AI falls, and more
        // samples land in the bandwidth-bound region.
        assert!(uncached.sp_bb_fraction >= cached.sp_bb_fraction);
    }

    #[test]
    fn fig2_rows_cover_both_splits() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let fig = build_fig2(&data.split);
        assert_eq!(fig.rows.len(), 8);
        assert!(fig.rows.iter().any(|r| r.split == "train"));
        assert!(fig.rows.iter().any(|r| r.split == "validation"));
    }
}
