//! RQ2 (zero-shot) and RQ3 (few-shot) source classification (§3.5–3.6,
//! Table 1 columns 6–11). The two experiments share a runner: only the
//! prompt's example bank differs.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_dataset::Sample;
use pce_fault::ResponseAccounting;
use pce_llm::{SamplingParams, SurrogateEngine};
use pce_metrics::{ConfusionMatrix, MetricBundle};
use pce_prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
use pce_roofline::Boundedness;

use crate::study::Study;

/// Classification results for one (model, shot-style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationOutcome {
    /// Model name.
    pub model: String,
    /// Zero- or few-shot.
    pub style: ShotStyle,
    /// The three Table-1 metrics.
    pub metrics: MetricBundle,
    /// The raw confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Per-sample correctness, aligned with the dataset order (for paired
    /// tests such as McNemar between RQ2 and RQ3).
    pub correct: Vec<bool>,
    /// Response ledger over the whole sample set: valid /
    /// retried-then-valid / invalid / refused, plus injection counts.
    pub accounting: ResponseAccounting,
}

/// Build the Fig.-4 prompt for one sample.
///
/// The hardware block renders the spec of the sample's own machine class
/// — CUDA prompts carry the study's GPU roofline numbers, OMP prompts the
/// CPU's — matching the roofline its ground-truth label was drawn under.
pub fn prompt_for_sample(study: &Study, sample: &Sample, style: ShotStyle) -> String {
    let req = ClassifyRequest {
        language: sample.language.label().to_string(),
        kernel_name: sample.kernel_name.clone(),
        hardware: study.specs.for_class(sample.language.spec_class()).clone(),
        geometry: sample.geometry.clone(),
        args: sample.args.clone(),
        source: sample.source.clone(),
    };
    render_classify_prompt(&req, style)
}

/// Render the Fig.-4 prompt for every sample (parallel), aligned with the
/// sample order.
///
/// Prompts depend on (sample, shot-style, the study's language-routed
/// spec) but never on the model, so one rendered set serves the whole zoo
/// — the Table-1 assembly renders here once and fans the result out over
/// nine models.
pub fn render_prompts(study: &Study, samples: &[Sample], style: ShotStyle) -> Vec<String> {
    samples
        .par_iter()
        .map(|s| prompt_for_sample(study, s, style))
        .collect()
}

/// Run a classification experiment over the dataset for one model.
pub fn run_classification(
    study: &Study,
    engine: &SurrogateEngine,
    model: &str,
    samples: &[Sample],
    style: ShotStyle,
) -> ClassificationOutcome {
    let prompts = render_prompts(study, samples, style);
    run_classification_prompted(study, engine, model, samples, &prompts, style)
}

/// Run a classification experiment against pre-rendered prompts (one per
/// sample, in sample order). Bit-identical to [`run_classification`];
/// callers evaluating several models share one render pass.
///
/// # Panics
/// Panics when `prompts` is not aligned with `samples`.
pub fn run_classification_prompted(
    study: &Study,
    engine: &SurrogateEngine,
    model: &str,
    samples: &[Sample],
    prompts: &[String],
    style: ShotStyle,
) -> ClassificationOutcome {
    assert_eq!(
        samples.len(),
        prompts.len(),
        "prompts are not aligned with the sample set"
    );
    let sampling = SamplingParams::default(); // temperature 0.1, top_p 0.2 (§3.2)
    let policy = study.chaos.as_ref().map(|c| c.retry).unwrap_or_default();
    let results: Vec<(bool, Option<bool>, ResponseAccounting)> = samples
        .par_iter()
        .enumerate()
        .map(|(i, sample)| {
            // The retry loop degrades failures instead of crashing: an
            // injected fault that exhausts retries (or a refusal) lands
            // in the invalid/refused columns of the ledger and the
            // confusion matrix's invalid counts.
            let out = engine.complete_with_retry(
                model,
                &prompts[i],
                Some(sampling),
                study.seed ^ i as u64,
                &policy,
            );
            let truth = sample.label == Boundedness::Compute;
            let pred = out.verdict.map(|b| b == Boundedness::Compute);
            (truth, pred, out.accounting)
        })
        .collect();

    let mut cm = ConfusionMatrix::new();
    let mut correct = Vec::with_capacity(results.len());
    let mut accounting = ResponseAccounting::new();
    for (truth, pred, acc) in &results {
        cm.record_opt(*truth, *pred);
        correct.push(*pred == Some(*truth));
        accounting.merge(acc);
    }
    ClassificationOutcome {
        model: model.to_string(),
        style,
        metrics: cm.bundle(),
        confusion: cm,
        correct,
        accounting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyData;

    #[test]
    fn reasoning_beats_non_reasoning_zero_shot() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        let strong = run_classification(
            &study,
            &engine,
            "o3-mini-high",
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        let weak = run_classification(
            &study,
            &engine,
            "gpt-4o-mini",
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        assert!(
            strong.metrics.accuracy > weak.metrics.accuracy + 4.0,
            "reasoning {} vs standard {}",
            strong.metrics.accuracy,
            weak.metrics.accuracy
        );
        // The paper's headline band: reasoning well above chance but far
        // from ceiling; standard near chance.
        assert!(strong.metrics.accuracy > 55.0 && strong.metrics.accuracy < 80.0);
        assert!(weak.metrics.accuracy > 38.0 && weak.metrics.accuracy < 62.0);
        assert!(strong.metrics.mcc > weak.metrics.mcc);
    }

    #[test]
    fn few_shot_changes_little_for_reasoning_models() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        let zero = run_classification(
            &study,
            &engine,
            "o1",
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        let few = run_classification(
            &study,
            &engine,
            "o1",
            &data.dataset.samples,
            ShotStyle::FewShot,
        );
        assert!(
            (zero.metrics.accuracy - few.metrics.accuracy).abs() < 12.0,
            "zero {} vs few {}",
            zero.metrics.accuracy,
            few.metrics.accuracy
        );
        // Paired vectors align with the dataset for McNemar testing.
        assert_eq!(zero.correct.len(), few.correct.len());
        let mc = pce_metrics::mcnemar_test(&zero.correct, &few.correct);
        assert!(
            !mc.significant_at(0.01),
            "RQ2 vs RQ3 should not differ strongly"
        );
    }

    #[test]
    fn prompted_runner_matches_inline_rendering_across_engines() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        for style in [ShotStyle::ZeroShot, ShotStyle::FewShot] {
            let prompts = render_prompts(&study, &data.dataset.samples, style);
            assert_eq!(prompts.len(), data.dataset.len());
            for model in ["o3-mini", "gpt-4o-mini"] {
                let inline =
                    run_classification(&study, &engine, model, &data.dataset.samples, style);
                let shared = run_classification_prompted(
                    &study,
                    &engine,
                    model,
                    &data.dataset.samples,
                    &prompts,
                    style,
                );
                // A cache-sharing engine answers identically too.
                let warm_engine = SurrogateEngine::with_caches(engine.caches().clone());
                let warm = run_classification_prompted(
                    &study,
                    &warm_engine,
                    model,
                    &data.dataset.samples,
                    &prompts,
                    style,
                );
                assert_eq!(inline, shared, "{model}");
                assert_eq!(inline, warm, "{model} (warm caches)");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn misaligned_prompts_are_rejected() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        let mut prompts = render_prompts(&study, &data.dataset.samples, ShotStyle::ZeroShot);
        prompts.pop();
        run_classification_prompted(
            &study,
            &engine,
            "o3-mini",
            &data.dataset.samples,
            &prompts,
            ShotStyle::ZeroShot,
        );
    }

    #[test]
    fn outcome_metrics_match_confusion_matrix() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        let out = run_classification(
            &study,
            &engine,
            "gemini-2.0-flash-001",
            &data.dataset.samples,
            ShotStyle::ZeroShot,
        );
        assert_eq!(out.metrics.n as usize, data.dataset.len());
        let recomputed = out.confusion.bundle();
        assert_eq!(out.metrics, recomputed);
        let correct_count = out.correct.iter().filter(|&&c| c).count();
        assert_eq!(correct_count as u64, out.confusion.correct());
    }
}
