//! RQ4: fine-tuning (§3.7). Trains the surrogate fine-tune head on the
//! 80 % split (zero-shot prompt texts, as the paper did) and evaluates on
//! the validation split, reporting the collapse diagnostics.

use serde::{Deserialize, Serialize};

use pce_dataset::Split;
use pce_llm::{FineTuneConfig, FineTuneJob};
use pce_metrics::{ConfusionMatrix, MetricBundle};
use pce_prompt::ShotStyle;
use pce_roofline::Boundedness;

use crate::experiments::rq23::prompt_for_sample;
use crate::study::Study;

/// RQ4 results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq4Outcome {
    /// Validation metrics of the fine-tuned model.
    pub metrics: MetricBundle,
    /// Fraction of validation samples answered with the majority predicted
    /// class (1.0 = the paper's total collapse).
    pub prediction_concentration: f64,
    /// The class the collapsed model prefers.
    pub collapsed_to: String,
    /// Per-epoch training accuracy.
    pub epoch_train_accuracy: Vec<f64>,
    /// Training-set size (paper: 272).
    pub train_size: usize,
    /// Validation-set size (paper: 68).
    pub validation_size: usize,
}

/// Run the fine-tuning experiment.
pub fn run_rq4(study: &Study, split: &Split) -> Rq4Outcome {
    // The paper trains on the RQ2 zero-shot prompts.
    let train: Vec<(String, Boundedness)> = split
        .train
        .samples
        .iter()
        .map(|s| (prompt_for_sample(study, s, ShotStyle::ZeroShot), s.label))
        .collect();
    let job = FineTuneJob::new(
        train,
        FineTuneConfig {
            seed: study.seed,
            ..Default::default()
        },
    );
    let model = job.run();

    let mut cm = ConfusionMatrix::new();
    let mut compute_answers = 0usize;
    for s in &split.validation.samples {
        let prompt = prompt_for_sample(study, s, ShotStyle::ZeroShot);
        let pred = model.predict(&prompt);
        if pred == Boundedness::Compute {
            compute_answers += 1;
        }
        cm.record(
            s.label == Boundedness::Compute,
            pred == Boundedness::Compute,
        );
    }
    let n = split.validation.len().max(1);
    let concentration = compute_answers.max(n - compute_answers) as f64 / n as f64;
    let collapsed_to = if compute_answers * 2 >= n {
        "Compute"
    } else {
        "Bandwidth"
    };

    Rq4Outcome {
        metrics: cm.bundle(),
        prediction_concentration: concentration,
        collapsed_to: collapsed_to.to_string(),
        epoch_train_accuracy: model.epoch_train_accuracy.clone(),
        train_size: split.train.len(),
        validation_size: split.validation.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyData;

    #[test]
    fn finetuning_collapses_to_one_class_on_paper_scale_data() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let out = run_rq4(&study, &data.split);
        // The §3.7 signature: the model devolves to answering one class.
        assert!(
            out.prediction_concentration > 0.85,
            "expected collapse, got concentration {}",
            out.prediction_concentration
        );
        // Collapsed predictions on a balanced set sit near 50% accuracy;
        // the residual minority keeps MCC noisy at smoke scale, so the
        // bounds are generous — concentration above is the signature.
        assert!(out.metrics.accuracy > 30.0 && out.metrics.accuracy < 75.0);
        assert!(out.metrics.mcc.abs() < 50.0);
        assert_eq!(out.epoch_train_accuracy.len(), 2);
        assert!(["Compute", "Bandwidth"].contains(&out.collapsed_to.as_str()));
    }
}
