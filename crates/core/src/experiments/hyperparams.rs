//! §3.2: the sampling-hyperparameter sensitivity check.
//!
//! The paper ran a chi-squared test over model predictions across
//! temperature/top_p settings and found no statistically significant
//! effect, then fixed (0.1, 0.2) for all further runs. This runner
//! reproduces that test: predicted-class counts per sampling setting form
//! the contingency table.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_dataset::Sample;
use pce_llm::{ChatRequest, SamplingParams, SurrogateEngine};
use pce_metrics::{chi_squared_independence, Chi2Result};
use pce_prompt::ShotStyle;
use pce_roofline::Boundedness;

use crate::experiments::rq23::prompt_for_sample;
use crate::study::Study;

/// Result of the hyperparameter sensitivity check for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperparamCheck {
    /// Model name.
    pub model: String,
    /// The sampling grid evaluated.
    pub settings: Vec<SamplingParams>,
    /// Contingency table: rows = settings, cols = (Compute, Bandwidth).
    pub table: Vec<Vec<u64>>,
    /// The chi-squared independence test over that table.
    pub chi2: Chi2Result,
}

/// Run the check over a sample subset (the full dataset would be wasteful
/// for a negative-result confirmation; the paper likewise sampled).
pub fn run_hyperparam_check(
    study: &Study,
    engine: &SurrogateEngine,
    model: &str,
    samples: &[Sample],
) -> HyperparamCheck {
    let settings = vec![
        SamplingParams {
            temperature: 0.1,
            top_p: 0.2,
        },
        SamplingParams {
            temperature: 0.7,
            top_p: 0.2,
        },
        SamplingParams {
            temperature: 1.0,
            top_p: 0.95,
        },
    ];
    let table: Vec<Vec<u64>> = settings
        .iter()
        .map(|&sampling| {
            let counts: (u64, u64) = samples
                .par_iter()
                .enumerate()
                .map(|(i, sample)| {
                    let prompt = prompt_for_sample(study, sample, ShotStyle::ZeroShot);
                    let resp = engine.complete(
                        &ChatRequest::new(model, prompt)
                            .with_sampling(sampling)
                            .with_seed(study.seed ^ (i as u64) << 8),
                    );
                    match resp.ok().and_then(|r| Boundedness::parse(&r.text)) {
                        Some(Boundedness::Compute) => (1u64, 0u64),
                        _ => (0u64, 1u64),
                    }
                })
                .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
            vec![counts.0, counts.1]
        })
        .collect();
    let chi2 = chi_squared_independence(&table)
        .expect("contingency table over >= 2 settings and 2 classes");
    HyperparamCheck {
        model: model.to_string(),
        settings,
        table,
        chi2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyData;

    #[test]
    fn sampling_params_have_no_significant_effect() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let engine = SurrogateEngine::new();
        let check = run_hyperparam_check(
            &study,
            &engine,
            "gemini-2.0-flash-001",
            &data.dataset.samples,
        );
        assert_eq!(check.table.len(), 3);
        assert!(
            !check.chi2.significant_at(0.05),
            "paper found no significant effect; got p = {}",
            check.chi2.p_value
        );
        // Every setting answered every sample.
        for row in &check.table {
            assert_eq!(row.iter().sum::<u64>() as usize, data.dataset.len());
        }
    }
}
