//! Ablation: sweep the surrogate capability knobs and measure zero-shot
//! accuracy — the DESIGN.md "reasoning depth vs. accuracy" study.
//!
//! This quantifies *which mechanism buys what*: argument binding + loop
//! weighting (deep reading), cache-reuse anticipation, and noise floor.
//! The paper's reasoning/non-reasoning gap decomposes into exactly these
//! ingredients.

use serde::{Deserialize, Serialize};

use pce_dataset::Sample;
use pce_llm::zoo::{Capability, ModelSpec};
use pce_llm::SurrogateEngine;
use pce_metrics::{ConfusionMatrix, MetricBundle};
use pce_prompt::ShotStyle;
use pce_roofline::Boundedness;

use crate::experiments::rq23::render_prompts;
use crate::study::Study;

/// One ablation point: a synthetic model and its measured metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable configuration label.
    pub label: String,
    /// Insight level of the synthetic model.
    pub insight: f64,
    /// Reuse awareness of the synthetic model.
    pub reuse_aware: f64,
    /// Measured zero-shot metrics.
    pub metrics: MetricBundle,
}

/// Sweep insight × reuse-awareness over the dataset.
///
/// The synthetic models are registered nowhere: the engine is exercised
/// through a purpose-built spec via `pce-llm`'s internals being mirrored —
/// we emulate it here by running the real engine on the two models that
/// bracket each mechanism, plus interpolated synthetic specs evaluated
/// through a local scorer mirroring the engine's classification path.
pub fn run_capability_ablation(study: &Study, samples: &[Sample]) -> Vec<AblationPoint> {
    let grid = [
        ("no-insight, no-reuse", 0.05, 0.0),
        ("mid-insight, no-reuse", 0.5, 0.0),
        ("high-insight, no-reuse", 0.9, 0.0),
        ("high-insight, half-reuse", 0.9, 0.45),
        ("high-insight, full-reuse", 0.9, 0.9),
    ];
    // One engine and one prompt render pass serve the whole sweep: every
    // grid point asks about the same prompts, so parses and analyses are
    // cached across points instead of re-derived per completion.
    let engine = SurrogateEngine::new();
    let prompts = render_prompts(study, samples, ShotStyle::ZeroShot);
    grid.iter()
        .map(|&(label, insight, reuse)| {
            let spec = synthetic_spec(label, insight, reuse);
            let metrics = score_spec(study, &engine, &spec, samples, &prompts);
            AblationPoint {
                label: label.to_string(),
                insight,
                reuse_aware: reuse,
                metrics,
            }
        })
        .collect()
}

fn synthetic_spec(name: &str, insight: f64, reuse_aware: f64) -> ModelSpec {
    ModelSpec {
        name: name.to_string(),
        reasoning: true, // deep-reader path; insight/reuse are the knobs
        input_cost: 0.0,
        output_cost: 0.0,
        caps: Capability {
            arith_slip: 0.0,
            arith_slip_cot: 0.0,
            insight,
            reuse_aware,
            bias_strength: 0.0,
            bias_bandwidth: true,
        },
        reasoning_tokens: 0,
    }
}

/// Score a synthetic spec by routing through the engine's public
/// evaluation path (`pce_llm::engine::complete_with_spec_on`).
fn score_spec(
    study: &Study,
    engine: &SurrogateEngine,
    spec: &ModelSpec,
    samples: &[Sample],
    prompts: &[String],
) -> MetricBundle {
    use rayon::prelude::*;
    let results: Vec<(bool, Option<bool>)> = samples
        .par_iter()
        .enumerate()
        .map(|(i, sample)| {
            let text = pce_llm::engine::complete_with_spec_on(
                engine,
                spec,
                &prompts[i],
                study.seed ^ i as u64,
            );
            let truth = sample.label == Boundedness::Compute;
            let pred = Boundedness::parse(&text).map(|b| b == Boundedness::Compute);
            (truth, pred)
        })
        .collect();
    let mut cm = ConfusionMatrix::new();
    for (truth, pred) in results {
        cm.record_opt(truth, pred);
    }
    cm.bundle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::StudyData;

    #[test]
    fn insight_and_reuse_awareness_both_buy_accuracy() {
        let study = Study::smoke();
        let data = StudyData::build(&study).expect("study builds");
        let points = run_capability_ablation(&study, &data.dataset.samples);
        assert_eq!(points.len(), 5);
        // More insight (at fixed reuse) must not hurt much; the extremes
        // must order correctly.
        let acc = |label: &str| {
            points
                .iter()
                .find(|p| p.label.starts_with(label))
                .unwrap()
                .metrics
                .accuracy
        };
        // Re-pinned with language-routed ground truth: OMP samples now
        // carry CPU rooflines whose ridges sit at ~8–23 ops/byte (vs ~39
        // SP on the 3080), which reshuffles individual grid points at
        // this 60-sample scale. The *mechanism* claims below are the
        // realization-robust ones: the best reuse-aware configuration
        // beats having no insight by a clear margin and is at least as
        // good as ignoring reuse entirely.
        let best_reuse = acc("high-insight, half-reuse").max(acc("high-insight, full-reuse"));
        assert!(
            best_reuse > acc("no-insight") + 3.0,
            "full pipeline {} vs none {}",
            best_reuse,
            acc("no-insight")
        );
        assert!(
            best_reuse >= acc("high-insight, no-reuse"),
            "reuse awareness should help on cache-flipped kernels: {} vs {}",
            best_reuse,
            acc("high-insight, no-reuse")
        );
    }
}
