//! RQ1: baseline roofline calculations (§3.4, Table 1 columns 4–5).
//!
//! For each model, prompts with 2-, 4-, and 8-shot examples — with and
//! without chain-of-thought text — are evaluated over the random-roofline
//! suite; the paper reports the best accuracy per CoT setting.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use pce_llm::{ChatRequest, SurrogateEngine};
use pce_metrics::ConfusionMatrix;
use pce_prompt::{generate_rq1_suite, render_rq1_prompt, Rq1Suite};
use pce_roofline::Boundedness;

use crate::study::Study;

/// RQ1 results for one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rq1Outcome {
    /// Model name.
    pub model: String,
    /// Accuracy (×100) per shot count without CoT, keyed 2/4/8.
    pub by_shots: Vec<(usize, f64)>,
    /// Accuracy (×100) per shot count with CoT.
    pub by_shots_cot: Vec<(usize, f64)>,
    /// Best accuracy without CoT (the Table-1 "RQ1 Acc" cell).
    pub best_acc: f64,
    /// Best accuracy with CoT (the "RQ1 CoT Acc" cell).
    pub best_acc_cot: f64,
}

fn accuracy_over_suite(
    engine: &SurrogateEngine,
    suite: &Rq1Suite,
    model: &str,
    shots: usize,
    cot: bool,
) -> f64 {
    let mut cm = ConfusionMatrix::new();
    let outcomes: Vec<(bool, Option<bool>)> = suite
        .items
        .par_iter()
        .enumerate()
        .map(|(i, item)| {
            let prompt = render_rq1_prompt(suite, i, shots, cot);
            let resp = engine.complete(&ChatRequest::new(model, prompt).with_seed(i as u64));
            let truth = item.truth == Boundedness::Compute;
            // An engine error (injected timeout, unknown model) scores as
            // an invalid response, same as an unparseable answer.
            let pred = resp
                .ok()
                .and_then(|r| Boundedness::parse(&r.text))
                .map(|b| b == Boundedness::Compute);
            (truth, pred)
        })
        .collect();
    for (truth, pred) in outcomes {
        cm.record_opt(truth, pred);
    }
    cm.accuracy() * 100.0
}

/// Run RQ1 for one model.
pub fn run_rq1(study: &Study, engine: &SurrogateEngine, model: &str) -> Rq1Outcome {
    let suite = generate_rq1_suite(study.rq1_rooflines, study.seed ^ 0x51);
    let shot_counts = [2usize, 4, 8];
    let by_shots: Vec<(usize, f64)> = shot_counts
        .iter()
        .map(|&s| (s, accuracy_over_suite(engine, &suite, model, s, false)))
        .collect();
    let by_shots_cot: Vec<(usize, f64)> = shot_counts
        .iter()
        .map(|&s| (s, accuracy_over_suite(engine, &suite, model, s, true)))
        .collect();
    let best = |v: &[(usize, f64)]| v.iter().map(|&(_, a)| a).fold(0.0, f64::max);
    Rq1Outcome {
        model: model.to_string(),
        best_acc: best(&by_shots),
        best_acc_cot: best(&by_shots_cot),
        by_shots,
        by_shots_cot,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reasoning_model_hits_100_and_standard_stays_90ish() {
        let study = Study::smoke();
        let engine = SurrogateEngine::new();
        let o3 = run_rq1(&study, &engine, "o3-mini");
        assert_eq!(o3.best_acc, 100.0);
        assert_eq!(o3.best_acc_cot, 100.0);

        let mini = run_rq1(&study, &engine, "gpt-4o-mini");
        assert!(
            mini.best_acc >= 80.0 && mini.best_acc < 100.0,
            "{}",
            mini.best_acc
        );
        assert!(mini.best_acc_cot >= mini.best_acc, "CoT helps the minis");
    }

    #[test]
    fn outcome_covers_all_shot_counts() {
        let study = Study::smoke();
        let engine = SurrogateEngine::new();
        let out = run_rq1(&study, &engine, "gemini-2.0-flash-001");
        assert_eq!(out.by_shots.len(), 3);
        assert_eq!(out.by_shots_cot.len(), 3);
        let shots: Vec<usize> = out.by_shots.iter().map(|&(s, _)| s).collect();
        assert_eq!(shots, vec![2, 4, 8]);
    }
}
