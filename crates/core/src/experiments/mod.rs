//! Experiment runners, one per research question.

pub mod ablation;
pub mod hyperparams;
pub mod rq1;
pub mod rq23;
pub mod rq4;

pub use ablation::{run_capability_ablation, AblationPoint};
pub use hyperparams::{run_hyperparam_check, HyperparamCheck};
pub use rq1::{run_rq1, Rq1Outcome};
pub use rq23::{
    prompt_for_sample, render_prompts, run_classification, run_classification_prompted,
    ClassificationOutcome,
};
pub use rq4::{run_rq4, Rq4Outcome};
