//! Prediction-as-a-service: a batched request loop in front of the
//! surrogate engine.
//!
//! The suite answers one fixed experiment matrix and exits; this module
//! turns the same substrate into something that can be *queried*. A
//! [`PredictionService`] owns a corpus, a (bounded) [`SuiteCaches`]
//! bundle, and a [`SurrogateEngine`], and answers jobs of the form
//! *(kernel, hardware, model, shot-style)* over a line protocol:
//!
//! ```text
//! predict id=j1 kernel=cuda-saxpy-0000 spec=rtx-3080 model=gpt-4o shots=zero
//! stats
//! quit
//! ```
//!
//! Each `predict` answers with one line —
//! `ok id=... prediction=Compute truth=Bandwidth correct=false` on
//! success, `err id=... kind=spec error="..."` on a bad job — and
//! `stats` reports job/cache/ledger totals. Responses never carry
//! timing, so a transcript is byte-reproducible across thread counts,
//! batch sizes, and cache bounds.
//!
//! ## Admission batching
//!
//! Jobs are admitted in batches ([`PredictionService::predict_batch`],
//! driven by [`PredictionService::serve_lines`]): within a batch, jobs
//! that share a *(kernel, spec, shot-style)* group profile the kernel
//! and render the Fig.-4 prompt **once**, exactly as the suite's Table-1
//! assembly amortizes renders across the model zoo. Groups and then
//! per-job completions fan out across the rayon pool.
//!
//! ## Determinism
//!
//! A job's sampling seed is derived from its *(kernel, spec, model,
//! shot-style)* identity — never from its request id, arrival order, or
//! batch position — so the same job always produces the same response
//! line no matter how the stream is batched or which worker runs it.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rayon::prelude::*;

use pce_fault::{PceError, ResponseAccounting, RetryPolicy};
use pce_gpu_sim::Profiler;
use pce_kernels::{build_corpus, Program};
use pce_llm::{SamplingParams, SurrogateEngine};
use pce_memo::Fnv;
use pce_prompt::{render_classify_prompt, ClassifyRequest, ShotStyle};
use pce_roofline::{classify_joint, Boundedness, HardwareSpec};

use crate::caches::{CacheBudget, SuiteCaches};
use crate::study::Study;

/// The committed `BENCH_serve.json` shape: the `loadgen` bin's latency /
/// throughput baseline plus its bounded-vs-unbounded identity check.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeBenchReport {
    /// Jobs replayed per measured run.
    pub jobs: usize,
    /// Admission batch size.
    pub batch: usize,
    /// Job-mix seed.
    pub seed: u64,
    /// Per-cache byte capacity of the bounded runs.
    pub cache_bytes: u64,
    /// Bounded-vs-unbounded determinism check.
    pub identity: IdentityCheck,
    /// One latency/throughput point per measured thread count.
    pub threads: Vec<ThreadPoint>,
}

/// Result of replaying the same job mix against a bounded and an
/// unbounded service.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdentityCheck {
    /// Whether the two response transcripts were byte-identical.
    pub bounded_equals_unbounded: bool,
    /// Evictions the bounded run performed (must be > 0 for the check to
    /// mean anything).
    pub evictions: u64,
    /// Resident cache bytes in the bounded service after the run.
    pub resident_bytes: u64,
}

/// Latency/throughput at one `RAYON_NUM_THREADS` setting. Per-job latency
/// is its admission batch's wall-clock (every job in a batch completes
/// when the batch does).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ThreadPoint {
    /// Worker threads.
    pub threads: usize,
    /// Median per-job latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-job latency in milliseconds.
    pub p99_ms: f64,
    /// Sustained predictions per second over the whole run.
    pub predictions_per_sec: f64,
    /// Total wall-clock of the run in milliseconds.
    pub total_ms: f64,
}

/// One prediction job, as parsed from a `predict` line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Caller-chosen request id, echoed verbatim in the response.
    pub id: String,
    /// Corpus program id, e.g. `cuda-saxpy-0000`.
    pub kernel: String,
    /// Hardware preset name (resolved case/format-insensitively).
    pub spec: String,
    /// Model-zoo model name.
    pub model: String,
    /// Zero- or few-shot prompting.
    pub style: ShotStyle,
}

/// One parsed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// A prediction job.
    Predict(Job),
    /// Report job/cache/ledger totals.
    Stats,
    /// Flush pending jobs and stop serving.
    Quit,
}

impl Command {
    /// Parse one protocol line (leading/trailing whitespace ignored).
    pub fn parse(line: &str) -> Result<Command, PceError> {
        let mut tokens = line.split_whitespace();
        let verb = tokens.next().unwrap_or("");
        match verb {
            "stats" => Ok(Command::Stats),
            "quit" => Ok(Command::Quit),
            "predict" => {
                let mut fields: BTreeMap<&str, &str> = BTreeMap::new();
                for tok in tokens {
                    let (k, v) = tok.split_once('=').ok_or_else(|| {
                        PceError::parse(format!("expected key=value, got '{tok}'"))
                    })?;
                    if fields.insert(k, v).is_some() {
                        return Err(PceError::parse(format!("duplicate field '{k}'")));
                    }
                }
                let take = |fields: &BTreeMap<&str, &str>, k: &str| -> Result<String, PceError> {
                    fields
                        .get(k)
                        .map(|v| v.to_string())
                        .ok_or_else(|| PceError::parse(format!("predict needs {k}=...")))
                };
                let style = match take(&fields, "shots")?.as_str() {
                    "zero" => ShotStyle::ZeroShot,
                    "few" => ShotStyle::FewShot,
                    other => {
                        return Err(PceError::parse(format!(
                            "shots must be zero|few, got '{other}'"
                        )))
                    }
                };
                for k in fields.keys() {
                    if !matches!(*k, "id" | "kernel" | "spec" | "model" | "shots") {
                        return Err(PceError::parse(format!("unknown field '{k}'")));
                    }
                }
                Ok(Command::Predict(Job {
                    id: take(&fields, "id")?,
                    kernel: take(&fields, "kernel")?,
                    spec: take(&fields, "spec")?,
                    model: take(&fields, "model")?,
                    style,
                }))
            }
            other => Err(PceError::parse(format!(
                "unknown command '{other}' (expected predict|stats|quit)"
            ))),
        }
    }
}

/// Collapse a (possibly multi-line) error display into one protocol-safe
/// line: responses are one line each, but some error sources (the
/// hardware-preset catalog listing, for one) render across many.
fn one_line(msg: impl std::fmt::Display) -> String {
    msg.to_string().replace('\n', "; ").replace('"', "'")
}

/// Profiled-and-rendered state shared by every job in one
/// (kernel, spec, shot-style) admission group.
struct GroupPrep {
    prompt: String,
    truth: Boundedness,
}

/// A long-lived prediction service over one study's corpus.
pub struct PredictionService {
    study: Study,
    programs: Vec<Program>,
    index: HashMap<String, usize>,
    caches: SuiteCaches,
    engine: SurrogateEngine,
    policy: RetryPolicy,
    jobs: AtomicU64,
    ledger: Mutex<ResponseAccounting>,
}

impl PredictionService {
    /// Build a service: generate the study's corpus, stand up a cache
    /// bundle (bounded per `budget`, unbounded when `None`), and wire the
    /// engine through it — chaos included if the study carries any.
    pub fn new(study: Study, budget: Option<CacheBudget>) -> PredictionService {
        let programs = build_corpus(&study.corpus);
        let index = programs
            .iter()
            .enumerate()
            .map(|(i, p)| (p.id.clone(), i))
            .collect();
        let caches = match budget {
            Some(b) => SuiteCaches::with_budget(b),
            None => SuiteCaches::new(),
        };
        let engine = SurrogateEngine::with_caches_and_faults(
            caches.llm.clone(),
            study.chaos.as_ref().map(|c| c.plan.clone()),
        );
        let policy = study.chaos.as_ref().map(|c| c.retry).unwrap_or_default();
        PredictionService {
            study,
            programs,
            index,
            caches,
            engine,
            policy,
            jobs: AtomicU64::new(0),
            ledger: Mutex::new(ResponseAccounting::new()),
        }
    }

    /// The corpus this service answers jobs against, in corpus order.
    pub fn programs(&self) -> &[Program] {
        &self.programs
    }

    /// The cache bundle (for effectiveness reporting).
    pub fn caches(&self) -> &SuiteCaches {
        &self.caches
    }

    /// Total `predict` jobs admitted so far.
    pub fn jobs_served(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Whether the response ledger balances (every completion accounted
    /// exactly once across valid/retried/invalid/refused).
    pub fn ledger_balanced(&self) -> bool {
        self.ledger.lock().map(|l| l.balanced()).unwrap_or(false)
    }

    /// The one-line `stats` response.
    pub fn stats_line(&self) -> String {
        let report = self.caches.report();
        let (hits, misses) = report
            .layers()
            .iter()
            .fold((0, 0), |(h, m), (_, c)| (h + c.hits, m + c.misses));
        format!(
            "stats jobs={} cache_hits={hits} cache_misses={misses} evictions={} resident_bytes={} ledger_balanced={}",
            self.jobs_served(),
            report.total_evictions(),
            report.total_resident_bytes(),
            self.ledger_balanced(),
        )
    }

    /// The deterministic sampling seed of one job: a fingerprint of its
    /// *(kernel, spec, model, shot-style)* identity folded into the study
    /// seed. Request ids and arrival order never enter.
    fn job_seed(&self, job: &Job) -> u64 {
        let mut h = Fnv::new();
        h.str(&job.kernel);
        h.str(&job.spec);
        h.str(&job.model);
        h.u64(matches!(job.style, ShotStyle::FewShot) as u64);
        self.study.seed ^ h.finish()
    }

    /// Resolve a job against the corpus, preset catalog, and model zoo.
    fn resolve(&self, job: &Job) -> Result<(usize, HardwareSpec), PceError> {
        let prog = *self
            .index
            .get(&job.kernel)
            .ok_or_else(|| PceError::spec(format!("unknown kernel '{}'", job.kernel)))?;
        let spec = HardwareSpec::preset_by_name(&job.spec)
            .map_err(|e| PceError::spec(format!("spec '{}': {e}", job.spec)))?;
        if pce_llm::zoo::model(&job.model).is_none() {
            return Err(PceError::spec(format!("unknown model '{}'", job.model)));
        }
        Ok((prog, spec))
    }

    /// Answer one admission batch. Responses come back aligned with
    /// `jobs`, one line each; invalid jobs get `err` lines and cost
    /// nothing. Jobs sharing a (kernel, spec, shot-style) group profile
    /// and render once, then completions fan out per job.
    pub fn predict_batch(&self, jobs: &[Job]) -> Vec<String> {
        self.jobs.fetch_add(jobs.len() as u64, Ordering::Relaxed);

        // Admission: resolve every job, grouping the valid ones.
        type GroupKey = (usize, String, bool);
        let mut resolved: Vec<Result<GroupKey, String>> = Vec::with_capacity(jobs.len());
        let mut groups: BTreeMap<GroupKey, HardwareSpec> = BTreeMap::new();
        for job in jobs {
            match self.resolve(job) {
                Ok((prog, spec)) => {
                    let key = (
                        prog,
                        spec.name.clone(),
                        matches!(job.style, ShotStyle::FewShot),
                    );
                    groups.entry(key.clone()).or_insert(spec);
                    resolved.push(Ok(key));
                }
                Err(e) => resolved.push(Err(format!(
                    "err id={} kind={} error=\"{}\"",
                    job.id,
                    e.kind(),
                    one_line(&e)
                ))),
            }
        }

        // Shared phase: one profile + ground truth + rendered prompt per
        // group, in parallel across groups.
        let group_list: Vec<(GroupKey, HardwareSpec)> = groups.into_iter().collect();
        let prepared: BTreeMap<GroupKey, GroupPrep> = group_list
            .par_iter()
            .map(|(key, spec)| {
                let p = &self.programs[key.0];
                let profile = Profiler::new(spec.clone())
                    .with_caches(self.caches.sim.clone())
                    .profile_shared(&p.ir, &p.launch);
                let truth = classify_joint(spec, &profile.counts).label;
                let style = if key.2 {
                    ShotStyle::FewShot
                } else {
                    ShotStyle::ZeroShot
                };
                let req = ClassifyRequest {
                    language: p.language.label().to_string(),
                    kernel_name: p.kernel_name.clone(),
                    hardware: spec.clone(),
                    geometry: p.launch.geometry_string(),
                    args: p.args.clone(),
                    source: p.source.clone(),
                };
                let prompt = render_classify_prompt(&req, style);
                self.caches.count_prompt_renders(1);
                (key.clone(), GroupPrep { prompt, truth })
            })
            .collect();

        // Per-job phase: completions fan out across the pool.
        let sampling = SamplingParams::default();
        let answered: Vec<(String, ResponseAccounting)> = jobs
            .par_iter()
            .enumerate()
            .map(|(i, job)| {
                let key = match &resolved[i] {
                    Ok(key) => key,
                    Err(line) => return (line.clone(), ResponseAccounting::new()),
                };
                let prep = &prepared[key];
                let out = self.engine.complete_with_retry(
                    &job.model,
                    &prep.prompt,
                    Some(sampling),
                    self.job_seed(job),
                    &self.policy,
                );
                let prediction = match out.verdict {
                    Some(b) => b.answer_token(),
                    None => "invalid",
                };
                let correct = out.verdict == Some(prep.truth);
                let line = format!(
                    "ok id={} kernel={} model={} prediction={prediction} truth={} correct={correct}",
                    job.id,
                    job.kernel,
                    job.model,
                    prep.truth.answer_token(),
                );
                (line, out.accounting)
            })
            .collect();

        let mut lines = Vec::with_capacity(answered.len());
        if let Ok(mut ledger) = self.ledger.lock() {
            for (line, acc) in answered {
                ledger.merge(&acc);
                lines.push(line);
            }
        } else {
            lines.extend(answered.into_iter().map(|(line, _)| line));
        }
        lines
    }

    /// Drive the line protocol: read commands from `reader`, write
    /// response lines to `writer`. `predict` jobs accumulate until the
    /// admission batch fills (or a `stats`/`quit`/EOF forces a flush), so
    /// responses always come back in request order.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        mut writer: W,
        batch: usize,
    ) -> std::io::Result<()> {
        let batch = batch.max(1);
        let mut pending: Vec<Job> = Vec::new();
        let flush = |pending: &mut Vec<Job>, writer: &mut W| -> std::io::Result<()> {
            for line in self.predict_batch(pending) {
                writeln!(writer, "{line}")?;
            }
            pending.clear();
            Ok(())
        };
        for line in reader.lines() {
            let line = line?;
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            match Command::parse(trimmed) {
                Ok(Command::Predict(job)) => {
                    pending.push(job);
                    if pending.len() >= batch {
                        flush(&mut pending, &mut writer)?;
                    }
                }
                Ok(Command::Stats) => {
                    flush(&mut pending, &mut writer)?;
                    writeln!(writer, "{}", self.stats_line())?;
                }
                Ok(Command::Quit) => {
                    flush(&mut pending, &mut writer)?;
                    writer.flush()?;
                    return Ok(());
                }
                Err(e) => {
                    writeln!(
                        writer,
                        "err id=- kind={} error=\"{}\"",
                        e.kind(),
                        one_line(&e)
                    )?;
                }
            }
        }
        flush(&mut pending, &mut writer)?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let cmd = Command::parse(
            "predict id=j1 kernel=cuda-saxpy-0000 spec=rtx-3080 model=gpt-4o shots=zero",
        )
        .expect("valid line");
        match cmd {
            Command::Predict(job) => {
                assert_eq!(job.id, "j1");
                assert_eq!(job.kernel, "cuda-saxpy-0000");
                assert_eq!(job.style, ShotStyle::ZeroShot);
            }
            other => panic!("expected predict, got {other:?}"),
        }
        assert_eq!(Command::parse("stats"), Ok(Command::Stats));
        assert_eq!(Command::parse(" quit "), Ok(Command::Quit));
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "explode",
            "predict id=j1",
            "predict id=j1 kernel=k spec=s model=m shots=maybe",
            "predict id=j1 kernel=k spec=s model=m shots=zero bogus=1",
            "predict id=j1 id=j2 kernel=k spec=s model=m shots=zero",
            "predict novalue",
        ] {
            assert!(Command::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
